"""DNS message header, question, and full-message wire codec."""

import struct

from repro.dnswire import constants
from repro.dnswire.name import NameCompressor, decode_name, encode_name
from repro.dnswire.records import ResourceRecord

HEADER_STRUCT = struct.Struct("!HHHHHH")


def peek_header(data):
    """Read (txid, qr, rcode) straight off the fixed 12-byte header.

    The Internet-wide scanner only needs these three fields to attribute
    a response, so it can skip constructing a :class:`Message` (and
    decoding names/records) entirely.  Returns ``None`` for payloads too
    short to carry a DNS header; anything longer yields whatever the
    header bytes say — callers reject garbage through the same txid/qr
    checks they already apply to parsed messages.
    """
    if len(data) < 12:
        return None
    return ((data[0] << 8) | data[1],        # txid
            bool(data[2] & 0x80),            # qr
            data[3] & 0x0F)                  # rcode


class Header:
    """The 12-byte DNS header with all flag bits."""

    def __init__(self, txid=0, qr=False, opcode=constants.OPCODE_QUERY,
                 aa=False, tc=False, rd=True, ra=False,
                 rcode=constants.RCODE_NOERROR):
        self.txid = txid
        self.qr = qr
        self.opcode = opcode
        self.aa = aa
        self.tc = tc
        self.rd = rd
        self.ra = ra
        self.rcode = rcode

    def flags_word(self):
        word = 0
        if self.qr:
            word |= 0x8000
        word |= (self.opcode & 0xF) << 11
        if self.aa:
            word |= 0x0400
        if self.tc:
            word |= 0x0200
        if self.rd:
            word |= 0x0100
        if self.ra:
            word |= 0x0080
        word |= self.rcode & 0xF
        return word

    @classmethod
    def from_flags_word(cls, txid, word):
        return cls(
            txid=txid,
            qr=bool(word & 0x8000),
            opcode=(word >> 11) & 0xF,
            aa=bool(word & 0x0400),
            tc=bool(word & 0x0200),
            rd=bool(word & 0x0100),
            ra=bool(word & 0x0080),
            rcode=word & 0xF,
        )

    def __repr__(self):
        return ("Header(txid=0x%04x, qr=%s, rcode=%s)"
                % (self.txid, self.qr, constants.rcode_name(self.rcode)))


class Question:
    """A question section entry: name, type, class."""

    def __init__(self, name, qtype=constants.QTYPE_A,
                 qclass=constants.CLASS_IN):
        self.name = name
        self.qtype = qtype
        self.qclass = qclass

    def to_wire(self, compressor=None, offset=0):
        if compressor is not None:
            name_wire = compressor.encode(self.name, offset)
        else:
            name_wire = encode_name(self.name)
        return name_wire + struct.pack("!HH", self.qtype, self.qclass)

    @classmethod
    def from_wire(cls, message, offset):
        name, pos = decode_name(message, offset)
        qtype, qclass = struct.unpack_from("!HH", message, pos)
        return cls(name, qtype, qclass), pos + 4

    def __eq__(self, other):
        return isinstance(other, Question) and (
            other.name, other.qtype, other.qclass) == (
            self.name, self.qtype, self.qclass)

    def __hash__(self):
        return hash((self.name, self.qtype, self.qclass))

    def __repr__(self):
        return "Question(%r, %s, %s)" % (
            self.name, constants.qtype_name(self.qtype),
            constants.class_name(self.qclass))


class Message:
    """A complete DNS message with question/answer/authority/additional."""

    def __init__(self, header=None, questions=None, answers=None,
                 authorities=None, additionals=None):
        self.header = header or Header()
        self.questions = list(questions or [])
        self.answers = list(answers or [])
        self.authorities = list(authorities or [])
        self.additionals = list(additionals or [])

    @classmethod
    def query(cls, name, qtype=constants.QTYPE_A, qclass=constants.CLASS_IN,
              txid=0, rd=True):
        """Build a standard query message."""
        header = Header(txid=txid, qr=False, rd=rd)
        return cls(header=header, questions=[Question(name, qtype, qclass)])

    def make_response(self, rcode=constants.RCODE_NOERROR, aa=False, ra=True):
        """Build an (empty) response echoing this query's txid and question."""
        header = Header(txid=self.header.txid, qr=True,
                        opcode=self.header.opcode,
                        aa=aa, rd=self.header.rd, ra=ra, rcode=rcode)
        return Message(header=header, questions=list(self.questions))

    @property
    def rcode(self):
        return self.header.rcode

    @property
    def question(self):
        """The first (and in practice only) question, or ``None``."""
        return self.questions[0] if self.questions else None

    def a_addresses(self):
        """All IPv4 addresses in the answer section, in order."""
        return [rr.data.address for rr in self.answers
                if rr.rtype == constants.QTYPE_A]

    def to_wire(self):
        compressor = NameCompressor()
        out = bytearray(HEADER_STRUCT.pack(
            self.header.txid, self.header.flags_word(),
            len(self.questions), len(self.answers),
            len(self.authorities), len(self.additionals)))
        for question in self.questions:
            out.extend(question.to_wire(compressor, len(out)))
        for section in (self.answers, self.authorities, self.additionals):
            for record in section:
                out.extend(record.to_wire(compressor, len(out)))
        return bytes(out)

    @classmethod
    def from_wire(cls, data):
        if len(data) < HEADER_STRUCT.size:
            raise ValueError("message shorter than DNS header")
        txid, flags, qdcount, ancount, nscount, arcount = \
            HEADER_STRUCT.unpack_from(
            data, 0)
        header = Header.from_flags_word(txid, flags)
        pos = HEADER_STRUCT.size
        questions = []
        for __ in range(qdcount):
            question, pos = Question.from_wire(data, pos)
            questions.append(question)
        sections = []
        for count in (ancount, nscount, arcount):
            records = []
            for __ in range(count):
                record, pos = ResourceRecord.from_wire(data, pos)
                records.append(record)
            sections.append(records)
        return cls(header=header, questions=questions, answers=sections[0],
                   authorities=sections[1], additionals=sections[2])

    def __repr__(self):
        return ("Message(%r, %d questions, %d answers, rcode=%s)"
                % (self.header, len(self.questions), len(self.answers),
                   constants.rcode_name(self.header.rcode)))
