"""Numeric constants of the DNS protocol (RFC 1035, RFC 5395)."""

# Query/response types.
QTYPE_A = 1
QTYPE_NS = 2
QTYPE_CNAME = 5
QTYPE_SOA = 6
QTYPE_PTR = 12
QTYPE_MX = 15
QTYPE_TXT = 16
QTYPE_AAAA = 28
QTYPE_ANY = 255

# Classes.  CHAOS is used by the version.bind fingerprinting scan.
CLASS_IN = 1
CLASS_CH = 3
CLASS_ANY = 255

# Opcodes.
OPCODE_QUERY = 0
OPCODE_STATUS = 2

# Response codes.
RCODE_NOERROR = 0
RCODE_FORMERR = 1
RCODE_SERVFAIL = 2
RCODE_NXDOMAIN = 3
RCODE_NOTIMP = 4
RCODE_REFUSED = 5

_QTYPE_NAMES = {
    QTYPE_A: "A",
    QTYPE_NS: "NS",
    QTYPE_CNAME: "CNAME",
    QTYPE_SOA: "SOA",
    QTYPE_PTR: "PTR",
    QTYPE_MX: "MX",
    QTYPE_TXT: "TXT",
    QTYPE_AAAA: "AAAA",
    QTYPE_ANY: "ANY",
}

_CLASS_NAMES = {CLASS_IN: "IN", CLASS_CH: "CH", CLASS_ANY: "ANY"}

_RCODE_NAMES = {
    RCODE_NOERROR: "NOERROR",
    RCODE_FORMERR: "FORMERR",
    RCODE_SERVFAIL: "SERVFAIL",
    RCODE_NXDOMAIN: "NXDOMAIN",
    RCODE_NOTIMP: "NOTIMP",
    RCODE_REFUSED: "REFUSED",
}


def qtype_name(qtype):
    """Return the mnemonic for a query type (e.g. 1 -> ``"A"``)."""
    return _QTYPE_NAMES.get(qtype, "TYPE%d" % qtype)


def class_name(qclass):
    """Return the mnemonic for a query class (e.g. 3 -> ``"CH"``)."""
    return _CLASS_NAMES.get(qclass, "CLASS%d" % qclass)


def rcode_name(rcode):
    """Return the mnemonic for a response code (e.g. 3 -> ``"NXDOMAIN"``)."""
    return _RCODE_NAMES.get(rcode, "RCODE%d" % rcode)
