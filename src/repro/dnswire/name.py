"""Domain name encoding: wire format, compression pointers, and 0x20 encoding.

0x20 encoding (Dagon et al., CCS 2008) hides entropy in the upper/lower case
of the query name; an honest resolver echoes the exact case back, so the case
pattern both adds forgery resistance and — in this reproduction, as in the
paper's domain scans — carries redundant bits of the per-resolver identifier.
"""

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255
_POINTER_MASK = 0xC0


class NameError_(ValueError):
    """Raised for malformed domain names on the wire."""


def normalize_name(name):
    """Lower-case a domain name and strip any trailing dot.

    All name comparisons in the library go through this helper, because DNS
    names are case-insensitive while 0x20 encoding deliberately mixes case.
    """
    return name.rstrip(".").lower()


def split_labels(name):
    """Split ``"www.example.com"`` into ``["www", "example", "com"]``."""
    name = name.rstrip(".")
    if not name:
        return []
    return name.split(".")


def encode_name(name):
    """Encode a domain name to RFC 1035 wire format (no compression)."""
    out = bytearray()
    for label in split_labels(name):
        raw = label.encode("ascii")
        if not raw:
            raise NameError_("empty label in %r" % name)
        if len(raw) > MAX_LABEL_LENGTH:
            raise NameError_("label too long in %r" % name)
        out.append(len(raw))
        out.extend(raw)
    out.append(0)
    if len(out) > MAX_NAME_LENGTH:
        raise NameError_("name too long: %r" % name)
    return bytes(out)


def decode_name(data, offset):
    """Decode a (possibly compressed) name starting at ``offset``.

    Returns ``(name, next_offset)`` where ``next_offset`` is the position
    immediately after the name in the original byte stream (pointers do not
    advance it past the pointer itself).
    """
    labels = []
    jumps = 0
    next_offset = None
    pos = offset
    while True:
        if pos >= len(data):
            raise NameError_("truncated name at offset %d" % offset)
        length = data[pos]
        if length & _POINTER_MASK == _POINTER_MASK:
            if pos + 1 >= len(data):
                raise NameError_("truncated compression pointer")
            if next_offset is None:
                next_offset = pos + 2
            target = ((length & 0x3F) << 8) | data[pos + 1]
            if target >= pos:
                raise NameError_("forward compression pointer")
            jumps += 1
            if jumps > 64:
                raise NameError_("compression pointer loop")
            pos = target
            continue
        if length & _POINTER_MASK:
            raise NameError_("reserved label type 0x%02x" % length)
        pos += 1
        if length == 0:
            break
        if pos + length > len(data):
            raise NameError_("truncated label")
        labels.append(data[pos:pos + length].decode("ascii", "replace"))
        pos += length
    if next_offset is None:
        next_offset = pos
    return ".".join(labels), next_offset


class NameCompressor:
    """Tracks name offsets while building a message, emitting pointers."""

    def __init__(self):
        self._offsets = {}

    def encode(self, name, current_offset):
        """Encode ``name`` for a message position ``current_offset``.

        Uses a compression pointer when a suffix of the name has already
        been written at a pointer-reachable offset (< 0x4000).
        """
        offsets = self._offsets
        whole = normalize_name(name)
        known = offsets.get(whole)
        if known is not None:
            # Whole-name hit: the dominant case for answer records
            # echoing the question name — a bare two-byte pointer,
            # no label splitting at all.  Only reachable offsets are
            # ever stored, so no < 0x4000 re-check is needed.
            return bytes((_POINTER_MASK | (known >> 8), known & 0xFF))
        labels = split_labels(name)
        # Normalised suffixes built once, right-to-left — the original
        # per-position join/normalize repeated tail work per label.
        suffixes = [whole] * len(labels)
        tail = ""
        for i in range(len(labels) - 1, 0, -1):
            tail = labels[i].lower() + ("." + tail if tail else tail)
            suffixes[i] = tail
        out = bytearray()
        for i, label in enumerate(labels):
            if i:
                known = offsets.get(suffixes[i])
                if known is not None:
                    out.append(_POINTER_MASK | (known >> 8))
                    out.append(known & 0xFF)
                    return bytes(out)
            offset_here = current_offset + len(out)
            if offset_here < 0x4000:
                offsets[suffixes[i]] = offset_here
            raw = label.encode("ascii")
            if len(raw) > MAX_LABEL_LENGTH:
                raise NameError_("label too long in %r" % name)
            out.append(len(raw))
            out.extend(raw)
        out.append(0)
        return bytes(out)


def apply_0x20(name, bits):
    """Apply a 0x20 case pattern to ``name``.

    ``bits`` is an integer whose binary digits select upper case (1) or
    lower case (0) for each alphabetic character of the name, least
    significant bit first.  Non-alphabetic characters are skipped and do not
    consume bits.
    """
    out = []
    i = 0
    for ch in name:
        if ch.isalpha():
            out.append(ch.upper() if (bits >> i) & 1 else ch.lower())
            i += 1
        else:
            out.append(ch)
    return "".join(out)


def recover_0x20_bits(name):
    """Recover the case-pattern integer from a 0x20-encoded name.

    Inverse of :func:`apply_0x20`; also returns the number of alphabetic
    positions so callers know how many bits are meaningful.
    """
    bits = 0
    count = 0
    for ch in name:
        if ch.isalpha():
            if ch.isupper():
                bits |= 1 << count
            count += 1
    return bits, count


def random_0x20_bits(name, rng):
    """Draw a random case pattern covering every letter of ``name``."""
    __, count = recover_0x20_bits(name)
    if count == 0:
        return 0
    return rng.getrandbits(count)


def matches_0x20(sent, received):
    """Check that a response name echoes the query's exact case pattern."""
    return sent == received and \
        normalize_name(sent) == normalize_name(received)
