"""Resource record data types and their wire codecs."""

import struct

from repro.dnswire import constants
from repro.dnswire.name import decode_name, encode_name


def _pack_ipv4(text):
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError("bad IPv4 address %r" % text)
    octets = []
    for part in parts:
        value = int(part)
        if not 0 <= value <= 255:
            raise ValueError("bad IPv4 address %r" % text)
        octets.append(value)
    return bytes(octets)


def _unpack_ipv4(data):
    if len(data) != 4:
        raise ValueError("A rdata must be 4 bytes")
    return ".".join(str(b) for b in data)


class AData:
    """An IPv4 address (A record rdata)."""

    rtype = constants.QTYPE_A

    def __init__(self, address):
        self.address = address

    def to_wire(self):
        return _pack_ipv4(self.address)

    @classmethod
    def from_wire(cls, data, offset, rdlength, message=None):
        return cls(_unpack_ipv4(message[offset:offset + rdlength]))

    def __eq__(self, other):
        return isinstance(other, AData) and other.address == self.address

    def __hash__(self):
        return hash(("A", self.address))

    def __repr__(self):
        return "AData(%r)" % self.address


class _NameData:
    """Base for rdata that is a single domain name (NS, CNAME, PTR)."""

    rtype = None

    def __init__(self, name):
        self.name = name

    def to_wire(self):
        return encode_name(self.name)

    @classmethod
    def from_wire(cls, data, offset, rdlength, message=None):
        name, __ = decode_name(message, offset)
        return cls(name)

    def __eq__(self, other):
        return type(other) is type(self) and other.name == self.name

    def __hash__(self):
        return hash((type(self).__name__, self.name))

    def __repr__(self):
        return "%s(%r)" % (type(self).__name__, self.name)


class NsData(_NameData):
    rtype = constants.QTYPE_NS


class CnameData(_NameData):
    rtype = constants.QTYPE_CNAME


class PtrData(_NameData):
    rtype = constants.QTYPE_PTR


class TxtData:
    """One or more character strings (TXT rdata); used by CHAOS replies."""

    rtype = constants.QTYPE_TXT

    def __init__(self, strings):
        if isinstance(strings, str):
            strings = [strings]
        self.strings = list(strings)

    @property
    def text(self):
        return "".join(self.strings)

    def to_wire(self):
        out = bytearray()
        for text in self.strings:
            raw = text.encode("ascii", "replace")
            for start in range(0, max(len(raw), 1), 255):
                chunk = raw[start:start + 255]
                out.append(len(chunk))
                out.extend(chunk)
        return bytes(out)

    @classmethod
    def from_wire(cls, data, offset, rdlength, message=None):
        end = offset + rdlength
        strings = []
        pos = offset
        while pos < end:
            length = message[pos]
            pos += 1
            strings.append(
                message[pos:pos + length].decode("ascii", "replace"))
            pos += length
        return cls(strings)

    def __eq__(self, other):
        return isinstance(other, TxtData) and other.strings == self.strings

    def __hash__(self):
        return hash(("TXT", tuple(self.strings)))

    def __repr__(self):
        return "TxtData(%r)" % self.strings


class MxData:
    """Mail exchange rdata: preference and exchange host."""

    rtype = constants.QTYPE_MX

    def __init__(self, preference, exchange):
        self.preference = preference
        self.exchange = exchange

    def to_wire(self):
        return struct.pack("!H", self.preference) + encode_name(self.exchange)

    @classmethod
    def from_wire(cls, data, offset, rdlength, message=None):
        (preference,) = struct.unpack_from("!H", message, offset)
        exchange, __ = decode_name(message, offset + 2)
        return cls(preference, exchange)

    def __eq__(self, other):
        return (isinstance(other, MxData)
                and other.preference == self.preference
                and other.exchange == self.exchange)

    def __hash__(self):
        return hash(("MX", self.preference, self.exchange))

    def __repr__(self):
        return "MxData(%d, %r)" % (self.preference, self.exchange)


class SoaData:
    """Start of authority rdata."""

    rtype = constants.QTYPE_SOA

    def __init__(self, mname, rname, serial=1, refresh=3600, retry=600,
                 expire=86400, minimum=60):
        self.mname = mname
        self.rname = rname
        self.serial = serial
        self.refresh = refresh
        self.retry = retry
        self.expire = expire
        self.minimum = minimum

    def to_wire(self):
        return (encode_name(self.mname) + encode_name(self.rname)
                + struct.pack("!IIIII", self.serial, self.refresh,
                              self.retry, self.expire, self.minimum))

    @classmethod
    def from_wire(cls, data, offset, rdlength, message=None):
        mname, pos = decode_name(message, offset)
        rname, pos = decode_name(message, pos)
        serial, refresh, retry, expire, minimum = struct.unpack_from(
            "!IIIII", message, pos)
        return cls(mname, rname, serial, refresh, retry, expire, minimum)

    def __eq__(self, other):
        return isinstance(other, SoaData) and (
            other.mname, other.rname, other.serial) == (
            self.mname, self.rname, self.serial)

    def __hash__(self):
        return hash(("SOA", self.mname, self.rname, self.serial))

    def __repr__(self):
        return "SoaData(%r, %r, serial=%d)" % (self.mname, self.rname,
                                               self.serial)


class OpaqueData:
    """Uninterpreted rdata for record types the codec does not model."""

    rtype = None

    def __init__(self, rtype, raw):
        self.rtype = rtype
        self.raw = raw

    def to_wire(self):
        return self.raw

    def __eq__(self, other):
        return (isinstance(other, OpaqueData) and other.rtype == self.rtype
                and other.raw == self.raw)

    def __hash__(self):
        return hash(("OPAQUE", self.rtype, self.raw))

    def __repr__(self):
        return "OpaqueData(%d, %r)" % (self.rtype, self.raw)


_RDATA_CLASSES = {
    constants.QTYPE_A: AData,
    constants.QTYPE_NS: NsData,
    constants.QTYPE_CNAME: CnameData,
    constants.QTYPE_PTR: PtrData,
    constants.QTYPE_TXT: TxtData,
    constants.QTYPE_MX: MxData,
    constants.QTYPE_SOA: SoaData,
}


def decode_rdata(rtype, message, offset, rdlength):
    """Decode rdata bytes into a typed object (or :class:`OpaqueData`)."""
    cls = _RDATA_CLASSES.get(rtype)
    if cls is None:
        return OpaqueData(rtype, bytes(message[offset:offset + rdlength]))
    return cls.from_wire(None, offset, rdlength, message=message)


class ResourceRecord:
    """A complete resource record: name, type, class, TTL, and typed rdata."""

    def __init__(self, name, rtype, rclass, ttl, data):
        self.name = name
        self.rtype = rtype
        self.rclass = rclass
        self.ttl = ttl
        self.data = data

    @classmethod
    def a(cls, name, address, ttl=300, rclass=constants.CLASS_IN):
        return cls(name, constants.QTYPE_A, rclass, ttl, AData(address))

    @classmethod
    def ns(cls, name, target, ttl=3600, rclass=constants.CLASS_IN):
        return cls(name, constants.QTYPE_NS, rclass, ttl, NsData(target))

    @classmethod
    def cname(cls, name, target, ttl=300, rclass=constants.CLASS_IN):
        return cls(name, constants.QTYPE_CNAME, rclass, ttl, CnameData(target))

    @classmethod
    def ptr(cls, name, target, ttl=3600, rclass=constants.CLASS_IN):
        return cls(name, constants.QTYPE_PTR, rclass, ttl, PtrData(target))

    @classmethod
    def txt(cls, name, strings, ttl=0, rclass=constants.CLASS_CH):
        return cls(name, constants.QTYPE_TXT, rclass, ttl, TxtData(strings))

    @classmethod
    def mx(cls, name, preference, exchange, ttl=3600,
           rclass=constants.CLASS_IN):
        return cls(name, constants.QTYPE_MX, rclass, ttl,
                   MxData(preference, exchange))

    @classmethod
    def soa(cls, name, mname, rname, ttl=3600, **kwargs):
        return cls(name, constants.QTYPE_SOA, constants.CLASS_IN, ttl,
                   SoaData(mname, rname, **kwargs))

    def with_ttl(self, ttl):
        """Return a copy of this record with a different TTL."""
        return ResourceRecord(self.name, self.rtype, self.rclass, ttl,
                              self.data)

    def to_wire(self, compressor=None, offset=0):
        if compressor is not None:
            name_wire = compressor.encode(self.name, offset)
        else:
            name_wire = encode_name(self.name)
        rdata = self.data.to_wire()
        return name_wire + struct.pack(
            "!HHIH", self.rtype, self.rclass, self.ttl & 0xFFFFFFFF,
            len(rdata)) + rdata

    @classmethod
    def from_wire(cls, message, offset):
        name, pos = decode_name(message, offset)
        rtype, rclass, ttl, rdlength = struct.unpack_from("!HHIH",
                                                          message, pos)
        pos += 10
        data = decode_rdata(rtype, message, pos, rdlength)
        return cls(name, rtype, rclass, ttl, data), pos + rdlength

    def __eq__(self, other):
        return isinstance(other, ResourceRecord) and (
            other.name.lower(), other.rtype, other.rclass, other.data) == (
            self.name.lower(), self.rtype, self.rclass, self.data)

    def __hash__(self):
        return hash((self.name.lower(), self.rtype, self.rclass, self.data))

    def __repr__(self):
        return "ResourceRecord(%r, %s, ttl=%d, %r)" % (
            self.name, constants.qtype_name(self.rtype), self.ttl, self.data)
