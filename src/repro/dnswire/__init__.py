"""DNS wire protocol: RFC 1035 message codec, record types, and 0x20 encoding.

This package implements the on-the-wire DNS format used by every other
subsystem: the scanners craft real DNS query packets with it, the simulated
resolvers and authoritative servers parse and answer them, and the analysis
pipeline decodes the responses.  Nothing above this layer touches raw bytes.
"""

from repro.dnswire.constants import (
    CLASS_CH,
    CLASS_IN,
    OPCODE_QUERY,
    QTYPE_A,
    QTYPE_AAAA,
    QTYPE_ANY,
    QTYPE_CNAME,
    QTYPE_MX,
    QTYPE_NS,
    QTYPE_PTR,
    QTYPE_SOA,
    QTYPE_TXT,
    RCODE_FORMERR,
    RCODE_NOERROR,
    RCODE_NOTIMP,
    RCODE_NXDOMAIN,
    RCODE_REFUSED,
    RCODE_SERVFAIL,
    class_name,
    qtype_name,
    rcode_name,
)
from repro.dnswire.message import Header, Message, Question, peek_header
from repro.dnswire.name import (
    apply_0x20,
    decode_name,
    encode_name,
    matches_0x20,
    normalize_name,
    random_0x20_bits,
    recover_0x20_bits,
)
from repro.dnswire.records import (
    AData,
    CnameData,
    MxData,
    NsData,
    PtrData,
    ResourceRecord,
    SoaData,
    TxtData,
)

__all__ = [
    "AData",
    "CLASS_CH",
    "CLASS_IN",
    "CnameData",
    "Header",
    "Message",
    "MxData",
    "NsData",
    "OPCODE_QUERY",
    "PtrData",
    "QTYPE_A",
    "QTYPE_AAAA",
    "QTYPE_ANY",
    "QTYPE_CNAME",
    "QTYPE_MX",
    "QTYPE_NS",
    "QTYPE_PTR",
    "QTYPE_SOA",
    "QTYPE_TXT",
    "Question",
    "RCODE_FORMERR",
    "RCODE_NOERROR",
    "RCODE_NOTIMP",
    "RCODE_NXDOMAIN",
    "RCODE_REFUSED",
    "RCODE_SERVFAIL",
    "ResourceRecord",
    "SoaData",
    "TxtData",
    "apply_0x20",
    "class_name",
    "decode_name",
    "encode_name",
    "matches_0x20",
    "normalize_name",
    "peek_header",
    "qtype_name",
    "random_0x20_bits",
    "rcode_name",
    "recover_0x20_bits",
]
