"""Simulated time.

All timestamps in the library are seconds on this clock; nothing reads the
wall clock, which keeps every run fully deterministic.  Campaign code
advances the clock by days or weeks between scans; the cache-snooping prober
advances it by minutes between probes so resolver-cache TTLs decay.
"""

SECOND = 1
MINUTE = 60
HOUR = 3600
DAY = 86400
WEEK = 7 * DAY


class SimClock:
    """A monotonically advancing simulated clock.

    ``now`` is a plain attribute, not a property: per-packet code (loss
    draws, middlebox activation checks) reads it millions of times per
    simulated week, and a property call there is measurable.  Mutate it
    only through the ``advance*`` methods.
    """

    def __init__(self, start=0.0):
        self.now = float(start)

    def advance(self, seconds):
        """Move time forward; negative advances are a programming error."""
        if seconds < 0:
            raise ValueError("cannot move the clock backwards (%r)" % seconds)
        self.now += seconds

    def advance_minutes(self, minutes):
        self.advance(minutes * MINUTE)

    def advance_hours(self, hours):
        self.advance(hours * HOUR)

    def advance_days(self, days):
        self.advance(days * DAY)

    def advance_weeks(self, weeks):
        self.advance(weeks * WEEK)

    def __repr__(self):
        return "SimClock(now=%.1f)" % self.now
