"""Hostile defensive middleboxes: the network side of the arms race.

Real operators do not answer Internet-wide scans passively — they
rate-limit aggressive sources, blocklist them outright, and tarpit their
flows to burn scanner timeout budget ("Aggressive Internet-Wide
Scanners", PAPERS.md).  This module models that defensive population as
deterministic, seed-keyed middleboxes so the scanner's adaptive pacing
controller (:mod:`repro.scanner.pacing`) has something real to fight.

Determinism contract
--------------------

A naive implementation would give each box mutable per-source counters
(token buckets, probes-per-window tallies).  Counter state makes a box's
verdict depend on *how many probes it has already seen*, which differs
between a sequential scan and the same scan split over forked shard
workers — and bit-identical shard merges are a load-bearing invariant of
this repo.  Instead, every verdict here is a *pure function* of

    (box seed, source, destination, declared probe rate)

where the declared rate is ``network.scan_rate_bucket`` — an integer
probes-per-second bucket the scanner publishes before each probe (see
``Ipv4Scanner``).  The defenses behave as if they observed that
steady-state rate: a token bucket refilled at ``sustainable_pps`` admits
a ``sustainable/declared`` share of an overload, a reactive blocklister
cuts off any source whose rate crosses its ban threshold, a tarpit traps
flows from sources probing above its trigger.  ``None`` (no declared
bucket — an unpaced scanner, or background traffic) is treated as
full-line-rate: hostile networks punish what they cannot see throttling
itself.  Because the fate is a pure hash, the scanner-side pacing plan
can *replay* each admonishment without sending a packet — the same
pattern ``query_loss_selector`` uses for baseline loss — which is what
keeps sharded, batched, and per-probe scans bit-identical under defense.

Each box also implements ``scan_interest`` returning its protected
ranges, so the batched sweep marks defended destinations "hot" and sends
them down the full per-packet wire path; the cold remainder still
bulk-settles at columnar speed.

Dropped probes are attributed: the box exposes ``drop_cause`` (a
``defense:*`` string) which the network records in the flight recorder
and tallies via ``count_fault`` so the counters survive forked workers.
"""

from repro.netsim.address import ip_to_int
from repro.netsim.middlebox import Middlebox, PATH_DROP, PATH_IGNORE
from repro.netsim.network import _mix64

_M64 = (1 << 64) - 1

# Hash salts for defense draws — disjoint from the network's packet-fate
# salts (0x51-0x54), the fault plane's (0x55-0x57, 0x61-0x6A).
_SALT_RATE_LIMIT = 0x71
_SALT_BLOCKLIST = 0x72
_SALT_TARPIT = 0x73
_SALT_BAN_SPAN = 0x74
_SALT_STALL = 0x75

CAUSE_RATE_LIMITED = "defense:rate_limited"
CAUSE_BLOCKLISTED = "defense:blocklisted"
CAUSE_BLOCKLIST_WARNING = "defense:blocklist_warning"
CAUSE_TARPIT = "defense:tarpit"

# Fault-counter key for virtual seconds burned by tarpit stalls (ms so
# the counter stays integral; counters ride back from shard workers).
TARPIT_STALL_COUNTER = "tarpit_stall_ms"


def _draw(seed, salt, src_int, dst_int):
    """Uniform 64-bit draw, pure in (seed, salt, src, dst)."""
    return _mix64(((seed & 0xFFFFFFFF) << 24) ^ (salt << 56) ^
                  ((src_int * 0x9E3779B1) & _M64) ^
                  ((dst_int * 0x85EBCA77) & _M64))


class DefenseMiddlebox(Middlebox):
    """Base for rate-reactive defenses guarding a set of prefixes.

    Subclasses implement :meth:`probe_fate` — the pure verdict function
    shared verbatim by the on-path check (``path_verdict``) and the
    scanner's pacing-plan builder.
    """

    drop_cause = "defense:dropped"
    port = 53

    def __init__(self, protected_networks, seed=0, active_after=0.0):
        self.protected_networks = list(protected_networks)
        self.seed = seed
        self.active_after = active_after
        self._protect_masks = [(net.base, net.mask)
                               for net in self.protected_networks]
        self._src_ints = {}

    # -- pure core ----------------------------------------------------

    def probe_fate(self, src_int, dst_int, rate_bucket):
        """Fate of one probe at a declared rate: a ``defense:*`` cause
        string if this box drops it, else ``None``.

        Pure in its arguments plus the box's frozen configuration —
        callable by the scanner-side pacing plan without side effects.
        ``rate_bucket`` is probes/sec (int) or ``None`` for unpaced.
        """
        raise NotImplementedError

    def signature(self):
        """Hashable configuration identity, for pacing-plan memo keys."""
        return (type(self).__name__, self.seed, self.active_after,
                tuple(self._protect_masks)) + self._config_signature()

    def _config_signature(self):
        return ()

    # -- middlebox protocol -------------------------------------------

    def _covers(self, dst_int):
        for base, mask in self._protect_masks:
            if dst_int & mask == base:
                return True
        return False

    def _src_int(self, src_ip):
        cached = self._src_ints.get(src_ip)
        if cached is None:
            cached = ip_to_int(src_ip)
            if len(self._src_ints) < 4096:
                self._src_ints[src_ip] = cached
        return cached

    def path_verdict(self, src_ip, dst_int, dst_port, network):
        if dst_port != self.port or network.clock.now < self.active_after:
            return PATH_IGNORE
        if not self._covers(dst_int):
            return PATH_IGNORE
        rate = getattr(network, "scan_rate_bucket", None)
        cause = self.probe_fate(self._src_int(src_ip), dst_int, rate)
        if cause is None:
            return PATH_IGNORE
        # Attribution: the network reads ``drop_cause`` off the box it
        # saw drop the probe; set-then-read happens within one
        # send_probe call, so this is order-safe.
        self.drop_cause = cause
        self._on_drop(src_ip, dst_int, network)
        return PATH_DROP

    def _on_drop(self, src_ip, dst_int, network):
        network.count_fault(self.drop_cause)

    def scan_interest(self, src_ip, dst_port, network, qname_suffix=None):
        """Defended ranges are hot: probes into them take the full wire
        path inside the batched sweep, which is exactly what keeps the
        bulk path bit-identical to per-probe under defense."""
        if dst_port != self.port or network.clock.now < self.active_after:
            return []
        return list(self._protect_masks)

    def defense_ranges(self, src_ip, dst_port, network):
        """Ranges the pacing controller must pace over — independent of
        ``scan_interest`` so tests that disable sweep enumeration still
        build identical pacing plans."""
        if dst_port != self.port or network.clock.now < self.active_after:
            return []
        return list(self._protect_masks)


class TokenBucketRateLimiter(DefenseMiddlebox):
    """Per-source token bucket with ICMP-style admonishment.

    A bucket refilled at ``sustainable_pps`` facing a source probing at
    a sustained declared rate ``r > sustainable_pps`` admits a
    ``sustainable/r`` share of probes and drops the rest; each drop is
    the admonishment signal the pacing controller backs off on.  The
    admitted share is drawn per (source, destination) with a seeded
    hash, monotonic in ``r``: lowering the declared rate only ever turns
    drops into passes, never the reverse — which is what makes AIMD
    convergence deterministic.  Unpaced sources (``rate_bucket is
    None``) are treated as overload and shed at ``overload_drop_share``.
    """

    drop_cause = CAUSE_RATE_LIMITED

    def __init__(self, protected_networks, sustainable_pps=300.0,
                 overload_drop_share=0.92, seed=0, active_after=0.0):
        super().__init__(protected_networks, seed=seed,
                         active_after=active_after)
        self.sustainable_pps = float(sustainable_pps)
        self.overload_drop_share = float(overload_drop_share)

    def _config_signature(self):
        return (self.sustainable_pps, self.overload_drop_share)

    def probe_fate(self, src_int, dst_int, rate_bucket):
        if rate_bucket is None:
            share = self.overload_drop_share
        elif rate_bucket <= self.sustainable_pps:
            return None
        else:
            share = min(1.0 - self.sustainable_pps / rate_bucket,
                        self.overload_drop_share)
        draw = _draw(self.seed, _SALT_RATE_LIMIT, src_int, dst_int)
        if draw < int(share * _M64):
            return CAUSE_RATE_LIMITED
        return None


class ReactiveBlocklister(DefenseMiddlebox):
    """Cuts off sources probing past a threshold, with seeded unban.

    A source declaring ``rate >= ban_pps`` (or unpaced) is blocklisted:
    every probe into the protected ranges is dropped with
    ``defense:blocklisted``.  Between ``warn_pps`` and ``ban_pps`` a
    seeded share of probes is dropped with ``defense:blocklist_warning``
    — the pre-ban admonishment that lets a paced scanner back off before
    tripping the ban.  Below ``warn_pps`` the source passes clean.

    The "seeded decay/unban" of a triggered ban is expressed as
    :meth:`ban_span`: a pure per-(source, window) draw of how many
    subsequent targets stay cut off before the blocklist entry decays
    and the source may re-enter (the pacing plan suppresses exactly that
    span, then re-enters at its floor rate).  A naive scanner that keeps
    blasting at a banned rate stays cut off indefinitely — the verdict
    is rate-keyed, so constant aggression means constant bans.
    """

    drop_cause = CAUSE_BLOCKLISTED

    def __init__(self, protected_networks, warn_pps=600.0, ban_pps=1200.0,
                 warn_drop_share=0.5, ban_span=(48, 160), seed=0,
                 active_after=0.0):
        super().__init__(protected_networks, seed=seed,
                         active_after=active_after)
        self.warn_pps = float(warn_pps)
        self.ban_pps = float(ban_pps)
        self.warn_drop_share = float(warn_drop_share)
        self.ban_span_range = (int(ban_span[0]), int(ban_span[1]))

    def _config_signature(self):
        return (self.warn_pps, self.ban_pps, self.warn_drop_share,
                self.ban_span_range)

    def probe_fate(self, src_int, dst_int, rate_bucket):
        if rate_bucket is None or rate_bucket >= self.ban_pps:
            return CAUSE_BLOCKLISTED
        if rate_bucket >= self.warn_pps:
            draw = _draw(self.seed, _SALT_BLOCKLIST, src_int, dst_int)
            if draw < int(self.warn_drop_share * _M64):
                return CAUSE_BLOCKLIST_WARNING
        return None

    def ban_span(self, src_int, window_base):
        """How many targets a fresh ban suppresses before decaying."""
        lo, hi = self.ban_span_range
        if hi <= lo:
            return lo
        draw = _draw(self.seed, _SALT_BAN_SPAN, src_int, window_base)
        return lo + draw % (hi - lo + 1)


class Tarpit(DefenseMiddlebox):
    """Accepts flows from aggressive sources, then stalls them.

    Sources probing at or above ``trigger_pps`` (or unpaced) have a
    seeded share of their flows trapped: the query is accepted but never
    answered, and a seeded stall of ``stall_seconds`` virtual seconds is
    charged against the scanner's timeout budget (tallied in the
    ``tarpit_stall_ms`` fault counter, which survives forked shard
    workers).  Below the trigger the tarpit ignores the source — tarpits
    key on scan-like aggression, so a paced scanner slips under.
    """

    drop_cause = CAUSE_TARPIT

    def __init__(self, protected_networks, trigger_pps=250.0,
                 stall_seconds=(20.0, 75.0), trap_share=1.0, seed=0,
                 active_after=0.0):
        super().__init__(protected_networks, seed=seed,
                         active_after=active_after)
        self.trigger_pps = float(trigger_pps)
        self.stall_range = (float(stall_seconds[0]), float(stall_seconds[1]))
        self.trap_share = float(trap_share)

    def _config_signature(self):
        return (self.trigger_pps, self.stall_range, self.trap_share)

    def probe_fate(self, src_int, dst_int, rate_bucket):
        if rate_bucket is not None and rate_bucket < self.trigger_pps:
            return None
        if self.trap_share < 1.0:
            draw = _draw(self.seed, _SALT_TARPIT, src_int, dst_int)
            if draw >= int(self.trap_share * _M64):
                return None
        return CAUSE_TARPIT

    def stall_seconds(self, src_int, dst_int):
        """Virtual seconds one trapped flow burns, seeded per flow."""
        lo, hi = self.stall_range
        draw = _draw(self.seed, _SALT_STALL, src_int, dst_int)
        return lo + (draw / _M64) * (hi - lo)

    def _on_drop(self, src_ip, dst_int, network):
        network.count_fault(self.drop_cause)
        stall = self.stall_seconds(self._src_int(src_ip), dst_int)
        network.count_fault(TARPIT_STALL_COUNTER, int(stall * 1000))


def defense_boxes(network):
    """The defense plane: middleboxes exposing pure ``probe_fate``."""
    return [box for box in getattr(network, "middleboxes", [])
            if hasattr(box, "probe_fate")]


def default_hostile_population(prefixes, seed=0):
    """The canonical hostile population the bench and chaos jobs fight.

    Deterministic assignment over the scenario's populated prefixes:
    roughly half sit behind token-bucket rate limiters, one prefix is a
    tarpit, and the smallest prefix is hard-blocklisted (``ban_pps=0``:
    every declared rate triggers the ban, so only the error-budget
    suppression path gets coverage there — the "prefix that stays dark"
    of the issue).  Returns the list of boxes, not yet installed.
    """
    ordered = sorted(prefixes, key=lambda net: (net.num_addresses,
                                                net.base))
    if not ordered:
        return []
    hard_blocked = ordered[0]
    rest = ordered[1:]
    tarpitted = [rest[0]] if rest else []
    limited = [net for index, net in enumerate(rest[1:]) if index % 2 == 0]
    boxes = [ReactiveBlocklister([hard_blocked], warn_pps=0.0, ban_pps=0.0,
                                 seed=seed)]
    if tarpitted:
        boxes.append(Tarpit(tarpitted, trigger_pps=250.0, seed=seed + 1))
    if limited:
        boxes.append(TokenBucketRateLimiter(limited, sustainable_pps=300.0,
                                            seed=seed + 2))
    return boxes


def install_hostile_population(network, prefixes, seed=0):
    """Build and install the default hostile population; returns it."""
    boxes = default_hostile_population(prefixes, seed=seed)
    for box in boxes:
        network.add_middlebox(box)
    return boxes
