"""On-path middleboxes: scan blockers and DNS ingress/egress filters.

Section 2.3 of the paper attributes vanished resolver populations to three
causes: (i) the measurement source being blocked at the network level,
(ii) newly deployed DNS ingress/egress filtering, and (iii) genuine
shutdowns.  The first two are middleboxes here, so the verification-scan
methodology (scan again from a second /8) can be reproduced.
"""


# Path verdicts: how a middlebox relates to one (src, dst, dst_port)
# path at the network's current clock.  The network asks per packet —
# boxes answering PATH_IGNORE are never handed the packet itself, so the
# verdict must be cheap: integer arithmetic on the addressing tuple, no
# text parsing.
PATH_IGNORE = "ignore"    # never affects packets on this path right now
PATH_DROP = "drop"        # drops every query on this path right now
PATH_INSPECT = "inspect"  # must see each packet (payload-dependent)


class Middlebox:
    """Base middlebox: sees every packet, may drop or inject."""

    # Flight-recorder attribution for drops this box causes: when a
    # box's verdict (or drops_query/drops_response) kills a packet, the
    # network records this cause string against the loss event.  None
    # falls back to the generic "middlebox_drop"; defensive boxes
    # (:mod:`repro.netsim.defense`) set ``defense:*`` causes.
    drop_cause = None

    def path_verdict(self, src_ip, dst_int, dst_port, network):
        """Classify this box's effect on a path (see PATH_* above).

        ``dst_int`` is the destination as a 32-bit integer — the network
        hands middleboxes the numeric form so per-packet verdicts stay
        free of dotted-quad parsing (scans visit millions of distinct
        destinations, so per-destination string caches never hit).  The
        conservative default keeps duck-typed boxes correct: inspect
        everything.  Boxes whose behaviour is a pure function of the
        addressing tuple and the clock should return PATH_IGNORE or
        PATH_DROP so the network can skip them on the hot path.
        """
        return PATH_INSPECT

    def drops_query(self, packet, network):
        """Return True to silently drop the query before delivery."""
        return False

    def drops_response(self, query_packet, response_packet, network):
        """Return True to silently drop a response on its way back."""
        return False

    def inject_responses(self, packet, network):
        """Return a list of :class:`UdpResponse` to inject for this query."""
        return []

    def scan_interest(self, src_ip, dst_port, network, qname_suffix=None):
        """Destinations this box may affect for ``(src_ip, dst_port)`` at
        the network's current clock, as ``(base, mask)`` ranges.

        ``qname_suffix``, when given, promises every probe in the sweep
        queries a name under that suffix — payload-inspecting boxes may
        use it to prove themselves inert.  ``[]`` means "no
        destination" (the box is inert for this scan source right now);
        ``None`` means "cannot enumerate" and forces the scanner back
        onto the per-packet path for every probe.  The batched scan
        sweep uses this once per scan to split the target space into a
        bulk-settled cold region and a fully-simulated hot region, so
        an over-wide answer costs only speed — an under-wide one would
        change results, hence the conservative default.
        """
        return None


class ScannerBlocker(Middlebox):
    """Blocks all traffic from specific source addresses into a set of
    prefixes — explanation (i): "our requests were blocked at the network
    level".  A verification scan from a different source IP still gets
    through, which is how the paper distinguished this case."""

    def __init__(self, blocked_sources, protected_networks, active_after=0.0):
        self.blocked_sources = frozenset(blocked_sources)
        self.protected_networks = list(protected_networks)
        self.active_after = active_after
        self._protect_masks = [(net.base, net.mask)
                               for net in self.protected_networks]
        self._protect_cache = {}

    def _protects(self, ip):
        cached = self._protect_cache.get(ip)
        if cached is None:
            cached = any(ip in net for net in self.protected_networks)
            if len(self._protect_cache) < 1 << 20:
                self._protect_cache[ip] = cached
        return cached

    def path_verdict(self, src_ip, dst_int, dst_port, network):
        if (network.clock.now < self.active_after
                or src_ip not in self.blocked_sources):
            return PATH_IGNORE
        for base, mask in self._protect_masks:
            if dst_int & mask == base:
                return PATH_DROP
        return PATH_IGNORE

    def drops_query(self, packet, network):
        if network.clock.now < self.active_after:
            return False
        return (packet.src_ip in self.blocked_sources
                and self._protects(packet.dst_ip))

    def scan_interest(self, src_ip, dst_port, network, qname_suffix=None):
        """Mirror of :meth:`path_verdict` over a whole scan: inert unless
        active and the source is blocked, else the protected ranges."""
        if (network.clock.now < self.active_after
                or src_ip not in self.blocked_sources):
            return []
        return self._protect_masks


class DnsIngressFilter(Middlebox):
    """Blocks DNS (port 53) traffic entering a set of prefixes from anywhere
    outside them — explanation (ii): ISP-deployed DNS ingress filtering.
    Unlike :class:`ScannerBlocker` this also defeats verification scans."""

    def __init__(self, protected_networks, active_after=0.0, port=53):
        self.protected_networks = list(protected_networks)
        self.active_after = active_after
        self.port = port
        self._inside_masks = [(net.base, net.mask)
                              for net in self.protected_networks]
        self._inside_cache = {}

    def _inside(self, ip):
        cached = self._inside_cache.get(ip)
        if cached is None:
            cached = any(ip in net for net in self.protected_networks)
            if len(self._inside_cache) < 1 << 20:
                self._inside_cache[ip] = cached
        return cached

    def path_verdict(self, src_ip, dst_int, dst_port, network):
        if (dst_port != self.port
                or network.clock.now < self.active_after
                or self._inside(src_ip)):
            return PATH_IGNORE
        for base, mask in self._inside_masks:
            if dst_int & mask == base:
                return PATH_DROP
        return PATH_IGNORE

    def drops_query(self, packet, network):
        if network.clock.now < self.active_after:
            return False
        return (packet.dst_port == self.port
                and self._inside(packet.dst_ip)
                and not self._inside(packet.src_ip))

    def scan_interest(self, src_ip, dst_port, network, qname_suffix=None):
        """Inert unless filtering this port, active, and the scan source
        sits outside the filtered prefixes; else the filtered ranges."""
        if (dst_port != self.port
                or network.clock.now < self.active_after
                or self._inside(src_ip)):
            return []
        return self._inside_masks
