"""On-path middleboxes: scan blockers and DNS ingress/egress filters.

Section 2.3 of the paper attributes vanished resolver populations to three
causes: (i) the measurement source being blocked at the network level,
(ii) newly deployed DNS ingress/egress filtering, and (iii) genuine
shutdowns.  The first two are middleboxes here, so the verification-scan
methodology (scan again from a second /8) can be reproduced.
"""


class Middlebox:
    """Base middlebox: sees every packet, may drop or inject."""

    def drops_query(self, packet, network):
        """Return True to silently drop the query before delivery."""
        return False

    def drops_response(self, query_packet, response_packet, network):
        """Return True to silently drop a response on its way back."""
        return False

    def inject_responses(self, packet, network):
        """Return a list of :class:`UdpResponse` to inject for this query."""
        return []


class ScannerBlocker(Middlebox):
    """Blocks all traffic from specific source addresses into a set of
    prefixes — explanation (i): "our requests were blocked at the network
    level".  A verification scan from a different source IP still gets
    through, which is how the paper distinguished this case."""

    def __init__(self, blocked_sources, protected_networks, active_after=0.0):
        self.blocked_sources = frozenset(blocked_sources)
        self.protected_networks = list(protected_networks)
        self.active_after = active_after

    def _protects(self, ip):
        return any(ip in net for net in self.protected_networks)

    def drops_query(self, packet, network):
        if network.clock.now < self.active_after:
            return False
        return (packet.src_ip in self.blocked_sources
                and self._protects(packet.dst_ip))


class DnsIngressFilter(Middlebox):
    """Blocks DNS (port 53) traffic entering a set of prefixes from anywhere
    outside them — explanation (ii): ISP-deployed DNS ingress filtering.
    Unlike :class:`ScannerBlocker` this also defeats verification scans."""

    def __init__(self, protected_networks, active_after=0.0, port=53):
        self.protected_networks = list(protected_networks)
        self.active_after = active_after
        self.port = port

    def _inside(self, ip):
        return any(ip in net for net in self.protected_networks)

    def drops_query(self, packet, network):
        if network.clock.now < self.active_after:
            return False
        return (packet.dst_port == self.port
                and self._inside(packet.dst_ip)
                and not self._inside(packet.src_ip))
