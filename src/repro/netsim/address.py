"""IPv4 address arithmetic and well-known reserved ranges.

A tiny, dependency-free equivalent of the pieces of :mod:`ipaddress` the
scanners need, plus the private/unallocated ranges the paper's Internet-wide
scans exclude.
"""

# Conversion memos: scans touch every address of every target prefix each
# week, so both directions are called hundreds of thousands of times per
# simulated week on a small, recurring working set.  Capped so unbounded
# address churn cannot grow them without limit.
_INT_CACHE = {}
_TEXT_CACHE = {}
_CACHE_LIMIT = 1 << 18


def ip_to_int(text):
    """Convert dotted-quad text to a 32-bit integer."""
    value = _INT_CACHE.get(text)
    if value is not None:
        return value
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError("bad IPv4 address %r" % text)
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError("bad IPv4 address %r" % text)
        value = (value << 8) | octet
    if len(_INT_CACHE) < _CACHE_LIMIT:
        _INT_CACHE[text] = value
    return value


def int_to_ip(value):
    """Convert a 32-bit integer to dotted-quad text."""
    text = _TEXT_CACHE.get(value)
    if text is not None:
        return text
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError("IPv4 integer out of range: %r" % value)
    text = "%d.%d.%d.%d" % (value >> 24, (value >> 16) & 0xFF,
                            (value >> 8) & 0xFF, value & 0xFF)
    if len(_TEXT_CACHE) < _CACHE_LIMIT:
        _TEXT_CACHE[value] = text
    return text


class Ipv4Network:
    """A CIDR prefix, e.g. ``Ipv4Network("10.0.0.0/8")``."""

    def __init__(self, cidr):
        base_text, __, length_text = cidr.partition("/")
        self.prefix_length = int(length_text) if length_text else 32
        if not 0 <= self.prefix_length <= 32:
            raise ValueError("bad prefix length in %r" % cidr)
        self.mask = (0xFFFFFFFF << (32 - self.prefix_length)) & 0xFFFFFFFF
        self.base = ip_to_int(base_text) & self.mask

    @property
    def cidr(self):
        return "%s/%d" % (int_to_ip(self.base), self.prefix_length)

    @property
    def num_addresses(self):
        return 1 << (32 - self.prefix_length)

    def __contains__(self, address):
        if isinstance(address, str):
            address = ip_to_int(address)
        return (address & self.mask) == self.base

    def contains_int(self, value):
        return (value & self.mask) == self.base

    def address_at(self, index):
        """The dotted-quad address ``index`` positions into the prefix."""
        if not 0 <= index < self.num_addresses:
            raise IndexError("index %d outside %s" % (index, self.cidr))
        return int_to_ip(self.base + index)

    def __eq__(self, other):
        return isinstance(other, Ipv4Network) and (
            other.base, other.prefix_length) == (self.base, self.prefix_length)

    def __hash__(self):
        return hash((self.base, self.prefix_length))

    def __repr__(self):
        return "Ipv4Network(%r)" % self.cidr


# Ranges excluded from Internet-wide scans: private, loopback, link-local,
# multicast, reserved, and documentation space.
RESERVED_NETWORKS = tuple(Ipv4Network(cidr) for cidr in (
    "0.0.0.0/8",
    "10.0.0.0/8",
    "100.64.0.0/10",
    "127.0.0.0/8",
    "169.254.0.0/16",
    "172.16.0.0/12",
    "192.0.0.0/24",
    "192.0.2.0/24",
    "192.168.0.0/16",
    "198.18.0.0/15",
    "198.51.100.0/24",
    "203.0.113.0/24",
    "224.0.0.0/4",
    "240.0.0.0/4",
))

_PRIVATE_NETWORKS = tuple(Ipv4Network(cidr) for cidr in (
    "10.0.0.0/8", "172.16.0.0/12", "192.168.0.0/16", "169.254.0.0/16",
    "127.0.0.0/8",
))


def is_reserved(address):
    """True when the address falls in a range excluded from scanning."""
    value = ip_to_int(address) if isinstance(address, str) else address
    return any(net.contains_int(value) for net in RESERVED_NETWORKS)


def is_private(address):
    """True for RFC1918/loopback/link-local space (LAN addresses).

    The pipeline uses this to recognise resolvers that answer with LAN IPs
    (a captive-portal / router-login signature, §4.2).
    """
    value = ip_to_int(address) if isinstance(address, str) else address
    return any(net.contains_int(value) for net in _PRIVATE_NETWORKS)


def reverse_pointer_name(address):
    """The in-addr.arpa name for an address, used for rDNS lookups."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError("bad IPv4 address %r" % address)
    return ".".join(reversed(parts)) + ".in-addr.arpa"


def same_slash24(left, right):
    """True when two addresses share their /24 prefix (§4.2 heuristic)."""
    return (ip_to_int(left) >> 8) == (ip_to_int(right) >> 8)
