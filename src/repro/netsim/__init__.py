"""Packet-level simulated IPv4 Internet.

The simulator replaces the live Internet of the paper's measurements: hosts
are registered under IPv4 addresses, UDP queries and TCP connections are
routed to them with configurable latency and loss, and on-path middleboxes
(the Great Firewall injector, network-level scan blockers, DNS ingress/egress
filters) can observe, drop, or inject packets.  The scanning and analysis
code above this layer is identical to what would run against real sockets.
"""

from repro.netsim.address import (
    Ipv4Network,
    RESERVED_NETWORKS,
    int_to_ip,
    ip_to_int,
    is_private,
    is_reserved,
    reverse_pointer_name,
)
from repro.netsim.clock import SimClock
from repro.netsim.network import Network, Node, UdpPacket, UdpResponse
from repro.netsim.gfw import GreatFirewall
from repro.netsim.middlebox import (
    DnsIngressFilter,
    Middlebox,
    ScannerBlocker,
)
from repro.netsim.defense import (
    DefenseMiddlebox,
    ReactiveBlocklister,
    Tarpit,
    TokenBucketRateLimiter,
    default_hostile_population,
    install_hostile_population,
)

__all__ = [
    "DefenseMiddlebox",
    "DnsIngressFilter",
    "GreatFirewall",
    "Ipv4Network",
    "Middlebox",
    "Network",
    "Node",
    "RESERVED_NETWORKS",
    "ReactiveBlocklister",
    "ScannerBlocker",
    "SimClock",
    "Tarpit",
    "TokenBucketRateLimiter",
    "UdpPacket",
    "UdpResponse",
    "default_hostile_population",
    "install_hostile_population",
    "int_to_ip",
    "ip_to_int",
    "is_private",
    "is_reserved",
    "reverse_pointer_name",
]
