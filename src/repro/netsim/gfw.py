"""The Great Firewall of China as an on-path DNS injector.

The paper found (§4.2) that 2.4% of Chinese resolvers appeared to return two
responses for censored domains: a forged A record arriving first, and the
legitimate answer a few milliseconds later.  Follow-up probes to *randomly
chosen* Chinese IP ranges — including addresses with no resolver at all —
also triggered forged answers, showing the injection is on-path rather than
performed by the resolvers themselves.  This middlebox reproduces both
artefacts: it watches DNS queries crossing into its prefixes, and for
censored names injects a forged response with lower latency than any
genuine reply.
"""

import random

from repro.dnswire.constants import CLASS_IN, QTYPE_A
from repro.dnswire.message import Message
from repro.dnswire.name import decode_name, normalize_name
from repro.dnswire.records import ResourceRecord
from repro.netsim.address import int_to_ip, ip_to_int
from repro.netsim.middlebox import PATH_IGNORE, PATH_INSPECT, Middlebox
from repro.netsim.network import UdpResponse

_QTYPE_A_IN_WIRE = b"\x00\x01\x00\x01"


class GreatFirewall(Middlebox):
    """On-path injector of forged DNS A responses for censored domains."""

    def __init__(self, prefixes, censored_domains, seed=0,
                 injection_latency=0.004, decoy_pool=(), decoy_share=0.25):
        self.prefixes = list(prefixes)
        self.censored = frozenset(normalize_name(d) for d in censored_domains)
        self.injection_latency = injection_latency
        self._seed = seed
        # Occasionally forged answers point at real, allocated hosts —
        # making some of the "randomly-chosen" addresses serve content.
        self.decoy_pool = list(decoy_pool)
        self.decoy_share = decoy_share
        self.injection_count = 0
        self._prefix_masks = [(p.base, p.mask) for p in self.prefixes]
        # First octets covered by any watched prefix: a one-lookup guard
        # that rejects almost every destination before the mask loop.
        octets = set()
        for prefix in self.prefixes:
            span = 1 << max(0, 8 - prefix.prefix_length)
            first = prefix.base >> 24
            octets.update(range(first, first + span))
        self._dst_octet_guard = frozenset(octets)
        self._inside_cache = {}
        # (src, dst) -> crosses-boundary, the per-packet hot check.
        self._boundary_cache = {}

    def _inside(self, ip):
        cached = self._inside_cache.get(ip)
        if cached is None:
            value = ip_to_int(ip)
            cached = any((value & mask) == base
                         for base, mask in self._prefix_masks)
            if len(self._inside_cache) < 1 << 20:
                self._inside_cache[ip] = cached
        return cached

    def censors_name(self, name):
        """True when ``name`` or any parent domain is on the censor list."""
        labels = normalize_name(name).split(".")
        for i in range(len(labels)):
            if ".".join(labels[i:]) in self.censored:
                return True
        return False

    def path_verdict(self, src_ip, dst_int, dst_port, network):
        """Injection depends on the query name, so boundary-crossing DNS
        paths need per-packet inspection; everything else is ignored."""
        if dst_port != 53 or not self.censored:
            return PATH_IGNORE
        inside_dst = False
        if dst_int >> 24 in self._dst_octet_guard:
            for base, mask in self._prefix_masks:
                if dst_int & mask == base:
                    inside_dst = True
                    break
        inside_src = self._inside_cache.get(src_ip)
        if inside_src is None:
            inside_src = self._inside(src_ip)
        if inside_dst == inside_src:
            return PATH_IGNORE
        return PATH_INSPECT

    def scan_interest(self, src_ip, dst_port, network, qname_suffix=None):
        """Outside sources probing port 53 interest exactly the watched
        prefixes; a source *inside* them makes the interesting region
        "everywhere outside", which is not enumerable — return ``None``
        so such scans take the per-packet path.

        When the sweep promises a ``qname_suffix``, injection can only
        trigger if some censored entry is reachable under it — either
        the suffix itself (or a parent) is censored, or a censored name
        is a strict subdomain of the suffix that a probe's variable
        labels could spell out.  A clean measurement domain rules both
        out, making this box provably inert for the whole sweep.
        """
        if dst_port != 53 or not self.censored:
            return []
        if qname_suffix is not None:
            suffix = normalize_name(qname_suffix)
            tail = "." + suffix
            if not self.censors_name(suffix) and not any(
                    name.endswith(tail) for name in self.censored):
                return []
        if self._inside(src_ip):
            return None
        return self._prefix_masks

    def _crosses_boundary(self, packet):
        key = (packet.src_ip, packet.dst_ip)
        cached = self._boundary_cache.get(key)
        if cached is None:
            cached = self._inside(packet.dst_ip) != self._inside(
                packet.src_ip)
            if len(self._boundary_cache) < 1 << 20:
                self._boundary_cache[key] = cached
        return cached

    def forged_address(self, query_name, client_key=None):
        """A pseudo-random bogus IPv4 address.

        Deterministic per (name, client): different clients observe
        different "randomly-chosen" addresses, as the paper reports, but
        a run is reproducible.
        """
        rng = random.Random("%s|%s|%s" % (
            self._seed, normalize_name(query_name), client_key))
        if self.decoy_pool and rng.random() < self.decoy_share:
            return self.decoy_pool[rng.randrange(len(self.decoy_pool))]
        # Forged answers observed from the GFW look like arbitrary global
        # unicast addresses; draw from 1.0.0.0 - 223.255.255.255.
        value = rng.randrange(ip_to_int("1.0.0.0"), ip_to_int("224.0.0.0"))
        return int_to_ip(value)

    def inject_responses(self, packet, network):
        if packet.dst_port != 53 or not self._crosses_boundary(packet):
            return []
        # Light triage before any full message parse: an on-path injector
        # only needs the query bit, a single question, and its name.
        payload = packet.payload
        if (len(payload) < 12 or payload[2] & 0x80
                or payload[4:6] != b"\x00\x01"):
            return []
        try:
            name, pos = decode_name(payload, 12)
        except (ValueError, IndexError):
            return []
        if payload[pos:pos + 4] != _QTYPE_A_IN_WIRE:
            return []
        if not self.censors_name(name):
            return []
        # Censored A query confirmed (rare path): parse fully to echo the
        # question section faithfully in the forged answer.
        try:
            query = Message.from_wire(packet.payload)
        except ValueError:
            return []
        question = query.question
        if question is None or query.header.qr:
            return []
        if question.qtype != QTYPE_A or question.qclass != CLASS_IN:
            return []
        forged = query.make_response()
        forged.answers.append(ResourceRecord.a(
            question.name,
            self.forged_address(question.name, client_key=packet.src_ip),
            ttl=300))
        self.injection_count += 1
        reply = packet.reply(forged.to_wire())
        return [UdpResponse(reply, self.injection_latency, injected=True)]
