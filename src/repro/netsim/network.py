"""The simulated network core: node registry, UDP routing, TCP services.

The model is synchronous request/response: a sender hands the network a UDP
packet and receives back the list of response packets, each tagged with its
simulated one-way latency.  Middleboxes on the path may drop the query,
drop responses, or inject forged responses — forged GFW answers arrive with
lower latency than the genuine ones, reproducing the racing behaviour the
paper observed (§4.2).
"""

from array import array
from operator import attrgetter

from repro.netsim.address import ip_to_int
from repro.netsim.middlebox import (
    PATH_DROP,
    PATH_INSPECT,
    Middlebox,
)

# splitmix64 finaliser: mixes a flow key into an evenly distributed
# 64-bit value.  Used for packet-fate decisions (loss, corruption) so the
# outcome of each delivery is a pure function of (network seed, flow,
# occurrence) — independent of how concurrent flows interleave, which is
# what lets sharded scan workers reproduce a sequential scan exactly.
_M64 = (1 << 64) - 1


def _mix64(value):
    value &= _M64
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _M64
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _M64
    value ^= value >> 31
    return value


_SALT_QUERY_LOSS = 0x51
_SALT_RESPONSE_LOSS = 0x52
_SALT_CORRUPTION = 0x53
# Occurrence-counter salts for the flow-keyed TCP loss draw and the
# fault-injection plane (the fault *draws* themselves live in
# :mod:`repro.faults`; these only key the per-flow occurrence counters
# so fault draws never share a counter with baseline loss draws).
_SALT_TCP_LOSS = 0x54
_SALT_FAULT_QUERY = 0x55
_SALT_FAULT_TRUNC = 0x56
_SALT_FAULT_TCP = 0x57

# Bulk-scan support: the mixed occurrence index of a flow's *first* draw
# (occurrence 0 → _mix64(1)), and a small cache of whole-column loss
# selectors.  Loss fates are pure functions of (seed, loss rate, flow),
# so selectors survive scenario rebuilds and repeat scans for free.
_MIX_FIRST_OCCURRENCE = _mix64(1)
_LOSS_SELECTOR_CACHE = {}


class UdpPacket:
    """A UDP datagram: addressing 4-tuple plus opaque payload bytes.

    ``dst_int`` optionally carries the destination as a 32-bit integer.
    Senders that already hold the integer form (the scanner generates
    targets numerically) pass it so the delivery path never has to parse
    dotted-quad text per packet; it must equal ``ip_to_int(dst_ip)``.
    """

    __slots__ = ("src_ip", "src_port", "dst_ip", "dst_port", "payload",
                 "dst_int")

    def __init__(self, src_ip, src_port, dst_ip, dst_port, payload,
                 dst_int=None):
        self.src_ip = src_ip
        self.src_port = src_port
        self.dst_ip = dst_ip
        self.dst_port = dst_port
        self.payload = payload
        self.dst_int = dst_int

    def reply(self, payload, src_ip=None, src_port=None):
        """Build a response packet back to this packet's sender.

        ``src_ip`` lets multi-homed hosts and proxies answer from an address
        other than the one queried — the paper detects exactly this by
        encoding the target IP in the query.
        """
        return UdpPacket(
            src_ip=src_ip if src_ip is not None else self.dst_ip,
            src_port=src_port if src_port is not None else self.dst_port,
            dst_ip=self.src_ip,
            dst_port=self.src_port,
            payload=payload,
        )

    def __repr__(self):
        return "UdpPacket(%s:%d -> %s:%d, %d bytes)" % (
            self.src_ip, self.src_port, self.dst_ip, self.dst_port,
            len(self.payload))


class UdpResponse:
    """A response packet plus the simulated latency at which it arrives."""

    __slots__ = ("packet", "latency", "injected")

    def __init__(self, packet, latency, injected=False):
        self.packet = packet
        self.latency = latency
        self.injected = injected

    def __repr__(self):
        return "UdpResponse(%r, latency=%.4f, injected=%s)" % (
            self.packet, self.latency, self.injected)


class Node:
    """Base class for everything attached to the network.

    Subclasses override the handlers for the services they provide.  All
    handlers may issue their own queries through ``network`` (that is how
    recursive resolvers reach the authoritative hierarchy).
    """

    def __init__(self, ip):
        self.ip = ip

    def handle_udp(self, packet, network):
        """Handle a UDP datagram; return payload bytes, a list of
        (payload, source_ip) pairs, or ``None`` to stay silent."""
        return None

    def tcp_ports(self):
        """Ports accepting TCP connections (for banner grabbing)."""
        return frozenset()

    def tcp_banner(self, port, network=None):
        """The greeting banner a TCP client sees on ``port``, or ``None``."""
        return None

    def handle_http(self, request, network):
        """Serve an HTTP request (a :class:`repro.websim.http.HttpRequest`);
        return an ``HttpResponse`` or ``None`` when no web service runs."""
        return None

    def tls_certificate(self, sni, network=None):
        """Return the TLS certificate presented for ``sni`` (or the default
        certificate when ``sni`` is ``None``); ``None`` = no TLS service."""
        return None

    def __repr__(self):
        return "%s(ip=%r)" % (type(self).__name__, self.ip)


class Network:
    """Routes packets between registered nodes, applying loss, latency,
    and middlebox policy."""

    def __init__(self, clock, seed=0, loss_rate=0.0, base_latency=0.020,
                 corruption_rate=0.0):
        self.clock = clock
        self.loss_rate = loss_rate
        # Share of delivered responses whose payload arrives damaged
        # (invalid UDP checksum in the paper's terms, §5 Completeness);
        # receivers must treat such packets as garbage and drop them.
        self.corruption_rate = corruption_rate
        self.base_latency = base_latency
        self.middleboxes = []
        self._response_droppers = []
        # (box, bound path_verdict or None) pairs, rebuilt whenever a
        # middlebox is added; binding once keeps the per-packet verdict
        # loop to plain calls with no attribute lookups.
        self._path_checks = []
        self._nodes = {}
        # Integer-keyed mirror of the registry.  The batched scan sweep
        # triages a whole batch of numeric targets against this (one C
        # set/dict operation per batch) without ever materialising the
        # dotted-quad text of addresses that host nothing.
        self._nodes_by_int = {}
        # Registry generation counter + memoised content signature (see
        # :meth:`nodes_signature`); any mutation invalidates the memo.
        self._nodes_version = 0
        self._nodes_sig = None
        self._seed = seed
        # Per-flow occurrence counters for packet-fate decisions; repeated
        # sends over the same 4-tuple get fresh draws (so loss statistics
        # hold), while each occurrence's fate stays order-independent.
        # Reset whenever simulated time moves, bounding memory to one
        # scan's worth of flows.
        self._flow_counts = {}
        self._flow_epoch = clock.now
        # Pure-function memos for the fate computation (never reset):
        # 4-tuple -> unsalted flow key, occurrence -> mixed occurrence.
        self._flow_key_cache = {}
        self._occurrence_mix = {}
        self._seed_high = (seed << 32) & _M64
        self.udp_queries_sent = 0
        self.udp_queries_lost = 0
        self.udp_responses_corrupted = 0
        # Optional fault-injection plan (:class:`repro.faults.FaultPlan`)
        # plus counters of every fault injected or absorbed; ``None``
        # keeps every fault hook a single attribute test.
        self.faults = None
        self.fault_counters = {}
        # Optional observability instruments (:mod:`repro.obs`): a span
        # tracer and a packet flight recorder.  ``None`` means disabled,
        # and the probe hot path pays exactly one attribute test each —
        # no allocation, no call — which is what keeps the scan perf
        # gates intact with tracing off.
        self.tracer = None
        self.recorder = None
        # Declared probe rate (probes/sec bucket, int) of the scan
        # currently sending, or None for unpaced/background traffic.
        # Defensive middleboxes (:mod:`repro.netsim.defense`) key their
        # verdicts on it; the scanner publishes it before each probe so
        # defense fates stay pure functions, reproducible shard-side.
        self.scan_rate_bucket = None

    # -- registry ---------------------------------------------------------

    def register(self, node):
        """Attach a node at its IP; replaces any previous occupant."""
        self._nodes[node.ip] = node
        self._nodes_by_int[ip_to_int(node.ip)] = node
        self._nodes_version += 1

    def unregister(self, ip):
        self._nodes.pop(ip, None)
        self._nodes_by_int.pop(ip_to_int(ip), None)
        self._nodes_version += 1

    def rebind(self, node, new_ip):
        """Move a node to a new address (DHCP churn)."""
        if self._nodes.get(node.ip) is node:
            del self._nodes[node.ip]
            self._nodes_by_int.pop(ip_to_int(node.ip), None)
        node.ip = new_ip
        self._nodes[new_ip] = node
        self._nodes_by_int[ip_to_int(new_ip)] = node
        self._nodes_version += 1

    def nodes_signature(self):
        """Exact content signature of the occupied address set.

        The bytes of the sorted integer registry keys: equal signatures
        imply the same set of live addresses, across *different* network
        instances (scenario rebuilds, bench repeats).  Sweep-plan memos
        key on it, so the signature is content- not identity-based;
        it is recomputed only after registry mutations.
        """
        if self._nodes_sig is None \
                or self._nodes_sig[0] != self._nodes_version:
            signature = array("Q", sorted(self._nodes_by_int)).tobytes()
            self._nodes_sig = (self._nodes_version, signature)
        return self._nodes_sig[1]

    def node_at(self, ip):
        return self._nodes.get(ip)

    @property
    def node_count(self):
        return len(self._nodes)

    def add_middlebox(self, middlebox):
        self.middleboxes.append(middlebox)
        # Boxes without a path_verdict (duck-typed test doubles) are
        # conservatively inspected for every packet.
        self._path_checks = [
            (box, getattr(box, "path_verdict", None))
            for box in self.middleboxes]
        # drops_response cannot be classified per path (it may depend on
        # the response packet), so boxes that override it are consulted
        # for every delivered reply; the rest are skipped entirely.
        self._response_droppers = [
            box for box in self.middleboxes
            if not isinstance(box, Middlebox)
            or type(box).drops_response is not Middlebox.drops_response]

    # -- latency / loss ---------------------------------------------------

    def latency_between(self, src_ip, dst_ip):
        """Deterministic pairwise latency: base plus a hash-derived jitter."""
        mix = (ip_to_int(src_ip) * 2654435761 ^ ip_to_int(dst_ip)) & 0xFFFFFFFF
        return self.base_latency + (mix % 1000) / 1000.0 * 0.180

    def install_faults(self, plan):
        """Activate a :class:`repro.faults.FaultPlan` on this network."""
        self.faults = plan
        return plan

    def count_fault(self, name, amount=1):
        """Record one injected/absorbed fault under ``name``."""
        counters = self.fault_counters
        counters[name] = counters.get(name, 0) + amount

    def _occurrence(self, key):
        """Occurrence index of one salted flow key this scan epoch."""
        if self.clock.now != self._flow_epoch:
            self._flow_counts.clear()
            self._flow_epoch = self.clock.now
        occurrence = self._flow_counts.get(key, 0)
        self._flow_counts[key] = occurrence + 1
        return occurrence

    def _tcp_lost(self, src_ip, dst_ip, port):
        """Flow-keyed loss draw for connection-oriented services (TCP).

        Same contract as :meth:`_packet_fate`: a pure hash of (seed,
        flow, occurrence), so connection outcomes are independent of how
        pipeline fetches interleave — not a shared sequential RNG.
        """
        loss_rate = self.loss_rate
        if loss_rate <= 0:
            return False
        key = _SALT_TCP_LOSS ^ (
            ip_to_int(src_ip) * 0x9E3779B1 ^ ip_to_int(dst_ip) * 0x85EBCA77
            ^ port << 1)
        occurrence = self._occurrence(key)
        draw = _mix64(self._seed_high ^ key ^ _mix64(occurrence + 1))
        return draw < loss_rate * (_M64 + 1)

    def _tcp_connect(self, src_ip, dst_ip, port, timeout):
        """Fault hook for one TCP connect; False = failed (hung past
        ``timeout``).  A stall shorter than the caller's patience is
        absorbed (the connect eventually completes)."""
        faults = self.faults
        if faults is None or faults.profile.tcp_hang_rate <= 0:
            return True
        base = (ip_to_int(src_ip) * 0x9E3779B1
                ^ ip_to_int(dst_ip) * 0x85EBCA77 ^ port << 1)
        occurrence = self._occurrence(_SALT_FAULT_TCP ^ base)
        stall = faults.tcp_stall_seconds(base, occurrence)
        if stall <= 0.0:
            return True
        if timeout is not None and stall >= timeout:
            self.count_fault("tcp_hang")
            return False
        self.count_fault("tcp_stall_absorbed")
        return True

    def _packet_fate(self, salt, rate, packet):
        """Order-independent delivery decision for one UDP packet.

        The draw is a pure hash of (seed, salt, flow 4-tuple, occurrence
        index of that flow since time last advanced) — NOT a shared
        sequential RNG.  Any interleaving of distinct flows therefore
        yields identical per-packet fates, the property the sharded scan
        engine relies on for bit-identical merged results.
        """
        if self.clock.now != self._flow_epoch:
            self._flow_counts.clear()
            self._flow_epoch = self.clock.now
        dst_int = packet.dst_int
        if dst_int is not None:
            # Integer addressing available: compute the flow key directly,
            # skipping both text parsing and the string-tuple memo.
            base = (ip_to_int(packet.src_ip) * 0x9E3779B1
                    ^ dst_int * 0x85EBCA77
                    ^ packet.src_port << 17 ^ packet.dst_port << 1)
        else:
            flow = (packet.src_ip, packet.dst_ip,
                    packet.src_port, packet.dst_port)
            base = self._flow_key_cache.get(flow)
            if base is None:
                base = (ip_to_int(packet.src_ip) * 0x9E3779B1
                        ^ ip_to_int(packet.dst_ip) * 0x85EBCA77
                        ^ packet.src_port << 17 ^ packet.dst_port << 1)
                if len(self._flow_key_cache) < 1 << 20:
                    self._flow_key_cache[flow] = base
        key = salt ^ base
        occurrence = self._flow_counts.get(key, 0)
        self._flow_counts[key] = occurrence + 1
        mixed = self._occurrence_mix.get(occurrence)
        if mixed is None:
            mixed = _mix64(occurrence + 1)
            self._occurrence_mix[occurrence] = mixed
        draw = _mix64(self._seed_high ^ key ^ mixed)
        return draw < rate * (_M64 + 1)

    # -- batched scan sweep ------------------------------------------------
    #
    # The bulk scan path (:meth:`repro.scanner.ipv4scan.Ipv4Scanner.scan`)
    # replaces one :meth:`send_probe` call per target with whole-batch
    # triage: targets that host no node and interest no middlebox are
    # settled with integer set/array operations, and only the rare
    # interesting target pays the full wire path.  The three hooks below
    # are what make that replication *exact*: the same registry, the same
    # interest classification the per-packet verdicts use, and the same
    # flow-keyed loss draw bit for bit.

    def scan_interest(self, src_ip, dst_port, qname_suffix=None):
        """Destinations any middlebox may affect for ``(src_ip, dst_port)``
        at the current clock, as a list of ``(base, mask)`` ranges.

        ``qname_suffix`` tells payload-inspecting boxes what every probe
        in the sweep queries under (the scanner's measurement domain),
        letting an injector that only reacts to censored names rule
        itself out.  Returns ``None`` when any middlebox cannot
        enumerate its interest (duck-typed doubles, source-inside-
        injector paths) — the scanner then routes every probe through
        :meth:`send_probe`, which consults the per-packet verdicts as
        before.  Verdicts are pure functions of the addressing tuple
        and the clock, and the simulated clock never advances inside
        one scan, so ranges gathered at scan start stay valid for the
        whole sweep.
        """
        ranges = []
        for box in self.middleboxes:
            probe = getattr(box, "scan_interest", None)
            if probe is None:
                return None
            box_ranges = probe(src_ip, dst_port, self,
                               qname_suffix=qname_suffix)
            if box_ranges is None:
                return None
            ranges.extend(box_ranges)
        return ranges

    def scan_path_checks(self, src_ip, dst_port, qname_suffix=None):
        """The subset of per-packet path checks a sweep's probes need.

        A middlebox whose :meth:`~repro.netsim.middlebox.Middlebox.
        scan_interest` answers ``[]`` has promised it affects *no*
        destination for this (source, port, qname suffix) at the
        current clock — its verdict/inspect calls on the sweep's own
        probes are pure overhead, so they are pruned.  Boxes answering
        ranges or ``None`` are kept.  The pruned list applies ONLY to
        the scanner-sourced probe sends (via ``send_probe``'s
        ``_checks``); any nested traffic a probed node generates (a
        forwarder relaying upstream) still runs the full check list,
        because the sweep promise covers only the scanner's packets.
        """
        checks = []
        for box, check in self._path_checks:
            probe = getattr(box, "scan_interest", None)
            if probe is None or probe(src_ip, dst_port, self,
                                      qname_suffix=qname_suffix) != []:
                checks.append((box, check))
        return checks

    def begin_flow_epoch(self):
        """Reset stale per-flow occurrence counters; ``True`` when the
        epoch starts clean (no same-epoch flow has been drawn yet).

        The bulk loss selector below is valid only for *first* draws of
        each flow; a dirty epoch (an earlier same-clock scan already
        drew fates) sends the scanner down the per-probe path instead.
        """
        if self.clock.now != self._flow_epoch:
            self._flow_counts.clear()
            self._flow_epoch = self.clock.now
        return not self._flow_counts

    def query_loss_selector(self, src_ip, src_port, dst_port, values):
        """First-occurrence query-loss fates for a whole target column.

        Returns a ``bytearray`` aligned with ``values`` (1 = the first
        probe of that flow this epoch is lost), bit-identical to the
        draw :meth:`send_probe` computes, because it *is* the same pure
        hash of (seed, salt, flow) — evaluated once per (scanner,
        space) and memoised: the draw depends on neither the clock nor
        any mutable state, so weekly re-scans of the same space reuse
        the column for free.
        """
        if self.loss_rate <= 0:
            return None
        flow_const = _SALT_QUERY_LOSS ^ (
            ip_to_int(src_ip) * 0x9E3779B1
            ^ src_port << 17 ^ dst_port << 1)
        scaled_rate = self.loss_rate * (_M64 + 1)
        cache_key = (self._seed_high, self.loss_rate, flow_const,
                     values.tobytes())
        cached = _LOSS_SELECTOR_CACHE.get(cache_key)
        if cached is not None:
            return cached
        seed_high = self._seed_high
        mixed_first = _MIX_FIRST_OCCURRENCE
        selector = bytearray(len(values))
        for position, value in enumerate(values):
            # splitmix64 finaliser, inlined (== _mix64); the key matches
            # send_probe's query-loss key for occurrence 0 exactly.
            draw = (seed_high ^ flow_const ^ value * 0x85EBCA77
                    ^ mixed_first) & _M64
            draw ^= draw >> 30
            draw = (draw * 0xBF58476D1CE4E5B9) & _M64
            draw ^= draw >> 27
            draw = (draw * 0x94D049BB133111EB) & _M64
            draw ^= draw >> 31
            if draw < scaled_rate:
                selector[position] = 1
        if len(_LOSS_SELECTOR_CACHE) >= 8:
            _LOSS_SELECTOR_CACHE.pop(next(iter(_LOSS_SELECTOR_CACHE)))
        _LOSS_SELECTOR_CACHE[cache_key] = selector
        return selector

    def scan_flow_key(self, src_ip, src_port, dst_port, value):
        """The query-loss occurrence key of one probe flow (see
        :meth:`send_probe`) — lets the scanner charge retro-draws."""
        return _SALT_QUERY_LOSS ^ (
            ip_to_int(src_ip) * 0x9E3779B1 ^ value * 0x85EBCA77
            ^ src_port << 17 ^ dst_port << 1)

    def absorb_probe_sweep(self, sent, lost):
        """Fold a bulk-settled batch into the traffic counters."""
        self.udp_queries_sent += sent
        self.udp_queries_lost += lost

    # -- UDP --------------------------------------------------------------

    def send_udp(self, packet):
        """Deliver a UDP packet; return responses sorted by arrival time."""
        dst_int = packet.dst_int
        if dst_int is None:
            dst_int = ip_to_int(packet.dst_ip)
        return self.send_probe(packet.src_ip, packet.src_port,
                               packet.dst_ip, packet.dst_port, dst_int,
                               packet.payload, _packet=packet)

    def send_probe(self, src_ip, src_port, dst_ip, dst_port, dst_int,
                   payload, _packet=None, _checks=None):
        """Wire-level delivery fast path: :meth:`send_udp` semantics with
        the addressing passed as scalars (``dst_int`` must equal
        ``ip_to_int(dst_ip)``).

        The :class:`UdpPacket` is only materialised when something needs
        it — a PATH_INSPECT middlebox or a node at the destination.  For
        the overwhelmingly common scan case (a probe to an address that
        hosts nothing and concerns no middlebox) no packet object is
        built at all.  ``_checks`` substitutes a pre-filtered path-check
        list (see :meth:`scan_path_checks`) for this one send; nested
        sends triggered by the destination node are unaffected.
        """
        self.udp_queries_sent += 1
        # Flight recorder: event kinds/causes per repro.obs.flight.  One
        # attribute load + None test when disabled.
        recorder = self.recorder
        if recorder is not None:
            recorder.record(self.clock.now, "sent", src_ip, dst_int)
        # Per-packet middlebox triage: each box classifies the (src, dst
        # int, port) path and only PATH_INSPECT boxes see the payload.
        # Verdicts are integer arithmetic, so for the common case no box
        # ever touches the packet.
        packet = _packet
        dropped = False
        drop_cause = None
        responses = None
        for box, check in (self._path_checks if _checks is None
                           else _checks):
            if check is not None:
                verdict = check(src_ip, dst_int, dst_port, self)
                if verdict == PATH_DROP:
                    # First dropping box wins attribution: defensive
                    # boxes expose a ``defense:*`` drop_cause; plain
                    # boxes fall back to the generic cause below.
                    if recorder is not None and not dropped:
                        drop_cause = getattr(box, "drop_cause", None)
                    dropped = True
                    continue
                if verdict != PATH_INSPECT:
                    continue
            if packet is None:
                packet = UdpPacket(src_ip, src_port, dst_ip, dst_port,
                                   payload, dst_int)
            injected = box.inject_responses(packet, self)
            if injected:
                if responses is None:
                    responses = list(injected)
                else:
                    responses.extend(injected)
            if box.drops_query(packet, self):
                if recorder is not None and not dropped:
                    drop_cause = getattr(box, "drop_cause", None)
                dropped = True
        loss_rate = self.loss_rate
        delivered = not dropped
        if dropped and recorder is not None:
            recorder.record(self.clock.now, "lost", src_ip, dst_int,
                            drop_cause or "middlebox_drop")
        if delivered and loss_rate > 0:
            # Query-loss fate, inlined (bit-identical to _packet_fate
            # with _SALT_QUERY_LOSS): one draw per probe is the single
            # hottest fate decision, so it skips the call overhead.
            now = self.clock.now
            if now != self._flow_epoch:
                self._flow_counts.clear()
                self._flow_epoch = now
            key = _SALT_QUERY_LOSS ^ (
                ip_to_int(src_ip) * 0x9E3779B1 ^ dst_int * 0x85EBCA77
                ^ src_port << 17 ^ dst_port << 1)
            occurrence = self._flow_counts.get(key, 0)
            self._flow_counts[key] = occurrence + 1
            mixed = self._occurrence_mix.get(occurrence)
            if mixed is None:
                mixed = _mix64(occurrence + 1)
                self._occurrence_mix[occurrence] = mixed
            draw = (self._seed_high ^ key ^ mixed) & _M64
            draw ^= draw >> 30
            draw = (draw * 0xBF58476D1CE4E5B9) & _M64
            draw ^= draw >> 27
            draw = (draw * 0x94D049BB133111EB) & _M64
            draw ^= draw >> 31
            delivered = draw >= loss_rate * (_M64 + 1)
            if not delivered and recorder is not None:
                recorder.record(now, "lost", src_ip, dst_int,
                                "baseline_loss")
        faults = self.faults
        if delivered and faults is not None:
            # Injected query fate (burst loss / rate limiting / extra
            # loss): flow-keyed like the baseline draw, with its own
            # occurrence counter so fault and loss draws never alias.
            now = self.clock.now
            if now != self._flow_epoch:
                self._flow_counts.clear()
                self._flow_epoch = now
            base = (ip_to_int(src_ip) * 0x9E3779B1 ^ dst_int * 0x85EBCA77
                    ^ src_port << 17 ^ dst_port << 1)
            fault_key = _SALT_FAULT_QUERY ^ base
            occurrence = self._flow_counts.get(fault_key, 0)
            self._flow_counts[fault_key] = occurrence + 1
            reason = faults.query_fate(base, dst_int, occurrence, now)
            if reason is not None:
                self.count_fault(reason)
                delivered = False
                if recorder is not None:
                    recorder.record(now, "lost", src_ip, dst_int,
                                    "fault:" + reason)
        if delivered:
            node = self._nodes.get(dst_ip)
            if node is not None:
                if packet is None:
                    packet = UdpPacket(src_ip, src_port, dst_ip, dst_port,
                                       payload, dst_int)
                result = node.handle_udp(packet, self)
                base = self.latency_between(src_ip, dst_ip)
                for reply in self._normalize_replies(packet, result):
                    if loss_rate > 0 and self._packet_fate(
                            _SALT_RESPONSE_LOSS, loss_rate, reply):
                        self.udp_queries_lost += 1
                        if recorder is not None:
                            recorder.record(self.clock.now,
                                            "response_lost", src_ip,
                                            dst_int, "response_loss")
                        continue
                    if self._response_droppers:
                        dropper = None
                        for box in self._response_droppers:
                            if box.drops_response(packet, reply, self):
                                dropper = box
                                break
                        if dropper is not None:
                            if recorder is not None:
                                recorder.record(
                                    self.clock.now, "response_lost",
                                    src_ip, dst_int,
                                    getattr(dropper, "drop_cause", None)
                                    or "middlebox_drop")
                            continue
                    if self.corruption_rate > 0 and self._packet_fate(
                            _SALT_CORRUPTION, self.corruption_rate, reply):
                        reply = UdpPacket(
                            reply.src_ip, reply.src_port, reply.dst_ip,
                            reply.dst_port, self._corrupt(reply.payload))
                        self.udp_responses_corrupted += 1
                        if recorder is not None:
                            recorder.record(self.clock.now, "corrupted",
                                            src_ip, dst_int, "corruption")
                    if faults is not None and \
                            faults.profile.truncation_rate > 0:
                        reply_base = (
                            ip_to_int(reply.src_ip) * 0x9E3779B1
                            ^ ip_to_int(reply.dst_ip) * 0x85EBCA77
                            ^ reply.src_port << 17 ^ reply.dst_port << 1)
                        reply_occurrence = self._occurrence(
                            _SALT_FAULT_TRUNC ^ reply_base)
                        if faults.truncates_response(reply_base,
                                                     reply_occurrence):
                            # Truncated below the 12-byte DNS header:
                            # receivers must discard it as garbage.
                            reply = UdpPacket(
                                reply.src_ip, reply.src_port,
                                reply.dst_ip, reply.dst_port,
                                reply.payload[:8])
                            self.count_fault("truncated_response")
                            if recorder is not None:
                                recorder.record(
                                    self.clock.now, "truncated", src_ip,
                                    dst_int, "fault:truncated_response")
                    if responses is None:
                        responses = []
                    responses.append(UdpResponse(reply, base * 2))
                    if recorder is not None:
                        recorder.record(self.clock.now, "answered",
                                        src_ip, dst_int, None, base * 2)
        else:
            self.udp_queries_lost += 1
        if responses is None:
            return []
        # Injected (forged) responses racing a genuine answer at the exact
        # same latency must keep winning: explicit injected-first
        # tie-break, then a stable sort by arrival time.
        if len(responses) > 1:
            responses.sort(key=attrgetter("injected"), reverse=True)
            responses.sort(key=attrgetter("latency"))
        return responses

    def _corrupt(self, payload):
        """Damage a payload beyond parseability (truncate + bit noise)."""
        if not payload:
            return b"\xff"
        cut = max(1, len(payload) // 3)
        noise = bytes((b ^ 0xA5) & 0xFF for b in payload[:cut])
        return noise[: max(1, cut - 2)]

    @staticmethod
    def _normalize_replies(packet, result):
        """Accept the handler's flexible return shapes (see Node)."""
        if result is None:
            return []
        if isinstance(result, (bytes, bytearray)):
            return [packet.reply(bytes(result))]
        replies = []
        for item in result:
            if isinstance(item, UdpPacket):
                replies.append(item)
            else:
                payload, source_ip = item
                replies.append(packet.reply(payload, src_ip=source_ip))
        return replies

    # -- TCP-based services ----------------------------------------------

    def tcp_banner(self, src_ip, dst_ip, port, timeout=None):
        """Connect and read the service banner; ``None`` when closed/lost
        (or when a fault-injected stall exceeds ``timeout``)."""
        if self._tcp_lost(src_ip, dst_ip, port):
            return None
        if not self._tcp_connect(src_ip, dst_ip, port, timeout):
            return None
        node = self._nodes.get(dst_ip)
        if node is None or port not in node.tcp_ports():
            return None
        return node.tcp_banner(port, network=self)

    def http_request(self, src_ip, dst_ip, request, timeout=None):
        """Issue an HTTP request to ``dst_ip``; ``None`` when no service
        (or when a fault-injected stall exceeds ``timeout``)."""
        port = 443 if getattr(request, "scheme", "http") == "https" else 80
        if not self._tcp_connect(src_ip, dst_ip, port, timeout):
            return None
        node = self._nodes.get(dst_ip)
        if node is None:
            return None
        request.client_ip = src_ip
        return node.handle_http(request, self)

    def tls_handshake(self, src_ip, dst_ip, sni=None, timeout=None):
        """Fetch the TLS certificate ``dst_ip`` presents for ``sni``."""
        if not self._tcp_connect(src_ip, dst_ip, 443, timeout):
            return None
        node = self._nodes.get(dst_ip)
        if node is None:
            return None
        return node.tls_certificate(sni, network=self)

    def __repr__(self):
        return "Network(%d nodes, %d middleboxes)" % (
            len(self._nodes), len(self.middleboxes))
