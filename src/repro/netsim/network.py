"""The simulated network core: node registry, UDP routing, TCP services.

The model is synchronous request/response: a sender hands the network a UDP
packet and receives back the list of response packets, each tagged with its
simulated one-way latency.  Middleboxes on the path may drop the query,
drop responses, or inject forged responses — forged GFW answers arrive with
lower latency than the genuine ones, reproducing the racing behaviour the
paper observed (§4.2).
"""

import random

from repro.netsim.address import ip_to_int


class UdpPacket:
    """A UDP datagram: addressing 4-tuple plus opaque payload bytes."""

    __slots__ = ("src_ip", "src_port", "dst_ip", "dst_port", "payload")

    def __init__(self, src_ip, src_port, dst_ip, dst_port, payload):
        self.src_ip = src_ip
        self.src_port = src_port
        self.dst_ip = dst_ip
        self.dst_port = dst_port
        self.payload = payload

    def reply(self, payload, src_ip=None, src_port=None):
        """Build a response packet back to this packet's sender.

        ``src_ip`` lets multi-homed hosts and proxies answer from an address
        other than the one queried — the paper detects exactly this by
        encoding the target IP in the query.
        """
        return UdpPacket(
            src_ip=src_ip if src_ip is not None else self.dst_ip,
            src_port=src_port if src_port is not None else self.dst_port,
            dst_ip=self.src_ip,
            dst_port=self.src_port,
            payload=payload,
        )

    def __repr__(self):
        return "UdpPacket(%s:%d -> %s:%d, %d bytes)" % (
            self.src_ip, self.src_port, self.dst_ip, self.dst_port,
            len(self.payload))


class UdpResponse:
    """A response packet plus the simulated latency at which it arrives."""

    __slots__ = ("packet", "latency", "injected")

    def __init__(self, packet, latency, injected=False):
        self.packet = packet
        self.latency = latency
        self.injected = injected

    def __repr__(self):
        return "UdpResponse(%r, latency=%.4f, injected=%s)" % (
            self.packet, self.latency, self.injected)


class Node:
    """Base class for everything attached to the network.

    Subclasses override the handlers for the services they provide.  All
    handlers may issue their own queries through ``network`` (that is how
    recursive resolvers reach the authoritative hierarchy).
    """

    def __init__(self, ip):
        self.ip = ip

    def handle_udp(self, packet, network):
        """Handle a UDP datagram; return payload bytes, a list of
        (payload, source_ip) pairs, or ``None`` to stay silent."""
        return None

    def tcp_ports(self):
        """Ports accepting TCP connections (for banner grabbing)."""
        return frozenset()

    def tcp_banner(self, port, network=None):
        """The greeting banner a TCP client sees on ``port``, or ``None``."""
        return None

    def handle_http(self, request, network):
        """Serve an HTTP request (a :class:`repro.websim.http.HttpRequest`);
        return an ``HttpResponse`` or ``None`` when no web service runs."""
        return None

    def tls_certificate(self, sni, network=None):
        """Return the TLS certificate presented for ``sni`` (or the default
        certificate when ``sni`` is ``None``); ``None`` = no TLS service."""
        return None

    def __repr__(self):
        return "%s(ip=%r)" % (type(self).__name__, self.ip)


class Network:
    """Routes packets between registered nodes, applying loss, latency,
    and middlebox policy."""

    def __init__(self, clock, seed=0, loss_rate=0.0, base_latency=0.020,
                 corruption_rate=0.0):
        self.clock = clock
        self.loss_rate = loss_rate
        # Share of delivered responses whose payload arrives damaged
        # (invalid UDP checksum in the paper's terms, §5 Completeness);
        # receivers must treat such packets as garbage and drop them.
        self.corruption_rate = corruption_rate
        self.base_latency = base_latency
        self.middleboxes = []
        self._nodes = {}
        self._rng = random.Random(seed)
        self.udp_queries_sent = 0
        self.udp_queries_lost = 0
        self.udp_responses_corrupted = 0

    # -- registry ---------------------------------------------------------

    def register(self, node):
        """Attach a node at its IP; replaces any previous occupant."""
        self._nodes[node.ip] = node

    def unregister(self, ip):
        self._nodes.pop(ip, None)

    def rebind(self, node, new_ip):
        """Move a node to a new address (DHCP churn)."""
        if self._nodes.get(node.ip) is node:
            del self._nodes[node.ip]
        node.ip = new_ip
        self._nodes[new_ip] = node

    def node_at(self, ip):
        return self._nodes.get(ip)

    @property
    def node_count(self):
        return len(self._nodes)

    def add_middlebox(self, middlebox):
        self.middleboxes.append(middlebox)

    # -- latency / loss ---------------------------------------------------

    def latency_between(self, src_ip, dst_ip):
        """Deterministic pairwise latency: base plus a hash-derived jitter."""
        mix = (ip_to_int(src_ip) * 2654435761 ^ ip_to_int(dst_ip)) & 0xFFFFFFFF
        return self.base_latency + (mix % 1000) / 1000.0 * 0.180

    def _lost(self):
        return self.loss_rate > 0 and self._rng.random() < self.loss_rate

    # -- UDP --------------------------------------------------------------

    def send_udp(self, packet):
        """Deliver a UDP packet; return responses sorted by arrival time."""
        self.udp_queries_sent += 1
        responses = []
        dropped = False
        for box in self.middleboxes:
            responses.extend(box.inject_responses(packet, self))
            if box.drops_query(packet, self):
                dropped = True
        if not dropped and not self._lost():
            node = self._nodes.get(packet.dst_ip)
            if node is not None:
                result = node.handle_udp(packet, self)
                base = self.latency_between(packet.src_ip, packet.dst_ip)
                for reply in self._normalize_replies(packet, result):
                    if self._lost():
                        self.udp_queries_lost += 1
                        continue
                    if any(box.drops_response(packet, reply, self)
                           for box in self.middleboxes):
                        continue
                    if self.corruption_rate > 0 and \
                            self._rng.random() < self.corruption_rate:
                        reply = UdpPacket(
                            reply.src_ip, reply.src_port, reply.dst_ip,
                            reply.dst_port, self._corrupt(reply.payload))
                        self.udp_responses_corrupted += 1
                    responses.append(UdpResponse(reply, base * 2))
        else:
            self.udp_queries_lost += 1
        responses.sort(key=lambda response: response.latency)
        return responses

    def _corrupt(self, payload):
        """Damage a payload beyond parseability (truncate + bit noise)."""
        if not payload:
            return b"\xff"
        cut = max(1, len(payload) // 3)
        noise = bytes((b ^ 0xA5) & 0xFF for b in payload[:cut])
        return noise[: max(1, cut - 2)]

    @staticmethod
    def _normalize_replies(packet, result):
        """Accept the handler's flexible return shapes (see Node)."""
        if result is None:
            return []
        if isinstance(result, (bytes, bytearray)):
            return [packet.reply(bytes(result))]
        replies = []
        for item in result:
            if isinstance(item, UdpPacket):
                replies.append(item)
            else:
                payload, source_ip = item
                replies.append(packet.reply(payload, src_ip=source_ip))
        return replies

    # -- TCP-based services ----------------------------------------------

    def tcp_banner(self, src_ip, dst_ip, port):
        """Connect and read the service banner; ``None`` when closed/lost."""
        if self._lost():
            return None
        node = self._nodes.get(dst_ip)
        if node is None or port not in node.tcp_ports():
            return None
        return node.tcp_banner(port, network=self)

    def http_request(self, src_ip, dst_ip, request):
        """Issue an HTTP request to ``dst_ip``; ``None`` when no service."""
        node = self._nodes.get(dst_ip)
        if node is None:
            return None
        request.client_ip = src_ip
        return node.handle_http(request, self)

    def tls_handshake(self, src_ip, dst_ip, sni=None):
        """Fetch the TLS certificate ``dst_ip`` presents for ``sni``."""
        node = self._nodes.get(dst_ip)
        if node is None:
            return None
        return node.tls_certificate(sni, network=self)

    def __repr__(self):
        return "Network(%d nodes, %d middleboxes)" % (
            len(self._nodes), len(self.middleboxes))
