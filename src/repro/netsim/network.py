"""The simulated network core: node registry, UDP routing, TCP services.

The model is synchronous request/response: a sender hands the network a UDP
packet and receives back the list of response packets, each tagged with its
simulated one-way latency.  Middleboxes on the path may drop the query,
drop responses, or inject forged responses — forged GFW answers arrive with
lower latency than the genuine ones, reproducing the racing behaviour the
paper observed (§4.2).
"""

from operator import attrgetter

from repro.netsim.address import ip_to_int
from repro.netsim.middlebox import (
    PATH_DROP,
    PATH_INSPECT,
    Middlebox,
)

# splitmix64 finaliser: mixes a flow key into an evenly distributed
# 64-bit value.  Used for packet-fate decisions (loss, corruption) so the
# outcome of each delivery is a pure function of (network seed, flow,
# occurrence) — independent of how concurrent flows interleave, which is
# what lets sharded scan workers reproduce a sequential scan exactly.
_M64 = (1 << 64) - 1


def _mix64(value):
    value &= _M64
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _M64
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _M64
    value ^= value >> 31
    return value


_SALT_QUERY_LOSS = 0x51
_SALT_RESPONSE_LOSS = 0x52
_SALT_CORRUPTION = 0x53
# Occurrence-counter salts for the flow-keyed TCP loss draw and the
# fault-injection plane (the fault *draws* themselves live in
# :mod:`repro.faults`; these only key the per-flow occurrence counters
# so fault draws never share a counter with baseline loss draws).
_SALT_TCP_LOSS = 0x54
_SALT_FAULT_QUERY = 0x55
_SALT_FAULT_TRUNC = 0x56
_SALT_FAULT_TCP = 0x57


class UdpPacket:
    """A UDP datagram: addressing 4-tuple plus opaque payload bytes.

    ``dst_int`` optionally carries the destination as a 32-bit integer.
    Senders that already hold the integer form (the scanner generates
    targets numerically) pass it so the delivery path never has to parse
    dotted-quad text per packet; it must equal ``ip_to_int(dst_ip)``.
    """

    __slots__ = ("src_ip", "src_port", "dst_ip", "dst_port", "payload",
                 "dst_int")

    def __init__(self, src_ip, src_port, dst_ip, dst_port, payload,
                 dst_int=None):
        self.src_ip = src_ip
        self.src_port = src_port
        self.dst_ip = dst_ip
        self.dst_port = dst_port
        self.payload = payload
        self.dst_int = dst_int

    def reply(self, payload, src_ip=None, src_port=None):
        """Build a response packet back to this packet's sender.

        ``src_ip`` lets multi-homed hosts and proxies answer from an address
        other than the one queried — the paper detects exactly this by
        encoding the target IP in the query.
        """
        return UdpPacket(
            src_ip=src_ip if src_ip is not None else self.dst_ip,
            src_port=src_port if src_port is not None else self.dst_port,
            dst_ip=self.src_ip,
            dst_port=self.src_port,
            payload=payload,
        )

    def __repr__(self):
        return "UdpPacket(%s:%d -> %s:%d, %d bytes)" % (
            self.src_ip, self.src_port, self.dst_ip, self.dst_port,
            len(self.payload))


class UdpResponse:
    """A response packet plus the simulated latency at which it arrives."""

    __slots__ = ("packet", "latency", "injected")

    def __init__(self, packet, latency, injected=False):
        self.packet = packet
        self.latency = latency
        self.injected = injected

    def __repr__(self):
        return "UdpResponse(%r, latency=%.4f, injected=%s)" % (
            self.packet, self.latency, self.injected)


class Node:
    """Base class for everything attached to the network.

    Subclasses override the handlers for the services they provide.  All
    handlers may issue their own queries through ``network`` (that is how
    recursive resolvers reach the authoritative hierarchy).
    """

    def __init__(self, ip):
        self.ip = ip

    def handle_udp(self, packet, network):
        """Handle a UDP datagram; return payload bytes, a list of
        (payload, source_ip) pairs, or ``None`` to stay silent."""
        return None

    def tcp_ports(self):
        """Ports accepting TCP connections (for banner grabbing)."""
        return frozenset()

    def tcp_banner(self, port, network=None):
        """The greeting banner a TCP client sees on ``port``, or ``None``."""
        return None

    def handle_http(self, request, network):
        """Serve an HTTP request (a :class:`repro.websim.http.HttpRequest`);
        return an ``HttpResponse`` or ``None`` when no web service runs."""
        return None

    def tls_certificate(self, sni, network=None):
        """Return the TLS certificate presented for ``sni`` (or the default
        certificate when ``sni`` is ``None``); ``None`` = no TLS service."""
        return None

    def __repr__(self):
        return "%s(ip=%r)" % (type(self).__name__, self.ip)


class Network:
    """Routes packets between registered nodes, applying loss, latency,
    and middlebox policy."""

    def __init__(self, clock, seed=0, loss_rate=0.0, base_latency=0.020,
                 corruption_rate=0.0):
        self.clock = clock
        self.loss_rate = loss_rate
        # Share of delivered responses whose payload arrives damaged
        # (invalid UDP checksum in the paper's terms, §5 Completeness);
        # receivers must treat such packets as garbage and drop them.
        self.corruption_rate = corruption_rate
        self.base_latency = base_latency
        self.middleboxes = []
        self._response_droppers = []
        # (box, bound path_verdict or None) pairs, rebuilt whenever a
        # middlebox is added; binding once keeps the per-packet verdict
        # loop to plain calls with no attribute lookups.
        self._path_checks = []
        self._nodes = {}
        self._seed = seed
        # Per-flow occurrence counters for packet-fate decisions; repeated
        # sends over the same 4-tuple get fresh draws (so loss statistics
        # hold), while each occurrence's fate stays order-independent.
        # Reset whenever simulated time moves, bounding memory to one
        # scan's worth of flows.
        self._flow_counts = {}
        self._flow_epoch = clock.now
        # Pure-function memos for the fate computation (never reset):
        # 4-tuple -> unsalted flow key, occurrence -> mixed occurrence.
        self._flow_key_cache = {}
        self._occurrence_mix = {}
        self._seed_high = (seed << 32) & _M64
        self.udp_queries_sent = 0
        self.udp_queries_lost = 0
        self.udp_responses_corrupted = 0
        # Optional fault-injection plan (:class:`repro.faults.FaultPlan`)
        # plus counters of every fault injected or absorbed; ``None``
        # keeps every fault hook a single attribute test.
        self.faults = None
        self.fault_counters = {}
        # Optional observability instruments (:mod:`repro.obs`): a span
        # tracer and a packet flight recorder.  ``None`` means disabled,
        # and the probe hot path pays exactly one attribute test each —
        # no allocation, no call — which is what keeps the scan perf
        # gates intact with tracing off.
        self.tracer = None
        self.recorder = None

    # -- registry ---------------------------------------------------------

    def register(self, node):
        """Attach a node at its IP; replaces any previous occupant."""
        self._nodes[node.ip] = node

    def unregister(self, ip):
        self._nodes.pop(ip, None)

    def rebind(self, node, new_ip):
        """Move a node to a new address (DHCP churn)."""
        if self._nodes.get(node.ip) is node:
            del self._nodes[node.ip]
        node.ip = new_ip
        self._nodes[new_ip] = node

    def node_at(self, ip):
        return self._nodes.get(ip)

    @property
    def node_count(self):
        return len(self._nodes)

    def add_middlebox(self, middlebox):
        self.middleboxes.append(middlebox)
        # Boxes without a path_verdict (duck-typed test doubles) are
        # conservatively inspected for every packet.
        self._path_checks = [
            (box, getattr(box, "path_verdict", None))
            for box in self.middleboxes]
        # drops_response cannot be classified per path (it may depend on
        # the response packet), so boxes that override it are consulted
        # for every delivered reply; the rest are skipped entirely.
        self._response_droppers = [
            box for box in self.middleboxes
            if not isinstance(box, Middlebox)
            or type(box).drops_response is not Middlebox.drops_response]

    # -- latency / loss ---------------------------------------------------

    def latency_between(self, src_ip, dst_ip):
        """Deterministic pairwise latency: base plus a hash-derived jitter."""
        mix = (ip_to_int(src_ip) * 2654435761 ^ ip_to_int(dst_ip)) & 0xFFFFFFFF
        return self.base_latency + (mix % 1000) / 1000.0 * 0.180

    def install_faults(self, plan):
        """Activate a :class:`repro.faults.FaultPlan` on this network."""
        self.faults = plan
        return plan

    def count_fault(self, name, amount=1):
        """Record one injected/absorbed fault under ``name``."""
        counters = self.fault_counters
        counters[name] = counters.get(name, 0) + amount

    def _occurrence(self, key):
        """Occurrence index of one salted flow key this scan epoch."""
        if self.clock.now != self._flow_epoch:
            self._flow_counts.clear()
            self._flow_epoch = self.clock.now
        occurrence = self._flow_counts.get(key, 0)
        self._flow_counts[key] = occurrence + 1
        return occurrence

    def _tcp_lost(self, src_ip, dst_ip, port):
        """Flow-keyed loss draw for connection-oriented services (TCP).

        Same contract as :meth:`_packet_fate`: a pure hash of (seed,
        flow, occurrence), so connection outcomes are independent of how
        pipeline fetches interleave — not a shared sequential RNG.
        """
        loss_rate = self.loss_rate
        if loss_rate <= 0:
            return False
        key = _SALT_TCP_LOSS ^ (
            ip_to_int(src_ip) * 0x9E3779B1 ^ ip_to_int(dst_ip) * 0x85EBCA77
            ^ port << 1)
        occurrence = self._occurrence(key)
        draw = _mix64(self._seed_high ^ key ^ _mix64(occurrence + 1))
        return draw < loss_rate * (_M64 + 1)

    def _tcp_connect(self, src_ip, dst_ip, port, timeout):
        """Fault hook for one TCP connect; False = failed (hung past
        ``timeout``).  A stall shorter than the caller's patience is
        absorbed (the connect eventually completes)."""
        faults = self.faults
        if faults is None or faults.profile.tcp_hang_rate <= 0:
            return True
        base = (ip_to_int(src_ip) * 0x9E3779B1
                ^ ip_to_int(dst_ip) * 0x85EBCA77 ^ port << 1)
        occurrence = self._occurrence(_SALT_FAULT_TCP ^ base)
        stall = faults.tcp_stall_seconds(base, occurrence)
        if stall <= 0.0:
            return True
        if timeout is not None and stall >= timeout:
            self.count_fault("tcp_hang")
            return False
        self.count_fault("tcp_stall_absorbed")
        return True

    def _packet_fate(self, salt, rate, packet):
        """Order-independent delivery decision for one UDP packet.

        The draw is a pure hash of (seed, salt, flow 4-tuple, occurrence
        index of that flow since time last advanced) — NOT a shared
        sequential RNG.  Any interleaving of distinct flows therefore
        yields identical per-packet fates, the property the sharded scan
        engine relies on for bit-identical merged results.
        """
        if self.clock.now != self._flow_epoch:
            self._flow_counts.clear()
            self._flow_epoch = self.clock.now
        dst_int = packet.dst_int
        if dst_int is not None:
            # Integer addressing available: compute the flow key directly,
            # skipping both text parsing and the string-tuple memo.
            base = (ip_to_int(packet.src_ip) * 0x9E3779B1
                    ^ dst_int * 0x85EBCA77
                    ^ packet.src_port << 17 ^ packet.dst_port << 1)
        else:
            flow = (packet.src_ip, packet.dst_ip,
                    packet.src_port, packet.dst_port)
            base = self._flow_key_cache.get(flow)
            if base is None:
                base = (ip_to_int(packet.src_ip) * 0x9E3779B1
                        ^ ip_to_int(packet.dst_ip) * 0x85EBCA77
                        ^ packet.src_port << 17 ^ packet.dst_port << 1)
                if len(self._flow_key_cache) < 1 << 20:
                    self._flow_key_cache[flow] = base
        key = salt ^ base
        occurrence = self._flow_counts.get(key, 0)
        self._flow_counts[key] = occurrence + 1
        mixed = self._occurrence_mix.get(occurrence)
        if mixed is None:
            mixed = _mix64(occurrence + 1)
            self._occurrence_mix[occurrence] = mixed
        draw = _mix64(self._seed_high ^ key ^ mixed)
        return draw < rate * (_M64 + 1)

    # -- UDP --------------------------------------------------------------

    def send_udp(self, packet):
        """Deliver a UDP packet; return responses sorted by arrival time."""
        dst_int = packet.dst_int
        if dst_int is None:
            dst_int = ip_to_int(packet.dst_ip)
        return self.send_probe(packet.src_ip, packet.src_port,
                               packet.dst_ip, packet.dst_port, dst_int,
                               packet.payload, _packet=packet)

    def send_probe(self, src_ip, src_port, dst_ip, dst_port, dst_int,
                   payload, _packet=None):
        """Wire-level delivery fast path: :meth:`send_udp` semantics with
        the addressing passed as scalars (``dst_int`` must equal
        ``ip_to_int(dst_ip)``).

        The :class:`UdpPacket` is only materialised when something needs
        it — a PATH_INSPECT middlebox or a node at the destination.  For
        the overwhelmingly common scan case (a probe to an address that
        hosts nothing and concerns no middlebox) no packet object is
        built at all.
        """
        self.udp_queries_sent += 1
        # Flight recorder: event kinds/causes per repro.obs.flight.  One
        # attribute load + None test when disabled.
        recorder = self.recorder
        if recorder is not None:
            recorder.record(self.clock.now, "sent", src_ip, dst_int)
        # Per-packet middlebox triage: each box classifies the (src, dst
        # int, port) path and only PATH_INSPECT boxes see the payload.
        # Verdicts are integer arithmetic, so for the common case no box
        # ever touches the packet.
        packet = _packet
        dropped = False
        responses = None
        for box, check in self._path_checks:
            if check is not None:
                verdict = check(src_ip, dst_int, dst_port, self)
                if verdict == PATH_DROP:
                    dropped = True
                    continue
                if verdict != PATH_INSPECT:
                    continue
            if packet is None:
                packet = UdpPacket(src_ip, src_port, dst_ip, dst_port,
                                   payload, dst_int)
            injected = box.inject_responses(packet, self)
            if injected:
                if responses is None:
                    responses = list(injected)
                else:
                    responses.extend(injected)
            if box.drops_query(packet, self):
                dropped = True
        loss_rate = self.loss_rate
        delivered = not dropped
        if dropped and recorder is not None:
            recorder.record(self.clock.now, "lost", src_ip, dst_int,
                            "middlebox_drop")
        if delivered and loss_rate > 0:
            # Query-loss fate, inlined (bit-identical to _packet_fate
            # with _SALT_QUERY_LOSS): one draw per probe is the single
            # hottest fate decision, so it skips the call overhead.
            now = self.clock.now
            if now != self._flow_epoch:
                self._flow_counts.clear()
                self._flow_epoch = now
            key = _SALT_QUERY_LOSS ^ (
                ip_to_int(src_ip) * 0x9E3779B1 ^ dst_int * 0x85EBCA77
                ^ src_port << 17 ^ dst_port << 1)
            occurrence = self._flow_counts.get(key, 0)
            self._flow_counts[key] = occurrence + 1
            mixed = self._occurrence_mix.get(occurrence)
            if mixed is None:
                mixed = _mix64(occurrence + 1)
                self._occurrence_mix[occurrence] = mixed
            draw = (self._seed_high ^ key ^ mixed) & _M64
            draw ^= draw >> 30
            draw = (draw * 0xBF58476D1CE4E5B9) & _M64
            draw ^= draw >> 27
            draw = (draw * 0x94D049BB133111EB) & _M64
            draw ^= draw >> 31
            delivered = draw >= loss_rate * (_M64 + 1)
            if not delivered and recorder is not None:
                recorder.record(now, "lost", src_ip, dst_int,
                                "baseline_loss")
        faults = self.faults
        if delivered and faults is not None:
            # Injected query fate (burst loss / rate limiting / extra
            # loss): flow-keyed like the baseline draw, with its own
            # occurrence counter so fault and loss draws never alias.
            now = self.clock.now
            if now != self._flow_epoch:
                self._flow_counts.clear()
                self._flow_epoch = now
            base = (ip_to_int(src_ip) * 0x9E3779B1 ^ dst_int * 0x85EBCA77
                    ^ src_port << 17 ^ dst_port << 1)
            fault_key = _SALT_FAULT_QUERY ^ base
            occurrence = self._flow_counts.get(fault_key, 0)
            self._flow_counts[fault_key] = occurrence + 1
            reason = faults.query_fate(base, dst_int, occurrence, now)
            if reason is not None:
                self.count_fault(reason)
                delivered = False
                if recorder is not None:
                    recorder.record(now, "lost", src_ip, dst_int,
                                    "fault:" + reason)
        if delivered:
            node = self._nodes.get(dst_ip)
            if node is not None:
                if packet is None:
                    packet = UdpPacket(src_ip, src_port, dst_ip, dst_port,
                                       payload, dst_int)
                result = node.handle_udp(packet, self)
                base = self.latency_between(src_ip, dst_ip)
                for reply in self._normalize_replies(packet, result):
                    if loss_rate > 0 and self._packet_fate(
                            _SALT_RESPONSE_LOSS, loss_rate, reply):
                        self.udp_queries_lost += 1
                        if recorder is not None:
                            recorder.record(self.clock.now,
                                            "response_lost", src_ip,
                                            dst_int, "response_loss")
                        continue
                    if self._response_droppers and any(
                            box.drops_response(packet, reply, self)
                            for box in self._response_droppers):
                        if recorder is not None:
                            recorder.record(self.clock.now,
                                            "response_lost", src_ip,
                                            dst_int, "middlebox_drop")
                        continue
                    if self.corruption_rate > 0 and self._packet_fate(
                            _SALT_CORRUPTION, self.corruption_rate, reply):
                        reply = UdpPacket(
                            reply.src_ip, reply.src_port, reply.dst_ip,
                            reply.dst_port, self._corrupt(reply.payload))
                        self.udp_responses_corrupted += 1
                        if recorder is not None:
                            recorder.record(self.clock.now, "corrupted",
                                            src_ip, dst_int, "corruption")
                    if faults is not None and \
                            faults.profile.truncation_rate > 0:
                        reply_base = (
                            ip_to_int(reply.src_ip) * 0x9E3779B1
                            ^ ip_to_int(reply.dst_ip) * 0x85EBCA77
                            ^ reply.src_port << 17 ^ reply.dst_port << 1)
                        reply_occurrence = self._occurrence(
                            _SALT_FAULT_TRUNC ^ reply_base)
                        if faults.truncates_response(reply_base,
                                                     reply_occurrence):
                            # Truncated below the 12-byte DNS header:
                            # receivers must discard it as garbage.
                            reply = UdpPacket(
                                reply.src_ip, reply.src_port,
                                reply.dst_ip, reply.dst_port,
                                reply.payload[:8])
                            self.count_fault("truncated_response")
                            if recorder is not None:
                                recorder.record(
                                    self.clock.now, "truncated", src_ip,
                                    dst_int, "fault:truncated_response")
                    if responses is None:
                        responses = []
                    responses.append(UdpResponse(reply, base * 2))
                    if recorder is not None:
                        recorder.record(self.clock.now, "answered",
                                        src_ip, dst_int, None, base * 2)
        else:
            self.udp_queries_lost += 1
        if responses is None:
            return []
        # Injected (forged) responses racing a genuine answer at the exact
        # same latency must keep winning: explicit injected-first
        # tie-break, then a stable sort by arrival time.
        if len(responses) > 1:
            responses.sort(key=attrgetter("injected"), reverse=True)
            responses.sort(key=attrgetter("latency"))
        return responses

    def _corrupt(self, payload):
        """Damage a payload beyond parseability (truncate + bit noise)."""
        if not payload:
            return b"\xff"
        cut = max(1, len(payload) // 3)
        noise = bytes((b ^ 0xA5) & 0xFF for b in payload[:cut])
        return noise[: max(1, cut - 2)]

    @staticmethod
    def _normalize_replies(packet, result):
        """Accept the handler's flexible return shapes (see Node)."""
        if result is None:
            return []
        if isinstance(result, (bytes, bytearray)):
            return [packet.reply(bytes(result))]
        replies = []
        for item in result:
            if isinstance(item, UdpPacket):
                replies.append(item)
            else:
                payload, source_ip = item
                replies.append(packet.reply(payload, src_ip=source_ip))
        return replies

    # -- TCP-based services ----------------------------------------------

    def tcp_banner(self, src_ip, dst_ip, port, timeout=None):
        """Connect and read the service banner; ``None`` when closed/lost
        (or when a fault-injected stall exceeds ``timeout``)."""
        if self._tcp_lost(src_ip, dst_ip, port):
            return None
        if not self._tcp_connect(src_ip, dst_ip, port, timeout):
            return None
        node = self._nodes.get(dst_ip)
        if node is None or port not in node.tcp_ports():
            return None
        return node.tcp_banner(port, network=self)

    def http_request(self, src_ip, dst_ip, request, timeout=None):
        """Issue an HTTP request to ``dst_ip``; ``None`` when no service
        (or when a fault-injected stall exceeds ``timeout``)."""
        port = 443 if getattr(request, "scheme", "http") == "https" else 80
        if not self._tcp_connect(src_ip, dst_ip, port, timeout):
            return None
        node = self._nodes.get(dst_ip)
        if node is None:
            return None
        request.client_ip = src_ip
        return node.handle_http(request, self)

    def tls_handshake(self, src_ip, dst_ip, sni=None, timeout=None):
        """Fetch the TLS certificate ``dst_ip`` presents for ``sni``."""
        if not self._tcp_connect(src_ip, dst_ip, 443, timeout):
            return None
        node = self._nodes.get(dst_ip)
        if node is None:
            return None
        return node.tls_certificate(sni, network=self)

    def __repr__(self):
        return "Network(%d nodes, %d middleboxes)" % (
            len(self._nodes), len(self.middleboxes))
