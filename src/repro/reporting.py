"""One-command study driver: run every experiment, emit one report.

:func:`run_full_study` executes the paper's complete methodology against
a freshly built world — the weekly campaign, the fingerprinting scans,
the cache-snooping survey, and the manipulation pipeline over all 13
domain sets — and renders a markdown report with every table and figure
this reproduction regenerates.  It is the programmatic equivalent of
running the whole benchmark suite, packaged for downstream users:

    python -m repro.cli fullstudy --weeks 20 --out study.md
"""

from repro.analysis import (
    case_study_summary,
    censorship_coverage,
    churn_survival,
    classification_table,
    country_fluctuation,
    magnitude_series,
    rir_fluctuation,
    social_geography,
    software_table,
    utilization_summary,
)
from repro.analysis.churn import format_survival
from repro.analysis.devices import device_table, format_device_table
from repro.analysis.fluctuation import (
    as_fluctuation,
    broadband_share_of_top_networks,
)
from repro.analysis.magnitude import decline_ratio, format_series
from repro.analysis.geography import format_fluctuation
from repro.analysis.manipulation import (
    gfw_double_responses,
    legit_addresses_from_report,
    prefilter_summary,
)
from repro.analysis.software import format_software_table
from repro.analysis.utilization import format_utilization
from repro.core.labeling import CATEGORY_LABELS
from repro.datasets import ALL_CATEGORIES, DOMAIN_SETS, SNOOPING_TLDS
from repro.scanner import (
    BannerGrabber,
    CacheSnoopingProber,
    ChaosScanner,
    FingerprintMatcher,
)

SOCIAL = ("facebook.com", "twitter.com", "youtube.com")


def _study_unit(checkpoint, network, perf, name, compute):
    """One checkpointable top-level study phase (fingerprint, snoop...).

    Restores the committed payload and the world state its commit
    captured, or computes + commits and then offers the crash plane the
    ``study`` boundary.  The derived analyses are recomputed either way —
    they are cheap, pure functions of the restored payloads.
    """
    tracer = getattr(network, "tracer", None)
    if checkpoint is None:
        if tracer is None:
            return compute()
        with tracer.span("study", phase=name):
            return compute()
    from repro.checkpoint import capture_world_state, restore_world_state
    record = checkpoint.restore(("study", name))
    if record is not None:
        restore_world_state(network, perf, record["state"])
        if tracer is not None:
            tracer.emit("study", phase=name, restored=True)
        return record["payload"]
    if tracer is None:
        payload = compute()
    else:
        with tracer.span("study", phase=name):
            payload = compute()
    checkpoint.commit(("study", name), payload,
                      state=capture_world_state(network, perf))
    checkpoint.maybe_crash("study", (name,))
    return payload


def format_resume_provenance(provenance):
    """Render a checkpoint run's resume provenance for stderr/logs."""
    lines = ["[resume provenance]"]
    for name in sorted(provenance):
        lines.append("  %-32s %s" % (name, provenance[name]))
    return "\n".join(lines)


class StudyResults:
    """Everything one full study run produced."""

    def __init__(self):
        self.series = None
        self.survival = None
        self.countries = None
        self.top10_share = None
        self.rirs = None
        self.as_drops = None
        self.broadband_share = None
        self.software = None
        self.devices = None
        self.utilization = None
        self.prefilter = {}
        self.table5 = None
        self.fig4 = None
        self.cn_coverage = None
        self.gfw_doubles = None
        self.case_studies = None
        self.resolver_count = 0


def run_full_study(scenario, weeks=20, snoop_sample=200,
                   pipeline_categories=None, progress=None,
                   pipeline_shards=1, checkpoint=None, shards=1,
                   perf=None, backoff=2.0, pacing=None, max_pps=None,
                   delta=None):
    """Run the complete methodology; returns a :class:`StudyResults`.

    ``weeks`` bounds the longitudinal part (the paper ran 55);
    ``pipeline_categories`` restricts the §4 pipeline (default: all 13);
    ``pipeline_shards`` forks the per-category domain scans.
    ``progress`` is an optional callable for status lines.
    ``checkpoint`` (a :class:`repro.checkpoint.CheckpointedRun`) makes
    every phase durable: campaign weeks, the fingerprint and snooping
    sweeps, and each per-category pipeline stage commit as they
    complete, and a resumed study re-enters at the first incomplete one.
    """
    say = progress or (lambda message: None)
    results = StudyResults()
    network = scenario.network

    say("running %d weekly scans..." % weeks)
    campaign = scenario.new_campaign(verify=False, shards=shards,
                                     perf=perf, backoff=backoff,
                                     pacing=pacing, max_pps=max_pps,
                                     delta=delta)
    campaign.run(weeks, checkpoint=(checkpoint.scope("campaign")
                                    if checkpoint is not None else None))
    results.series = magnitude_series(campaign.snapshots)
    results.survival = churn_survival(campaign.snapshots)
    first, last = campaign.first().result, campaign.last().result
    results.countries, results.top10_share = country_fluctuation(
        first, last, scenario.geoip)
    results.rirs = rir_fluctuation(first, last, scenario.geoip)
    results.as_drops = as_fluctuation(first, last, scenario.as_registry,
                                      top=5)
    results.broadband_share, __ = broadband_share_of_top_networks(
        last, scenario.as_registry)
    resolvers = sorted(last.noerror)
    results.resolver_count = len(resolvers)

    say("fingerprinting %d resolvers..." % len(resolvers))

    def compute_fingerprint():
        chaos = ChaosScanner(scenario.network, scenario.scanner_ip)
        software_rows = chaos.scan(resolvers)
        grabber = BannerGrabber(scenario.network, scenario.scanner_ip)
        classifications = FingerprintMatcher().classify_all(
            grabber.grab_all(resolvers))
        return {"software": software_rows,
                "classifications": classifications}

    fingerprint = _study_unit(checkpoint, network, perf, "fingerprint",
                              compute_fingerprint)
    results.software = software_table(fingerprint["software"])
    results.devices = device_table(fingerprint["classifications"],
                                   total_scanned=len(resolvers))

    say("snooping %d resolver caches..." % min(snoop_sample,
                                               len(resolvers)))

    def compute_snoop():
        prober = CacheSnoopingProber(scenario.network, scenario.scanner_ip,
                                     SNOOPING_TLDS, duration_hours=36)
        return {"traces": prober.run(resolvers[:snoop_sample])}

    snoop = _study_unit(checkpoint, network, perf, "snoop", compute_snoop)
    results.utilization = utilization_summary(snoop["traces"])

    categories = list(pipeline_categories or ALL_CATEGORIES)
    reports = {}
    for category in categories:
        say("pipeline: %s..." % category)
        pipeline = scenario.new_pipeline(shards=pipeline_shards,
                                         perf=perf)
        scope = (checkpoint.scope("pipeline", category)
                 if checkpoint is not None else None)
        reports[category] = pipeline.run(resolvers,
                                         list(DOMAIN_SETS[category]),
                                         checkpoint=scope)
        results.prefilter[category] = prefilter_summary(
            reports[category])
    results.table5 = classification_table(reports)
    if "Alexa" in reports:
        alexa = reports["Alexa"]
        results.fig4 = social_geography(alexa, scenario.geoip, SOCIAL)
        results.cn_coverage = censorship_coverage(alexa, scenario.geoip,
                                                  SOCIAL, "CN")
        results.gfw_doubles = gfw_double_responses(
            alexa, scenario.geoip, legit_addresses_from_report(alexa))
    merged = next(iter(reports.values())).__class__()
    for report in reports.values():
        merged.labeled.extend(report.labeled)
        merged.mail_captures.extend(report.mail_captures)
        merged.ground_truth_bodies.update(report.ground_truth_bodies)
    results.case_studies = case_study_summary(merged,
                                              network=scenario.network)
    return results


def render_markdown(results, scenario=None):
    """Render a :class:`StudyResults` as a markdown report."""
    lines = ["# Open DNS resolver study — full run", ""]
    if scenario is not None:
        lines += ["Scale 1:%d, seed %d, %d resolvers at the final scan."
                  % (scenario.config.scale, scenario.config.seed,
                     results.resolver_count), ""]

    def code_block(text):
        return ["```", text, "```", ""]

    lines += ["## Figure 1 — weekly resolver magnitude", ""]
    lines += code_block(format_series(results.series))
    lines += ["NOERROR decline ratio: %.2f"
              % decline_ratio(results.series), ""]

    lines += ["## Figure 2 — cohort IP churn", ""]
    lines += code_block(format_survival(results.survival))

    lines += ["## Table 1 — fluctuation per country "
              "(top-10 share %.1f%%)" % results.top10_share, ""]
    lines += code_block(format_fluctuation(results.countries, "Country"))

    lines += ["## Table 2 — fluctuation per RIR", ""]
    lines += code_block(format_fluctuation(results.rirs, "RIR"))

    lines += ["## Largest per-AS drops", ""]
    drops = "\n".join("AS%-6d %-26s %-3s %6d -> %6d (%+.1f%%)" % (
        row["asn"], row["name"], row["country"], row["first"],
        row["last"], row["delta_pct"]) for row in results.as_drops)
    lines += code_block(drops)
    lines += ["Broadband share of Top-25 networks: %.1f%%"
              % results.broadband_share, ""]

    lines += ["## Table 3 — DNS software (CHAOS)", ""]
    lines += code_block(format_software_table(results.software))

    lines += ["## Table 4 — devices", ""]
    lines += code_block(format_device_table(results.devices))

    lines += ["## Section 2.6 — utilization", ""]
    lines += code_block(format_utilization(results.utilization))

    lines += ["## Section 4.1 — prefiltering per domain set", ""]
    rows = ["%-12s %10s %8s %8s %8s" % ("set", "responses", "legit",
                                        "empty", "unknown")]
    for category, summary in results.prefilter.items():
        rows.append("%-12s %10d %7.1f%% %7.1f%% %7.1f%%" % (
            category, summary["observations"],
            100 * summary["legitimate_share"],
            100 * summary["empty_share"],
            100 * summary["unknown_share"]))
    lines += code_block("\n".join(rows))

    lines += ["## Table 5 — classification of unexpected responses "
              "(avg % of suspicious resolvers)", ""]
    header = "%-12s" % "set" + "".join("%-12s" % label[:11]
                                       for label in CATEGORY_LABELS)
    rows = [header]
    for category, table_rows in results.table5.items():
        rows.append("%-12s" % category + "".join(
            "%-12s" % ("%.1f%%" % table_rows[label]["avg_pct"])
            for label in CATEGORY_LABELS))
    lines += code_block("\n".join(rows))

    if results.fig4 is not None:
        lines += ["## Figure 4 — censorship geography "
                  "(Facebook/Twitter/YouTube)", ""]
        unexpected = results.fig4.unexpected_shares()[:6]
        geo = "\n".join("%-3s %5.1f%%" % (country, share)
                        for country, share in unexpected)
        lines += code_block(geo)
        lines += ["CN coverage: %.1f%%; GFW double responses: %.1f%% of "
                  "Chinese resolvers"
                  % (results.cn_coverage["coverage_pct"],
                     results.gfw_doubles["share_pct"]), ""]

    lines += ["## Section 4.3 — case studies", ""]
    from repro.analysis.casestudies import format_case_studies
    lines += code_block(format_case_studies(results.case_studies))
    return "\n".join(lines)
