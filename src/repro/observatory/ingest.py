"""Incremental ingest: fold a checkpoint feed into the resolver store.

The feed is a campaign/fullstudy checkpoint directory (see
:class:`repro.checkpoint.CheckpointFeed`); the units worth folding are:

* **weekly snapshots** — commit keys ending ``("week", N)`` whose
  payload is a :class:`~repro.scanner.campaign.WeeklySnapshot`: the
  scan's observation columns become that week's
  :class:`~repro.observatory.store.WeekColumns` plus per-resolver
  first/last-week, rcode, and flag updates (``delta:*`` carried rows
  keep their ``FLAG_CARRIED`` provenance bit);
* **fingerprint study units** — ``("study", "fingerprint")``: CHAOS
  software outcomes and device classifications per resolver;
* **pipeline labeling stages** — ``("pipeline", <set>, "stage",
  "labeling")``: manipulation verdict labels per resolver.

Idempotence is the load-bearing invariant: every folded unit is
remembered as ``key -> payload digest`` in the store, so re-ingesting a
replayed journal span — same crash-resumed campaign, same directory
ingested twice, an observer polling a live run — folds nothing twice.
A unit whose payload *changed* (a re-committed key) replaces cleanly,
because week folding rebuilds that week's columns from the payload
rather than accumulating into them.
"""

import pickle
import time
import zlib
from array import array

from repro.checkpoint.feed import CheckpointFeed
from repro.dnswire.constants import (
    RCODE_NOERROR,
    RCODE_REFUSED,
    RCODE_SERVFAIL,
)
from repro.netsim.address import int_to_ip
from repro.observatory.store import WeekColumns

_RCODE_NAMES = {RCODE_NOERROR: "noerror", RCODE_REFUSED: "refused",
                RCODE_SERVFAIL: "servfail"}


class GeoSource:
    """Geography enrichment for ingest: ip -> (country, rir, asn).

    Wraps the scenario's GeoIP database and AS registry; the observatory
    caches the answer per resolver row, so each address is located once
    across the store's whole lifetime.
    """

    def __init__(self, geoip, as_registry):
        self.geoip = geoip
        self.as_registry = as_registry

    def locate(self, ip):
        return (self.geoip.country(ip), self.geoip.rir(ip),
                self.as_registry.asn_of(ip))


def scenario_geo(scenario):
    return GeoSource(scenario.geoip, scenario.as_registry)


class IngestReport:
    """What one ingest pass saw and did."""

    def __init__(self):
        self.units_seen = 0          # commit records encountered
        self.units_folded = 0        # units newly folded this pass
        self.units_skipped = 0       # already-ingested units (no-ops)
        self.weeks_folded = []
        self.fingerprints = 0
        self.verdicts = 0
        self.lag_records = 0         # journal records pending at start
        self.seconds = 0.0
        self.generation = None       # store generation after save

    def changed(self):
        return self.units_folded > 0

    def __repr__(self):
        return ("IngestReport(%d seen, %d folded, %d skipped, "
                "weeks=%r)" % (self.units_seen, self.units_folded,
                               self.units_skipped, self.weeks_folded))


def _payload_digest(payload):
    return "%08x" % zlib.crc32(
        pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


def _is_week_key(key):
    return (len(key) >= 2 and key[-2] == "week"
            and isinstance(key[-1], int))


def _is_fingerprint_key(key):
    return len(key) >= 2 and key[-2:] == ("study", "fingerprint")


def _is_labeling_key(key):
    return (len(key) >= 2 and key[-2:] == ("stage", "labeling")
            and "pipeline" in key[:-2])


def ingest_checkpoint(store, directory, geo=None, perf=None,
                      tracer=None, save=True):
    """Fold every new unit of ``directory``'s journal into ``store``.

    Incremental and idempotent: the store's cursor for this feed skips
    journal records consumed by an earlier pass, and the per-unit
    digest ledger turns replayed spans (crash-resumed campaigns, a
    directory ingested twice) into recognized no-ops.  With ``save``
    (the default), a pass that folded anything commits a new store
    generation before returning.

    Returns an :class:`IngestReport`.
    """
    feed = CheckpointFeed(directory)
    report = IngestReport()
    started = time.perf_counter()
    feed_id = feed.identity()
    cursor = store.cursors.get(feed_id, 0)
    report.lag_records = max(0, feed.record_count() - cursor)

    def fold():
        last_seq = cursor - 1
        for seq, key, record in feed.commits(start=cursor):
            last_seq = seq
            report.units_seen += 1
            _fold_unit(store, feed, key, record, geo, report)
        if last_seq >= cursor:
            store.cursors[feed_id] = last_seq + 1
        if store.meta.get("feed_meta") is None and feed.meta:
            store.meta["feed_meta"] = dict(feed.meta)
        if perf is not None:
            perf.count("observatory_units_folded", report.units_folded)
            perf.count("observatory_units_skipped",
                       report.units_skipped)
            perf.gauge("observatory_ingest_lag_records",
                       report.lag_records)
        if save and report.changed():
            report.generation = store.save()
        else:
            report.generation = store.generation

    if tracer is not None:
        with tracer.span("observatory_ingest", feed=feed_id,
                         cursor=cursor, lag=report.lag_records):
            fold()
    else:
        fold()
    report.seconds = time.perf_counter() - started
    if perf is not None:
        perf.record_seconds("observatory_ingest", report.seconds)
    return report


def _fold_unit(store, feed, key, record, geo, report):
    """Fold one commit record, if it is a unit the observatory keeps."""
    if _is_week_key(key):
        fold = _fold_week
    elif _is_fingerprint_key(key):
        fold = _fold_fingerprint
    elif _is_labeling_key(key):
        fold = _fold_labeling
    else:
        return
    payload = feed.load_or_none(key)
    if payload is None:
        return    # snapshot missing/damaged: the owner will recommit it
    digest = _payload_digest(payload)
    ledger_key = "/".join(str(part) for part in key)
    if store.ingested.get(ledger_key) == digest:
        report.units_skipped += 1
        return
    if fold(store, key, payload, geo, report):
        store.ingested[ledger_key] = digest
        report.units_folded += 1


def _fold_week(store, key, payload, geo, report):
    """Fold one WeeklySnapshot into week columns + resolver records."""
    result = getattr(payload, "result", None)
    week = getattr(payload, "week", None)
    if result is None or not isinstance(week, int):
        return False  # a shard sub-commit or foreign payload: not a week
    columns = WeekColumns(week)
    targets_raw, rcodes_raw, flags_raw = result.canonical_columns()
    targets = array("I")
    targets.frombytes(targets_raw)
    rcodes = array("B")
    rcodes.frombytes(rcodes_raw)
    flags = array("B")
    flags.frombytes(flags_raw)
    seen = set()
    noerror = set()
    for value, rcode, row_flags in zip(targets, rcodes, flags):
        store.observe(value, week, rcode, row_flags)
        if geo is not None and store.geo_of(value)[0] == "??":
            country, rir, asn = geo.locate(int_to_ip(value))
            store.locate(value, country, rir, asn)
        seen.add(value)
        if rcode == RCODE_NOERROR:
            noerror.add(value)
    columns.targets = array("I", sorted(seen))
    columns.noerror = array("I", sorted(noerror))
    columns.probes_sent = result.probes_sent
    columns.carried_targets = result.carried_targets
    columns.suppressed_targets = result.suppressed_targets
    columns.counts = _rcode_counts(targets, rcodes)
    columns.mode = _week_mode(result)
    store.put_week(columns)
    report.weeks_folded.append(week)
    return True


def _rcode_counts(targets, rcodes):
    buckets = {}
    for name in _RCODE_NAMES.values():
        buckets[name] = set()
    other = set()
    for value, rcode in zip(targets, rcodes):
        buckets.get(_RCODE_NAMES.get(rcode), other).add(value)
    counts = {name: len(bucket) for name, bucket in buckets.items()}
    counts["other"] = len(other)
    return counts


def _week_mode(result):
    for entry in result.provenance:
        if entry.get("kind") == "delta" and entry.get("status") == "ok":
            return entry.get("mode", "delta")
    return "full"


def _fold_fingerprint(store, key, payload, geo, report):
    """Fold the fingerprint study unit: software + device labels."""
    if not isinstance(payload, dict) or not ("software" in payload
                                             or "classifications"
                                             in payload):
        return False
    for observation in payload.get("software") or ():
        ip = getattr(observation, "resolver_ip", None)
        if ip is None:
            continue
        store.set_software(_ip_int(ip), observation.outcome,
                           observation.version_string)
        report.fingerprints += 1
    for ip, classification in (payload.get("classifications")
                               or {}).items():
        hardware, os_name, vendor = classification
        store.set_device(_ip_int(ip), hardware, os_name, vendor)
        report.fingerprints += 1
    return True


def _fold_labeling(store, key, payload, geo, report):
    """Fold one domain set's manipulation verdicts per resolver."""
    if not isinstance(payload, dict) or "labeled" not in payload:
        return False
    for labeled in payload["labeled"] or ():
        capture = getattr(labeled, "capture", None)
        ip = getattr(capture, "resolver_ip", None)
        if ip is None:
            continue
        store.add_verdict(_ip_int(ip), labeled.label, labeled.sublabel)
        report.verdicts += 1
    return True


def _ip_int(ip):
    from repro.netsim.address import ip_to_int
    return ip_to_int(ip) if isinstance(ip, str) else ip
