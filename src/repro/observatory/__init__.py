"""The resolver observatory: a resident query plane over campaign results.

Three layers (see ``DESIGN.md``, "Observatory"):

* :mod:`repro.observatory.ingest` tails a campaign's checkpoint journal
  and folds weekly snapshots, fingerprint studies, and manipulation
  verdicts into the store — incrementally and idempotently;
* :mod:`repro.observatory.store` keeps what was folded as compact
  columnar records plus spillable per-week columns, versioned on disk
  with atomic generation swaps;
* :mod:`repro.observatory.query` / :mod:`repro.observatory.service`
  answer point lookups, the Table 1/2 rankings, the Figure 2 survival
  curve, and per-prefix churn timelines — from the store alone, through
  the ``repro observe`` CLI or an embedded HTTP/JSON API.
"""

from repro.observatory.ingest import (
    GeoSource,
    IngestReport,
    ingest_checkpoint,
    scenario_geo,
)
from repro.observatory.query import Observatory
from repro.observatory.service import ObservatoryServer
from repro.observatory.store import (
    ObservatoryError,
    ResolverStore,
    WeekColumns,
)

__all__ = [
    "GeoSource",
    "IngestReport",
    "Observatory",
    "ObservatoryError",
    "ObservatoryServer",
    "ResolverStore",
    "WeekColumns",
    "ingest_checkpoint",
    "scenario_geo",
]
