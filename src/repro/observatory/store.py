"""The resolver knowledge store: columnar records, versioned on disk.

One :class:`ResolverStore` holds everything the observatory knows about
every resolver ever seen across a campaign's weekly scans, in the same
structure-of-arrays idiom as :class:`~repro.scanner.ipv4scan.ScanResult`:
per-resolver facts live in parallel arrays indexed by a dense row
number (``ip -> row`` through one dict), and bulky per-week observation
columns live in separate spillable payloads so memory stays bounded by
the week cache, not the campaign length.

On-disk layout (``store_dir``)::

    MANIFEST.json        current generation + cursors + week digests
    gen-00000007/
        records.snap     per-resolver SoA columns (checksummed pickle)
        week-00003.snap  one week's observation columns

Persistence is *generational*: :meth:`save` writes a complete new
``gen-N`` directory (unchanged week payloads are hard-linked from the
previous generation, falling back to a copy), fsyncs it, then atomically
replaces ``MANIFEST.json`` — the same durable-replace discipline as
:mod:`repro.checkpoint.store` — and only then removes older
generations.  A reader that opens the store mid-swap sees either the
old complete generation or the new complete generation, never a mix.

Idempotence bookkeeping lives *in* the store: ``ingested`` maps each
folded unit key to the digest of the payload it folded, and ``cursors``
maps each feed identity to the journal sequence consumed so far.  Both
ride the records snapshot/manifest, so replayed journal spans are
recognized as no-ops across process restarts.
"""

import json
import os
import shutil
import zlib
from array import array

from repro.checkpoint.store import (
    atomic_write_text,
    decode_snapshot,
    encode_snapshot,
    fsync_directory,
)
from repro.netsim.address import int_to_ip, ip_to_int

_FORMAT = 1
_NO_WEEK = -1


class ObservatoryError(RuntimeError):
    """A store directory cannot be used as requested."""


class WeekColumns:
    """One week's observation columns plus its scalar summary."""

    __slots__ = ("week", "targets", "noerror", "probes_sent",
                 "carried_targets", "suppressed_targets", "mode",
                 "counts")

    def __init__(self, week):
        self.week = week
        self.targets = array("I")     # sorted unique responder ints
        self.noerror = array("I")     # sorted unique NOERROR responders
        self.probes_sent = 0
        self.carried_targets = 0
        self.suppressed_targets = 0
        self.mode = "full"            # "full" | "delta"
        self.counts = {}              # rcode-bucket name -> count

    def digest(self):
        """Content digest for hard-link reuse across generations."""
        summary = json.dumps(
            [self.week, self.probes_sent, self.carried_targets,
             self.suppressed_targets, self.mode,
             sorted(self.counts.items())], sort_keys=True)
        crc = zlib.crc32(summary.encode("utf-8"))
        crc = zlib.crc32(self.targets.tobytes(), crc)
        crc = zlib.crc32(self.noerror.tobytes(), crc)
        return "%08x" % crc

    def to_payload(self):
        return {"week": self.week, "targets": self.targets.tobytes(),
                "noerror": self.noerror.tobytes(),
                "probes_sent": self.probes_sent,
                "carried_targets": self.carried_targets,
                "suppressed_targets": self.suppressed_targets,
                "mode": self.mode,
                "counts": sorted(self.counts.items())}

    @classmethod
    def from_payload(cls, payload):
        columns = cls(payload["week"])
        columns.targets.frombytes(payload["targets"])
        columns.noerror.frombytes(payload["noerror"])
        columns.probes_sent = payload["probes_sent"]
        columns.carried_targets = payload["carried_targets"]
        columns.suppressed_targets = payload["suppressed_targets"]
        columns.mode = payload["mode"]
        columns.counts = dict(payload["counts"])
        return columns


class _StringTable:
    """Interned string -> small integer code, round-trippable."""

    def __init__(self, values=()):
        self.values = list(values)
        self._codes = {value: code
                       for code, value in enumerate(self.values)}

    def code(self, value):
        code = self._codes.get(value)
        if code is None:
            code = self._codes[value] = len(self.values)
            self.values.append(value)
        return code

    def value(self, code):
        return self.values[code]


class ResolverStore:
    """Columnar per-resolver records plus spillable per-week columns."""

    def __init__(self, directory=None, week_cache=8):
        if week_cache < 1:
            raise ValueError("week_cache must be >= 1")
        self.directory = directory
        self.week_cache = week_cache
        self.generation = 0
        # Per-resolver SoA columns, one row per distinct resolver IP.
        self._rows = {}                  # ip int -> row index
        self._ips = array("I")
        self._first_week = array("i")
        self._last_week = array("i")
        self._weeks_mask = []            # python ints: unbounded weeks
        self._last_rcode = array("B")
        self._flags = array("B")         # OR of observed row flags
        self._country = array("H")      # code into the geo table
        self._asn = array("I")           # 0 = unknown
        self._software = array("H")      # 0 = never fingerprinted
        self._device = array("H")        # 0 = never classified
        self._verdict = array("H")       # 0 = never judged
        self._geo_table = _StringTable([("??", "???")])
        self._label_table = _StringTable([""])
        # Per-week columns: resident dict + manifest-known week digests.
        self._weeks = {}                 # week -> WeekColumns (resident)
        self._week_digests = {}          # week -> digest (all known weeks)
        self._week_lru = []              # residency order, oldest first
        self._dirty_weeks = set()
        # Idempotence bookkeeping (persisted with the records).
        self.ingested = {}               # key string -> payload digest
        self.cursors = {}                # feed identity -> seq consumed
        self.meta = {}                   # ingest-provided run facts

    # -- per-resolver records ----------------------------------------------

    def __len__(self):
        return len(self._ips)

    def _row_for(self, value):
        row = self._rows.get(value)
        if row is None:
            row = self._rows[value] = len(self._ips)
            self._ips.append(value)
            self._first_week.append(_NO_WEEK)
            self._last_week.append(_NO_WEEK)
            self._weeks_mask.append(0)
            self._last_rcode.append(0)
            self._flags.append(0)
            self._country.append(0)
            self._asn.append(0)
            self._software.append(0)
            self._device.append(0)
            self._verdict.append(0)
        return row

    def observe(self, value, week, rcode, flags):
        """Fold one scan row (target int, week, rcode, flags)."""
        row = self._row_for(value)
        if self._first_week[row] == _NO_WEEK \
                or week < self._first_week[row]:
            self._first_week[row] = week
        if week >= self._last_week[row]:
            self._last_week[row] = week
            self._last_rcode[row] = rcode
        self._weeks_mask[row] |= 1 << week
        self._flags[row] |= flags
        return row

    def locate(self, value, country, rir, asn):
        """Attach geography to a resolver (first sighting wins — the
        prefix -> AS mapping is static in this world)."""
        row = self._row_for(value)
        if self._country[row] == 0:
            self._country[row] = self._geo_table.code((country, rir))
            self._asn[row] = asn or 0

    def set_software(self, value, outcome, version):
        row = self._row_for(value)
        self._software[row] = self._label_table.code(
            "%s|%s" % (outcome, version or ""))

    def set_device(self, value, hardware, os_name, vendor):
        row = self._row_for(value)
        self._device[row] = self._label_table.code(
            "%s|%s|%s" % (hardware or "", os_name or "", vendor or ""))

    def add_verdict(self, value, label, sublabel):
        """Fold one manipulation label; verdicts accumulate as a sorted
        ``;``-joined set so fold order never changes the stored code."""
        row = self._row_for(value)
        entry = "%s/%s" % (label, sublabel or "")
        existing = self._label_table.value(self._verdict[row])
        labels = set(existing.split(";")) if existing else set()
        labels.add(entry)
        self._verdict[row] = self._label_table.code(
            ";".join(sorted(labels)))

    def record(self, ip):
        """Point lookup: one resolver's full record, or ``None``."""
        value = ip_to_int(ip) if isinstance(ip, str) else ip
        row = self._rows.get(value)
        if row is None:
            return None
        country, rir = self._geo_table.value(self._country[row])
        mask = self._weeks_mask[row]
        software = self._label_table.value(self._software[row])
        device = self._label_table.value(self._device[row])
        verdict = self._label_table.value(self._verdict[row])
        record = {
            "ip": int_to_ip(value),
            "first_week": self._first_week[row],
            "last_week": self._last_week[row],
            "weeks_seen": [week for week in range(mask.bit_length())
                           if mask >> week & 1],
            "last_rcode": self._last_rcode[row],
            "flags": self._flags[row],
            "country": country,
            "rir": rir,
            "asn": self._asn[row] or None,
            "software": None,
            "device": None,
            "verdict": "CLEAN",
            "labels": [],
        }
        if software:
            outcome, __, version = software.partition("|")
            record["software"] = {"outcome": outcome,
                                  "version": version or None}
        if device:
            hardware, os_name, vendor = device.split("|")
            record["device"] = {"hardware": hardware or None,
                                "os": os_name or None,
                                "vendor": vendor or None}
        if verdict:
            record["verdict"] = "MANIPULATING"
            record["labels"] = verdict.split(";")
        return record

    def rows_where(self, country=None, rir=None, asn=None,
                   verdict_label=None):
        """Secondary-index scan: resolver IPs matching every given
        criterion, in ascending address order."""
        matches = []
        for value, row in self._rows.items():
            if country is not None or rir is not None:
                have_country, have_rir = self._geo_table.value(
                    self._country[row])
                if country is not None and have_country != country:
                    continue
                if rir is not None and have_rir != rir:
                    continue
            if asn is not None and self._asn[row] != asn:
                continue
            if verdict_label is not None:
                verdict = self._label_table.value(self._verdict[row])
                if not any(entry.split("/")[0] == verdict_label
                           for entry in verdict.split(";") if entry):
                    continue
            matches.append(value)
        matches.sort()
        return [int_to_ip(value) for value in matches]

    def geo_of(self, value):
        row = self._rows.get(value)
        if row is None:
            return ("??", "???", None)
        country, rir = self._geo_table.value(self._country[row])
        return (country, rir, self._asn[row] or None)

    # -- per-week columns ---------------------------------------------------

    def weeks(self):
        """All known week numbers, ascending (resident or spilled)."""
        known = set(self._weeks) | set(self._week_digests)
        return sorted(known)

    def put_week(self, columns):
        self._weeks[columns.week] = columns
        self._dirty_weeks.add(columns.week)
        self._week_digests[columns.week] = columns.digest()
        self._touch_week(columns.week)

    def week(self, week):
        """One week's columns, loading from the current generation on
        demand; resident weeks are bounded by ``week_cache`` (dirty
        weeks are never evicted — they exist nowhere else yet)."""
        columns = self._weeks.get(week)
        if columns is None:
            if week not in self._week_digests or self.directory is None:
                raise KeyError(week)
            columns = WeekColumns.from_payload(self._load_payload(
                self._week_filename(week)))
            self._weeks[week] = columns
        self._touch_week(week)
        return columns

    def _touch_week(self, week):
        if week in self._week_lru:
            self._week_lru.remove(week)
        self._week_lru.append(week)
        while len(self._week_lru) > self.week_cache:
            for victim in self._week_lru:
                if victim not in self._dirty_weeks:
                    self._week_lru.remove(victim)
                    del self._weeks[victim]
                    break
            else:
                break  # everything resident is dirty: keep it all

    def resident_weeks(self):
        return sorted(self._weeks)

    # -- content digest ----------------------------------------------------

    def digest(self):
        """A stable digest over everything the store asserts.

        Two stores that ingested the same logical campaign — one from an
        uninterrupted run, one from a crash-and-resume — must digest
        identically; rows are folded in per-week sorted column order, so
        they do.
        """
        crc = zlib.crc32(json.dumps(
            sorted(self._week_digests.items()), sort_keys=True)
            .encode("utf-8"))
        for value in sorted(self._rows):
            row = self._rows[value]
            country, rir = self._geo_table.value(self._country[row])
            line = "%d|%d|%d|%d|%d|%d|%s|%s|%d|%s|%s|%s" % (
                value, self._first_week[row], self._last_week[row],
                self._weeks_mask[row], self._last_rcode[row],
                self._flags[row], country, rir, self._asn[row],
                self._label_table.value(self._software[row]),
                self._label_table.value(self._device[row]),
                self._label_table.value(self._verdict[row]))
            crc = zlib.crc32(line.encode("utf-8"), crc)
        return "%08x" % crc

    # -- persistence --------------------------------------------------------

    @staticmethod
    def _week_filename(week):
        return "week-%05d.snap" % week

    def _generation_dir(self, generation):
        return os.path.join(self.directory, "gen-%08d" % generation)

    def _manifest_path(self):
        return os.path.join(self.directory, "MANIFEST.json")

    def _load_payload(self, filename):
        path = os.path.join(self._generation_dir(self.generation),
                            filename)
        with open(path, "rb") as handle:
            return decode_snapshot(handle.read())

    def _records_payload(self):
        return {
            "format": _FORMAT,
            "ips": self._ips.tobytes(),
            "first_week": self._first_week.tobytes(),
            "last_week": self._last_week.tobytes(),
            "weeks_mask": list(self._weeks_mask),
            "last_rcode": self._last_rcode.tobytes(),
            "flags": self._flags.tobytes(),
            "country": self._country.tobytes(),
            "asn": self._asn.tobytes(),
            "software": self._software.tobytes(),
            "device": self._device.tobytes(),
            "verdict": self._verdict.tobytes(),
            "geo_table": list(self._geo_table.values),
            "label_table": list(self._label_table.values),
            "ingested": dict(self.ingested),
            "cursors": dict(self.cursors),
            "meta": dict(self.meta),
        }

    def _restore_records(self, payload):
        if payload.get("format") != _FORMAT:
            raise ObservatoryError("unknown store format %r"
                                   % payload.get("format"))
        self._ips = array("I")
        self._ips.frombytes(payload["ips"])
        self._first_week = array("i")
        self._first_week.frombytes(payload["first_week"])
        self._last_week = array("i")
        self._last_week.frombytes(payload["last_week"])
        self._weeks_mask = list(payload["weeks_mask"])
        for name in ("last_rcode", "flags"):
            column = array("B")
            column.frombytes(payload[name])
            setattr(self, "_" + name, column)
        for name in ("country", "software", "device", "verdict"):
            column = array("H")
            column.frombytes(payload[name])
            setattr(self, "_" + name, column)
        self._asn = array("I")
        self._asn.frombytes(payload["asn"])
        self._geo_table = _StringTable(
            tuple(entry) for entry in payload["geo_table"])
        self._label_table = _StringTable(payload["label_table"])
        self._rows = {value: row for row, value in enumerate(self._ips)}
        self.ingested = dict(payload["ingested"])
        self.cursors = dict(payload["cursors"])
        self.meta = dict(payload["meta"])

    def save(self):
        """Persist the store as a new generation; atomic swap.

        Unchanged week payloads are hard-linked from the previous
        generation (same digest, same bytes), so a weekly incremental
        ingest writes one new week file plus the records snapshot, not
        the whole history.
        """
        if self.directory is None:
            raise ObservatoryError("store has no directory to save into")
        os.makedirs(self.directory, exist_ok=True)
        old_generation = self.generation
        new_generation = old_generation + 1
        new_dir = self._generation_dir(new_generation)
        old_dir = self._generation_dir(old_generation)
        if os.path.exists(new_dir):
            shutil.rmtree(new_dir)
        os.makedirs(new_dir)
        self._write_snapshot(os.path.join(new_dir, "records.snap"),
                             self._records_payload())
        for week in self.weeks():
            filename = self._week_filename(week)
            target = os.path.join(new_dir, filename)
            source = os.path.join(old_dir, filename)
            if week not in self._dirty_weeks and os.path.exists(source):
                try:
                    os.link(source, target)
                except OSError:
                    shutil.copyfile(source, target)
            else:
                self._write_snapshot(target,
                                     self.week(week).to_payload())
        fsync_directory(new_dir)
        manifest = {
            "format": _FORMAT,
            "generation": new_generation,
            "resolvers": len(self),
            "weeks": {str(week): digest for week, digest
                      in sorted(self._week_digests.items())},
            "cursors": dict(self.cursors),
            "digest": self.digest(),
        }
        atomic_write_text(self._manifest_path(),
                          json.dumps(manifest, sort_keys=True,
                                     indent=1) + "\n")
        self.generation = new_generation
        self._dirty_weeks.clear()
        self._prune_generations(keep=new_generation)
        # Now that every week exists on disk, enforce the residency cap.
        while len(self._week_lru) > self.week_cache:
            victim = self._week_lru.pop(0)
            del self._weeks[victim]
        return new_generation

    def _write_snapshot(self, path, payload):
        data = encode_snapshot(payload)
        with open(path, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

    def _prune_generations(self, keep):
        for name in os.listdir(self.directory):
            if not name.startswith("gen-"):
                continue
            try:
                generation = int(name.split("-", 1)[1])
            except ValueError:
                continue
            if generation != keep:
                shutil.rmtree(os.path.join(self.directory, name),
                              ignore_errors=True)

    @classmethod
    def open(cls, directory, week_cache=8):
        """Open an existing store directory at its current generation."""
        store = cls(directory, week_cache=week_cache)
        manifest = store.read_manifest()
        if manifest is None:
            raise ObservatoryError(
                "no observatory store in %s (missing MANIFEST.json); "
                "run 'repro observe ingest' first" % directory)
        store.generation = manifest["generation"]
        store._restore_records(store._load_payload("records.snap"))
        store._week_digests = {int(week): digest for week, digest
                               in manifest["weeks"].items()}
        return store

    @classmethod
    def open_or_create(cls, directory, week_cache=8):
        store = cls(directory, week_cache=week_cache)
        manifest = store.read_manifest()
        if manifest is not None:
            store.generation = manifest["generation"]
            store._restore_records(store._load_payload("records.snap"))
            store._week_digests = {int(week): digest for week, digest
                                   in manifest["weeks"].items()}
        return store

    def read_manifest(self):
        if self.directory is None:
            return None
        try:
            with open(self._manifest_path()) as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except ValueError:
            raise ObservatoryError("unreadable MANIFEST.json in %s"
                                   % self.directory)

    def disk_bytes(self):
        """Total bytes of the current generation on disk (0 unsaved)."""
        if self.directory is None or self.generation == 0:
            return 0
        total = 0
        gen_dir = self._generation_dir(self.generation)
        try:
            for name in os.listdir(gen_dir):
                total += os.path.getsize(os.path.join(gen_dir, name))
        except FileNotFoundError:
            return 0
        return total

    def __repr__(self):
        return "ResolverStore(%d resolvers, %d weeks, gen %d)" % (
            len(self), len(self.weeks()), self.generation)
