"""The observatory's query plane: answers derived from the store alone.

Point lookups read straight off the store's columnar records (a dict
probe plus a dozen array reads — the millions-of-cheap-queries path).
Aggregates — the Table 1/2 fluctuation rankings, the Figure 2 survival
curve — are *not* re-implemented here: the store's per-week columns are
wrapped in lightweight result views exposing exactly the ``responders``
/ ``noerror`` surface the batch analysis reads, and the real
:mod:`repro.analysis` functions run over them.  Identity with the batch
``fullstudy`` report is therefore structural, not coincidental: same
code, same inputs, byte-identical tables.

Every query is counted (``observatory_queries_served``) and timed into
a ``observatory_lookup_seconds`` / ``observatory_aggregate_seconds``
:class:`~repro.obs.hist.LogHistogram` when a perf registry is attached.
"""

import time

from repro.analysis.churn import churn_survival
from repro.analysis.geography import (
    country_fluctuation,
    rir_fluctuation,
)
from repro.netsim.address import Ipv4Network, int_to_ip


class _WeekResultView:
    """A stored week, quacking like a ``ScanResult`` for the analysis
    layer: ``responders`` and ``noerror`` as sets of dotted quads."""

    __slots__ = ("columns", "_responders", "_noerror")

    def __init__(self, columns):
        self.columns = columns
        self._responders = None
        self._noerror = None

    @property
    def responders(self):
        if self._responders is None:
            self._responders = set(map(int_to_ip, self.columns.targets))
        return self._responders

    @property
    def noerror(self):
        if self._noerror is None:
            self._noerror = set(map(int_to_ip, self.columns.noerror))
        return self._noerror


class _WeekSnapshotView:
    """``WeeklySnapshot`` shape (``.week`` + ``.result``) over a view."""

    __slots__ = ("week", "result")

    def __init__(self, week, result):
        self.week = week
        self.result = result


class _StoreGeoView:
    """``GeoIpDatabase`` shape answered from the store's geo columns."""

    __slots__ = ("store",)

    def __init__(self, store):
        self.store = store

    def count_by_country(self, ips):
        counts = {}
        for ip in ips:
            code = self.store.record(ip)["country"]
            counts[code] = counts.get(code, 0) + 1
        return counts

    def count_by_rir(self, ips):
        counts = {}
        for ip in ips:
            registry = self.store.record(ip)["rir"]
            counts[registry] = counts.get(registry, 0) + 1
        return counts


class Observatory:
    """Query API over one :class:`~repro.observatory.store.ResolverStore`."""

    def __init__(self, store, perf=None, tracer=None):
        self.store = store
        self.perf = perf
        self.tracer = tracer
        self.geo = _StoreGeoView(store)

    # -- instrumentation ---------------------------------------------------

    def _served(self, histogram, started):
        if self.perf is not None:
            self.perf.count("observatory_queries_served")
            self.perf.observe(histogram,
                              time.perf_counter() - started)

    # -- point queries -----------------------------------------------------

    def lookup(self, ip):
        """One resolver's record (dict) or ``None`` — the hot path."""
        started = time.perf_counter()
        record = self.store.record(ip)
        self._served("observatory_lookup_seconds", started)
        return record

    def lookup_many(self, ips):
        record = self.store.record
        if self.perf is not None:
            started = time.perf_counter()
            records = [record(ip) for ip in ips]
            self.perf.count("observatory_queries_served", len(records))
            self.perf.observe("observatory_lookup_seconds",
                              time.perf_counter() - started)
            return records
        return [record(ip) for ip in ips]

    def resolvers_in(self, country=None, rir=None, asn=None,
                     verdict_label=None):
        """Secondary-index query: matching resolver IPs, ascending."""
        started = time.perf_counter()
        matches = self.store.rows_where(country=country, rir=rir,
                                        asn=asn,
                                        verdict_label=verdict_label)
        self._served("observatory_aggregate_seconds", started)
        return matches

    # -- week views --------------------------------------------------------

    def week_view(self, week):
        return _WeekResultView(self.store.week(week))

    def snapshots(self):
        """Every stored week as a snapshot view, ascending — the exact
        input shape :func:`repro.analysis.churn.churn_survival` takes."""
        return [_WeekSnapshotView(week, self.week_view(week))
                for week in self.store.weeks()]

    def first_last(self):
        weeks = self.store.weeks()
        if not weeks:
            raise LookupError("observatory store holds no weeks yet")
        return self.week_view(weeks[0]), self.week_view(weeks[-1])

    # -- aggregates (Table 1 / Table 2 / Figure 2) -------------------------

    def country_rankings(self, top=10):
        """Table 1 rows + top-N share, from the store alone."""
        started = time.perf_counter()
        first, last = self.first_last()
        rows, top_share = country_fluctuation(first, last, self.geo,
                                              top=top)
        self._served("observatory_aggregate_seconds", started)
        return rows, top_share

    def rir_rankings(self):
        """Table 2 rows, from the store alone."""
        started = time.perf_counter()
        first, last = self.first_last()
        rows = rir_fluctuation(first, last, self.geo)
        self._served("observatory_aggregate_seconds", started)
        return rows

    def survival(self):
        """The Figure 2 cohort survival curve, from the store alone."""
        started = time.perf_counter()
        curve = churn_survival(self.snapshots())
        self._served("observatory_aggregate_seconds", started)
        return curve

    # -- churn timelines ---------------------------------------------------

    def timeline(self, prefix):
        """Week-by-week churn inside one CIDR prefix.

        Returns one dict per stored week: responder count within the
        prefix, arrivals (addresses not answering the previous stored
        week), departures, plus that week's scan mode and carried
        totals — the per-prefix drilldown behind the Figure 2 story.
        """
        started = time.perf_counter()
        network = (prefix if isinstance(prefix, Ipv4Network)
                   else Ipv4Network(prefix))
        rows = []
        previous = set()
        for week in self.store.weeks():
            columns = self.store.week(week)
            inside = {value for value in columns.targets
                      if network.contains_int(value)}
            rows.append({
                "week": week,
                "responders": len(inside),
                "new": len(inside - previous),
                "gone": len(previous - inside),
                "mode": columns.mode,
                "carried": columns.carried_targets,
            })
            previous = inside
        self._served("observatory_aggregate_seconds", started)
        return rows

    # -- store facts -------------------------------------------------------

    def stats(self):
        """Store-level facts for /stats and the CLI summary line."""
        weeks = self.store.weeks()
        return {
            "resolvers": len(self.store),
            "weeks": len(weeks),
            "first_week": weeks[0] if weeks else None,
            "last_week": weeks[-1] if weeks else None,
            "generation": self.store.generation,
            "disk_bytes": self.store.disk_bytes(),
        }
