"""Embedded HTTP/JSON API over the observatory query plane.

Stdlib only: a :class:`http.server.ThreadingHTTPServer` where every
route answers from an :class:`~repro.observatory.query.Observatory`.
The server owns no state of its own — it is a thin JSON skin, so every
number it returns is byte-derived from the same store the CLI reads.

Routes::

    GET /healthz                     liveness + generation
    GET /stats                       store facts + query counters
    GET /resolver/<ip>               one resolver's record (404 unknown)
    GET /rankings/countries?top=N    Table 1 rows + top-N share
    GET /rankings/rirs               Table 2 rows
    GET /survival                    Figure 2 curve [[week, pct], ...]
    GET /timeline/<base>/<len>       per-week churn inside one prefix

Start with :meth:`ObservatoryServer.start` (background thread; bind to
port 0 to let the OS pick — the bound address is ``server.address``),
stop with :meth:`ObservatoryServer.stop`.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit


class _ObservatoryHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-observatory"

    def log_message(self, format, *args):    # noqa: A002 - stdlib name
        pass                                 # tests and CLI want silence

    def do_GET(self):                        # noqa: N802 - stdlib name
        observatory = self.server.observatory
        split = urlsplit(self.path)
        parts = [part for part in split.path.split("/") if part]
        query = parse_qs(split.query)
        try:
            with self.server.lock:
                status, body = self._route(observatory, parts, query)
        except (LookupError, ValueError) as error:
            status, body = 400, {"error": str(error)}
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _route(self, observatory, parts, query):
        if parts == ["healthz"]:
            return 200, {"ok": True,
                         "generation": observatory.store.generation}
        if parts == ["stats"]:
            stats = observatory.stats()
            perf = observatory.perf
            if perf is not None:
                stats["queries_served"] = perf.counter(
                    "observatory_queries_served")
                stats["ingest_lag_records"] = perf.gauge_value(
                    "observatory_ingest_lag_records")
            return 200, stats
        if len(parts) == 2 and parts[0] == "resolver":
            record = observatory.lookup(parts[1])
            if record is None:
                return 404, {"error": "unknown resolver %s" % parts[1]}
            return 200, record
        if parts == ["rankings", "countries"]:
            top = int(query.get("top", ["10"])[0])
            rows, top_share = observatory.country_rankings(top=top)
            return 200, {"rows": rows, "top_share": top_share}
        if parts == ["rankings", "rirs"]:
            return 200, {"rows": observatory.rir_rankings()}
        if parts == ["survival"]:
            return 200, {"curve": [[week, pct] for week, pct
                                   in observatory.survival()]}
        if len(parts) == 3 and parts[0] == "timeline":
            prefix = "%s/%s" % (parts[1], parts[2])
            return 200, {"prefix": prefix,
                         "rows": observatory.timeline(prefix)}
        return 404, {"error": "no such route %r" % "/".join(parts)}


class ObservatoryServer:
    """The observatory's resident HTTP face, one background thread."""

    def __init__(self, observatory, host="127.0.0.1", port=0):
        self.observatory = observatory
        self._httpd = ThreadingHTTPServer((host, port),
                                          _ObservatoryHandler)
        self._httpd.daemon_threads = True
        self._httpd.observatory = observatory
        # Serialize queries against serve-time re-ingest: a reader must
        # never see a week mid-fold.  Handlers hold it per request; an
        # ingest loop holds it across each fold pass.
        self.lock = self._httpd.lock = threading.RLock()
        self._thread = None

    @property
    def address(self):
        """``(host, port)`` actually bound (resolves port 0)."""
        return self._httpd.server_address[:2]

    @property
    def url(self):
        return "http://%s:%d" % self.address

    def start(self):
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.05},
            name="observatory-http", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self):
        """Serve on the calling thread (the ``repro observe serve`` path)."""
        self._httpd.serve_forever(poll_interval=0.2)

    def stop(self):
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()
