"""The scanned domain set: 155 domains in 13 categories (paper §3.2).

The paper publishes the category sizes (Ads 9, Adult 4, Alexa 20,
Antivirus 15, Banking 20, Dating 3, Filesharing 5, Gambling 4, Malware 13,
MX 13, NX 21, Tracking 5, Miscellaneous 22) and names a subset of the
domains in the text; the remainder are reconstructed with representative
names of the same kind.  Together with the ground-truth domain (whose
AuthNS we operate) the set counts 155 names.
"""

CATEGORY_ADS = "Ads"
CATEGORY_ADULT = "Adult"
CATEGORY_ALEXA = "Alexa"
CATEGORY_ANTIVIRUS = "Antivirus"
CATEGORY_BANKING = "Banking"
CATEGORY_DATING = "Dating"
CATEGORY_FILESHARING = "Filesharing"
CATEGORY_GAMBLING = "Gambling"
CATEGORY_MALWARE = "Malware"
CATEGORY_MX = "MX"
CATEGORY_NX = "NX"
CATEGORY_TRACKING = "Tracking"
CATEGORY_MISC = "Misc"

ALL_CATEGORIES = (
    CATEGORY_ADS, CATEGORY_ADULT, CATEGORY_ALEXA, CATEGORY_ANTIVIRUS,
    CATEGORY_BANKING, CATEGORY_DATING, CATEGORY_FILESHARING,
    CATEGORY_GAMBLING, CATEGORY_MALWARE, CATEGORY_MX, CATEGORY_NX,
    CATEGORY_TRACKING, CATEGORY_MISC,
)

# The scanner's own measurement domain (random prefixes + hex-encoded
# target IP are prepended: prefix.hex-ip.scan.dnsstudy.edu) and the
# ground-truth domain whose AuthNS the study operates.
MEASUREMENT_DOMAIN = "scan.dnsstudy.edu"
GROUND_TRUTH_DOMAIN = "gt.dnsstudy.edu"

# The 15 TLDs whose NS records are snooped for the utilization study (§2.6).
SNOOPING_TLDS = ("br", "cn", "co.uk", "com", "de", "fr", "in", "info", "it",
                 "jp", "net", "nl", "org", "pl", "ru")


class ScanDomain:
    """One scanned domain: name, category, and service expectations."""

    KIND_WEB = "web"
    KIND_MAIL = "mail"
    KIND_NX = "nx"

    def __init__(self, name, category, exists=True, kind=KIND_WEB,
                 https=True, popular=False, cdn=False):
        self.name = name
        self.category = category
        self.exists = exists
        self.kind = kind
        self.https = https
        self.popular = popular
        self.cdn = cdn

    def __repr__(self):
        return "ScanDomain(%r, %s)" % (self.name, self.category)

    def __eq__(self, other):
        return isinstance(other, ScanDomain) and other.name == self.name

    def __hash__(self):
        return hash(self.name)


def _web(name, category, **kwargs):
    return ScanDomain(name, category, **kwargs)


def _mail(name):
    return ScanDomain(name, CATEGORY_MX, kind=ScanDomain.KIND_MAIL,
                      https=False)


def _nx(name):
    return ScanDomain(name, CATEGORY_NX, exists=False,
                      kind=ScanDomain.KIND_NX)


DOMAIN_SETS = {
    # 9 ad-provider domains.
    CATEGORY_ADS: (
        _web("doubleclick.net", CATEGORY_ADS, cdn=True),
        _web("googlesyndication.com", CATEGORY_ADS, cdn=True),
        _web("adnxs.com", CATEGORY_ADS),
        _web("advertising.com", CATEGORY_ADS),
        _web("adform.net", CATEGORY_ADS),
        _web("rubiconproject.com", CATEGORY_ADS),
        _web("openx.net", CATEGORY_ADS),
        _web("criteo.com", CATEGORY_ADS),
        _web("zedo.com", CATEGORY_ADS),
    ),
    # 4 adult domains from the Alexa ranking.
    CATEGORY_ADULT: (
        _web("youporn.com", CATEGORY_ADULT, popular=True),
        _web("adultfinder.com", CATEGORY_ADULT),
        _web("xhamster.com", CATEGORY_ADULT, popular=True),
        _web("redtube.com", CATEGORY_ADULT),
    ),
    # Alexa Top-20 ranked domains.
    CATEGORY_ALEXA: (
        _web("google.com", CATEGORY_ALEXA, popular=True, cdn=True),
        _web("facebook.com", CATEGORY_ALEXA, popular=True, cdn=True),
        _web("youtube.com", CATEGORY_ALEXA, popular=True, cdn=True),
        _web("yahoo.com", CATEGORY_ALEXA, popular=True, cdn=True),
        _web("baidu.com", CATEGORY_ALEXA, popular=True),
        _web("wikipedia.org", CATEGORY_ALEXA, popular=True, cdn=True),
        _web("twitter.com", CATEGORY_ALEXA, popular=True, cdn=True),
        _web("qq.com", CATEGORY_ALEXA, popular=True),
        _web("amazon.com", CATEGORY_ALEXA, popular=True, cdn=True),
        _web("taobao.com", CATEGORY_ALEXA, popular=True),
        _web("linkedin.com", CATEGORY_ALEXA, popular=True),
        _web("live.com", CATEGORY_ALEXA, popular=True, cdn=True),
        _web("sina.com.cn", CATEGORY_ALEXA, popular=True),
        _web("weibo.com", CATEGORY_ALEXA, popular=True),
        _web("ebay.com", CATEGORY_ALEXA, popular=True),
        _web("yandex.ru", CATEGORY_ALEXA, popular=True),
        _web("blogspot.com", CATEGORY_ALEXA, popular=True, cdn=True),
        _web("vk.com", CATEGORY_ALEXA, popular=True),
        _web("instagram.com", CATEGORY_ALEXA, popular=True, cdn=True),
        _web("reddit.com", CATEGORY_ALEXA, popular=True, cdn=True),
    ),
    # 15 AV / malware-protection vendors and update servers.
    CATEGORY_ANTIVIRUS: (
        _web("kaspersky.com", CATEGORY_ANTIVIRUS),
        _web("symantec.com", CATEGORY_ANTIVIRUS),
        _web("mcafee.com", CATEGORY_ANTIVIRUS),
        _web("avast.com", CATEGORY_ANTIVIRUS),
        _web("avg.com", CATEGORY_ANTIVIRUS),
        _web("avira.com", CATEGORY_ANTIVIRUS),
        _web("eset.com", CATEGORY_ANTIVIRUS),
        _web("bitdefender.com", CATEGORY_ANTIVIRUS),
        _web("f-secure.com", CATEGORY_ANTIVIRUS),
        _web("trendmicro.com", CATEGORY_ANTIVIRUS),
        _web("sophos.com", CATEGORY_ANTIVIRUS),
        _web("malwarebytes.org", CATEGORY_ANTIVIRUS),
        _web("update.symantec.com", CATEGORY_ANTIVIRUS, cdn=True),
        _web("liveupdate.symantecliveupdate.com", CATEGORY_ANTIVIRUS,
             cdn=True),
        _web("definitions.kaspersky-labs.com", CATEGORY_ANTIVIRUS, cdn=True),
    ),
    # 20 banking / payment domains.
    CATEGORY_BANKING: (
        _web("paypal.com", CATEGORY_BANKING, popular=True),
        _web("alipay.com", CATEGORY_BANKING, popular=True),
        _web("ebay.de", CATEGORY_BANKING),
        _web("chase.com", CATEGORY_BANKING),
        _web("bankofamerica.com", CATEGORY_BANKING),
        _web("wellsfargo.com", CATEGORY_BANKING),
        _web("citibank.com", CATEGORY_BANKING),
        _web("hsbc.com", CATEGORY_BANKING),
        _web("barclays.co.uk", CATEGORY_BANKING),
        _web("santander.com", CATEGORY_BANKING),
        _web("deutsche-bank.de", CATEGORY_BANKING),
        _web("commerzbank.de", CATEGORY_BANKING),
        _web("bnpparibas.com", CATEGORY_BANKING),
        _web("unicredit.it", CATEGORY_BANKING),
        _web("intesasanpaolo.it", CATEGORY_BANKING),
        _web("sberbank.ru", CATEGORY_BANKING),
        _web("icbc.com.cn", CATEGORY_BANKING),
        _web("itau.com.br", CATEGORY_BANKING),
        _web("visa.com", CATEGORY_BANKING),
        _web("mastercard.com", CATEGORY_BANKING),
    ),
    # 3 dating domains.
    CATEGORY_DATING: (
        _web("match.com", CATEGORY_DATING),
        _web("okcupid.com", CATEGORY_DATING),
        _web("plentyoffish.com", CATEGORY_DATING),
    ),
    # 5 filesharing domains.
    CATEGORY_FILESHARING: (
        _web("kickass.to", CATEGORY_FILESHARING, popular=True),
        _web("thepiratebay.se", CATEGORY_FILESHARING, popular=True),
        _web("torrentz.eu", CATEGORY_FILESHARING),
        _web("extratorrent.cc", CATEGORY_FILESHARING),
        _web("rapidgator.net", CATEGORY_FILESHARING),
    ),
    # 4 betting / gambling domains.
    CATEGORY_GAMBLING: (
        _web("bet-at-home.com", CATEGORY_GAMBLING),
        _web("bet365.com", CATEGORY_GAMBLING),
        _web("pokerstars.com", CATEGORY_GAMBLING),
        _web("williamhill.com", CATEGORY_GAMBLING),
    ),
    # 13 domains listed on common malware blacklists.  Three are Chinese
    # (two of which the paper found re-registered by parking providers).
    CATEGORY_MALWARE: (
        _web("irc.zief.pl", CATEGORY_MALWARE, https=False),
        _web("dga-c2-update.ru", CATEGORY_MALWARE, https=False),
        _web("banker-drop.biz", CATEGORY_MALWARE, https=False),
        _web("exploit-kit-landing.info", CATEGORY_MALWARE, https=False),
        _web("fakeav-billing.net", CATEGORY_MALWARE, https=False),
        _web("spam-template-host.org", CATEGORY_MALWARE, https=False),
        _web("worm-seed.cn", CATEGORY_MALWARE, https=False),
        _web("trojan-config.com.cn", CATEGORY_MALWARE, https=False),
        _web("botnet-proxy.cn", CATEGORY_MALWARE, https=False),
        _web("ransom-gate.com", CATEGORY_MALWARE, https=False),
        _web("clickfraud-sink.net", CATEGORY_MALWARE, https=False),
        _web("stealer-panel.su", CATEGORY_MALWARE, https=False),
        _web("downloader-cdn.info", CATEGORY_MALWARE, https=False),
    ),
    # 13 IMAP/POP3/SMTP hostnames of six mail providers.
    CATEGORY_MX: (
        _mail("imap.aim.com"),
        _mail("smtp.aim.com"),
        _mail("imap.gmail.com"),
        _mail("smtp.gmail.com"),
        _mail("pop.gmail.com"),
        _mail("imap.mail.me.com"),
        _mail("smtp.mail.me.com"),
        _mail("imap-mail.outlook.com"),
        _mail("smtp-mail.outlook.com"),
        _mail("imap.mail.yahoo.com"),
        _mail("smtp.mail.yahoo.com"),
        _mail("imap.yandex.ru"),
        _mail("smtp.yandex.ru"),
    ),
    # 21 non-existent names: 8 invented, 5 NX subdomains of popular
    # domains, 8 typo-squats (non-registered at scan time).
    CATEGORY_NX: (
        _nx("qzxkvwjr.com"),
        _nx("nonexistent-domain-check.net"),
        _nx("thisdomainsurelydoesnotexist.org"),
        _nx("blorpfizzle.info"),
        _nx("xkcdqwerty.biz"),
        _nx("notarealdomain-dnsstudy.com"),
        _nx("unregistered-probe.net"),
        _nx("vqjhzmrr.org"),
        _nx("rswkllf.twitter.com"),
        _nx("zzzz.facebook.com"),
        _nx("qqqq.google.com"),
        _nx("xyzzy.wikipedia.org"),
        _nx("plugh.amazon.com"),
        _nx("amason.com"),
        _nx("ghoogle.com"),
        _nx("wikipeida.org"),
        _nx("facebok.com"),
        _nx("twiter.com"),
        _nx("youtub.com"),
        _nx("paypall.com"),
        _nx("yahooo.com"),
    ),
    # 5 user-tracking libraries.
    CATEGORY_TRACKING: (
        _web("bluecava.com", CATEGORY_TRACKING),
        _web("threatmetrix.com", CATEGORY_TRACKING),
        _web("scorecardresearch.com", CATEGORY_TRACKING),
        _web("quantserve.com", CATEGORY_TRACKING),
        _web("addthis.com", CATEGORY_TRACKING),
    ),
    # 22 miscellaneous: update servers, intelligence agencies, OAuth
    # endpoints, and individual domains named in the paper.
    CATEGORY_MISC: (
        _web("update.microsoft.com", CATEGORY_MISC, cdn=True),
        _web("windowsupdate.com", CATEGORY_MISC, cdn=True),
        _web("get.adobe.com", CATEGORY_MISC, cdn=True),
        _web("update.adobe.com", CATEGORY_MISC, cdn=True),
        _web("java.com", CATEGORY_MISC),
        _web("swupdate.apple.com", CATEGORY_MISC, cdn=True),
        _web("nsa.gov", CATEGORY_MISC),
        _web("gchq.gov.uk", CATEGORY_MISC),
        _web("mossad.gov.il", CATEGORY_MISC),
        _web("oauth.amazon.com", CATEGORY_MISC),
        _web("accounts.google.com", CATEGORY_MISC, cdn=True),
        _web("api.twitter.com", CATEGORY_MISC, cdn=True),
        _web("rotten.com", CATEGORY_MISC),
        _web("wikileaks.org", CATEGORY_MISC),
        _web("torproject.org", CATEGORY_MISC),
        _web("4chan.org", CATEGORY_MISC),
        _web("archive.org", CATEGORY_MISC),
        _web("pastebin.com", CATEGORY_MISC),
        _web("stackexchange.com", CATEGORY_MISC),
        _web("craigslist.org", CATEGORY_MISC),
        _web("imgur.com", CATEGORY_MISC, cdn=True),
        _web("github.com", CATEGORY_MISC),
    ),
}


def domains_in_category(category):
    """The :class:`ScanDomain` tuple for one category."""
    return DOMAIN_SETS[category]


def all_domains():
    """Every scanned domain across all 13 categories."""
    result = []
    for category in ALL_CATEGORIES:
        result.extend(DOMAIN_SETS[category])
    return result


def existing_web_domains():
    """All existing domains that serve web content (excludes NX and MX)."""
    return [domain for domain in all_domains()
            if domain.exists and domain.kind == ScanDomain.KIND_WEB]
