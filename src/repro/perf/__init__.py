"""Performance instrumentation: counters, timers, throughput reporting.

Shared by the sharded scan engine (:mod:`repro.scanner.engine`), weekly
campaigns, the classification pipeline, and the CLI ``--perf`` flag; the
``benchmarks/perf`` harness serialises registry snapshots into the
``BENCH_scan.json`` trajectory file.
"""

from repro.perf.metrics import PerfRegistry, sample_ru_maxrss_kb

__all__ = ["PerfRegistry", "sample_ru_maxrss_kb"]
