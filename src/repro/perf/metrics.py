"""Throughput counters and stage timers for the measurement machinery.

The scan engine, campaigns, and the classification pipeline all report
through a :class:`PerfRegistry`: plain monotonically increasing counters
(probes sent, parse calls avoided) plus named wall-clock timers (scan
duration, per-shard wall time, pipeline stage durations).  Registries are
cheap dictionaries — hot loops accumulate into local variables and flush
once per scan, so instrumentation never shows up in a profile.
"""

import time
from contextlib import contextmanager


class PerfRegistry:
    """Named counters and timers, mergeable across shards and stages."""

    def __init__(self):
        self.counters = {}
        self.timers = {}          # name -> [total_seconds, entry_count]
        self.gauges = {}          # name -> last observed value

    # -- counters ---------------------------------------------------------

    def count(self, name, amount=1):
        """Add ``amount`` to the counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def counter(self, name):
        return self.counters.get(name, 0)

    # -- gauges -----------------------------------------------------------

    def gauge(self, name, value):
        """Set the last-value gauge ``name`` (rates, ratios, sizes) —
        unlike counters these overwrite rather than accumulate."""
        self.gauges[name] = value

    def gauge_value(self, name, default=0.0):
        return self.gauges.get(name, default)

    # -- timers -----------------------------------------------------------

    def record_seconds(self, name, seconds):
        """Record one timed entry of ``seconds`` under ``name``."""
        entry = self.timers.get(name)
        if entry is None:
            self.timers[name] = [seconds, 1]
        else:
            entry[0] += seconds
            entry[1] += 1

    @contextmanager
    def stage(self, name):
        """Context manager timing one pipeline/scan stage."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.record_seconds(name, time.perf_counter() - start)

    def seconds(self, name):
        entry = self.timers.get(name)
        return entry[0] if entry else 0.0

    def rate(self, counter_name, timer_name):
        """Counter per second of timer, e.g. probes/sec (0.0 if untimed)."""
        elapsed = self.seconds(timer_name)
        if elapsed <= 0:
            return 0.0
        return self.counters.get(counter_name, 0) / elapsed

    # -- aggregation ------------------------------------------------------

    def merge(self, other):
        """Fold another registry (e.g. a shard's) into this one."""
        for name, amount in other.counters.items():
            self.count(name, amount)
        for name, (total, entries) in other.timers.items():
            entry = self.timers.get(name)
            if entry is None:
                self.timers[name] = [total, entries]
            else:
                entry[0] += total
                entry[1] += entries
        self.gauges.update(other.gauges)
        return self

    def snapshot(self):
        """A plain-dict view, suitable for ``json.dump``."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {name: {"seconds": total, "entries": entries}
                       for name, (total, entries) in self.timers.items()},
        }

    def restore(self, snapshot):
        """Replace this registry's contents from a :meth:`snapshot` dict.

        Used by checkpoint resume to rewind the registry to exactly the
        state recorded at a committed unit-of-work boundary.
        """
        self.counters = dict(snapshot.get("counters") or {})
        self.gauges = dict(snapshot.get("gauges") or {})
        self.timers = {name: [entry["seconds"], entry["entries"]]
                       for name, entry
                       in (snapshot.get("timers") or {}).items()}
        return self

    def format_report(self, title="perf"):
        """A human-readable multi-line summary."""
        lines = ["[%s]" % title]
        for name in sorted(self.counters):
            lines.append("  %-28s %d" % (name, self.counters[name]))
        for name in sorted(self.gauges):
            lines.append("  %-28s %.2f" % (name, self.gauges[name]))
        for name in sorted(self.timers):
            total, entries = self.timers[name]
            lines.append("  %-28s %.3fs (%d entries)"
                         % (name, total, entries))
        probes = self.counters.get("probes_sent")
        wall = self.seconds("scan_wall")
        if probes and wall > 0:
            lines.append("  %-28s %.0f" % ("probes_per_sec", probes / wall))
        return "\n".join(lines)

    def __repr__(self):
        return "PerfRegistry(%d counters, %d timers)" % (
            len(self.counters), len(self.timers))
