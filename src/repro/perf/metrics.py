"""Throughput counters, stage timers, and latency histograms.

The scan engine, campaigns, and the classification pipeline all report
through a :class:`PerfRegistry`: plain monotonically increasing counters
(probes sent, parse calls avoided), named wall-clock timers (scan
duration, per-shard wall time, pipeline stage durations), last-value
gauges, and log-bucketed latency histograms.  Registries are cheap
dictionaries — hot loops accumulate into local variables and flush once
per scan, so instrumentation never shows up in a profile.

Shard registries merge back into the supervisor's registry.  Counters,
timers, and histograms merge exactly (commutative sums), but a bare
"last value wins" gauge would make the merged value depend on shard
*completion* order, which is nondeterministic.  Gauges therefore carry a
declared merge policy (:meth:`PerfRegistry.declare_gauge`): ``last``
keeps the value from the highest shard index, ``max``/``min``/``sum``
reduce, ``mean`` weights by contribution count — all order-independent
when :meth:`merge` is told the shard's index via ``rank``.  Undeclared
gauges keep the legacy overwrite semantics.
"""

import sys
import time
from contextlib import contextmanager

from repro.obs.hist import LogHistogram

GAUGE_POLICIES = ("last", "max", "min", "mean", "sum")


def sample_ru_maxrss_kb():
    """Peak resident set size of this process in KiB (0 if unsupported).

    Backed by ``getrusage(RUSAGE_SELF).ru_maxrss`` — the kernel-tracked
    high-water mark, so a single sample at the end of a shard captures
    the worker's true peak without any polling thread.  Linux reports
    KiB; macOS reports bytes and is normalised here.
    """
    try:
        import resource
    except ImportError:          # non-POSIX: no rusage, gauge stays 0
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


class PerfRegistry:
    """Named counters, timers, gauges, and histograms, mergeable across
    shards and stages."""

    def __init__(self):
        self.counters = {}
        self.timers = {}          # name -> [total_seconds, entry_count]
        self.gauges = {}          # name -> current value
        self.histograms = {}      # name -> LogHistogram
        self.gauge_policies = {}  # name -> declared merge policy
        self._gauge_ranks = {}    # name -> shard index of current value
        self._gauge_state = {}    # name -> [sum, weight] (mean policy)
        # Derived rates printed by format_report: name -> [counter, timer].
        self.rates = {"probes_per_sec": ["probes_sent", "scan_wall"]}

    # -- counters ---------------------------------------------------------

    def count(self, name, amount=1):
        """Add ``amount`` to the counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def counter(self, name):
        return self.counters.get(name, 0)

    # -- gauges -----------------------------------------------------------

    def declare_gauge(self, name, policy="last"):
        """Declare how the gauge ``name`` reduces across shard merges."""
        if policy not in GAUGE_POLICIES:
            raise ValueError("unknown gauge policy %r (want one of %s)"
                             % (policy, ", ".join(GAUGE_POLICIES)))
        self.gauge_policies[name] = policy

    def gauge(self, name, value):
        """Set the gauge ``name`` (rates, ratios, sizes) — unlike
        counters these overwrite rather than accumulate."""
        self.gauges[name] = value
        if self.gauge_policies.get(name) == "mean":
            self._gauge_state[name] = [float(value), 1]

    def gauge_value(self, name, default=0.0):
        return self.gauges.get(name, default)

    # -- timers -----------------------------------------------------------

    def record_seconds(self, name, seconds):
        """Record one timed entry of ``seconds`` under ``name``."""
        entry = self.timers.get(name)
        if entry is None:
            self.timers[name] = [seconds, 1]
        else:
            entry[0] += seconds
            entry[1] += 1

    @contextmanager
    def stage(self, name):
        """Context manager timing one pipeline/scan stage."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.record_seconds(name, time.perf_counter() - start)

    def seconds(self, name):
        entry = self.timers.get(name)
        return entry[0] if entry else 0.0

    # -- histograms -------------------------------------------------------

    def histogram(self, name):
        """The named :class:`LogHistogram`, created on first use."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = LogHistogram()
        return histogram

    def observe(self, name, value):
        """Record one latency sample (seconds) into histogram ``name``."""
        self.histogram(name).observe(value)

    def observe_many(self, name, values):
        """Flush a batch of latency samples into histogram ``name``."""
        if values:
            self.histogram(name).observe_many(values)

    # -- derived rates ----------------------------------------------------

    def declare_rate(self, name, counter_name, timer_name):
        """Declare a derived counter-per-timer-second rate for reports
        (e.g. pipeline QPS from a stage counter and its stage timer)."""
        self.rates[name] = [counter_name, timer_name]

    def rate(self, counter_name, timer_name):
        """Counter per second of timer, e.g. probes/sec (0.0 if untimed)."""
        elapsed = self.seconds(timer_name)
        if elapsed <= 0:
            return 0.0
        return self.counters.get(counter_name, 0) / elapsed

    # -- aggregation ------------------------------------------------------

    def merge(self, other, rank=None):
        """Fold another registry (e.g. a shard's) into this one.

        ``rank`` is the contributing shard's index; with it, declared
        gauges reduce order-independently (merging shard registries in
        any completion order yields bit-identical state).  Without it,
        undeclared gauges keep the legacy "incoming overwrites" rule.
        """
        for name, amount in other.counters.items():
            self.count(name, amount)
        for name, (total, entries) in other.timers.items():
            entry = self.timers.get(name)
            if entry is None:
                self.timers[name] = [total, entries]
            else:
                entry[0] += total
                entry[1] += entries
        for name, histogram in other.histograms.items():
            self.histogram(name).merge(histogram)
        for name, policy in other.gauge_policies.items():
            self.gauge_policies.setdefault(name, policy)
        for name, value in other.gauges.items():
            self._merge_gauge(name, value, other, rank)
        return self

    def _merge_gauge(self, name, value, other, rank):
        policy = self.gauge_policies.get(name)
        if policy is None or policy == "last":
            incoming = other._gauge_ranks.get(name, rank)
            if policy is None and incoming is None:
                self.gauges[name] = value        # legacy overwrite
                return
            if incoming is None:
                incoming = -1
            current = self._gauge_ranks.get(name)
            if name not in self.gauges or current is None \
                    or incoming >= current:
                self.gauges[name] = value
                self._gauge_ranks[name] = incoming
        elif policy == "max":
            if name not in self.gauges or value > self.gauges[name]:
                self.gauges[name] = value
        elif policy == "min":
            if name not in self.gauges or value < self.gauges[name]:
                self.gauges[name] = value
        elif policy == "sum":
            self.gauges[name] = self.gauges.get(name, 0) + value
        elif policy == "mean":
            state = self._gauge_state.get(name)
            if state is None:
                state = self._gauge_state[name] = (
                    [float(self.gauges[name]), 1] if name in self.gauges
                    else [0.0, 0])
            incoming = other._gauge_state.get(name, [float(value), 1])
            state[0] += incoming[0]
            state[1] += incoming[1]
            self.gauges[name] = state[0] / state[1] if state[1] else 0.0

    def snapshot(self):
        """A plain-dict view, suitable for ``json.dump``."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "gauge_policies": dict(self.gauge_policies),
            "gauge_ranks": dict(self._gauge_ranks),
            "gauge_state": {name: list(state)
                            for name, state in self._gauge_state.items()},
            "timers": {name: {"seconds": total, "entries": entries}
                       for name, (total, entries) in self.timers.items()},
            "histograms": {name: histogram.snapshot()
                           for name, histogram
                           in sorted(self.histograms.items())},
            "rates": {name: list(pair)
                      for name, pair in self.rates.items()},
        }

    def restore(self, snapshot):
        """Replace this registry's contents from a :meth:`snapshot` dict.

        Used by checkpoint resume to rewind the registry to exactly the
        state recorded at a committed unit-of-work boundary.
        """
        self.counters = dict(snapshot.get("counters") or {})
        self.gauges = dict(snapshot.get("gauges") or {})
        self.gauge_policies = dict(snapshot.get("gauge_policies") or {})
        self._gauge_ranks = dict(snapshot.get("gauge_ranks") or {})
        self._gauge_state = {name: list(state)
                             for name, state
                             in (snapshot.get("gauge_state") or {}).items()}
        self.timers = {name: [entry["seconds"], entry["entries"]]
                       for name, entry
                       in (snapshot.get("timers") or {}).items()}
        self.histograms = {name: LogHistogram.restore(data)
                           for name, data
                           in (snapshot.get("histograms") or {}).items()}
        rates = snapshot.get("rates")
        if rates is not None:
            self.rates = {name: list(pair) for name, pair in rates.items()}
        return self

    def format_report(self, title="perf"):
        """A human-readable multi-line summary."""
        lines = ["[%s]" % title]
        for name in sorted(self.counters):
            lines.append("  %-28s %d" % (name, self.counters[name]))
        for name in sorted(self.gauges):
            lines.append("  %-28s %.2f" % (name, self.gauges[name]))
        for name in sorted(self.timers):
            total, entries = self.timers[name]
            lines.append("  %-28s %.3fs (%d entries)"
                         % (name, total, entries))
        for name in sorted(self.histograms):
            lines.append("  %-28s %s"
                         % (name, self.histograms[name].format_summary()))
        for name in sorted(self.rates):
            counter_name, timer_name = self.rates[name]
            if self.counters.get(counter_name) \
                    and self.seconds(timer_name) > 0:
                lines.append("  %-28s %.0f"
                             % (name, self.rate(counter_name, timer_name)))
        return "\n".join(lines)

    def __repr__(self):
        return "PerfRegistry(%d counters, %d timers, %d histograms)" % (
            len(self.counters), len(self.timers), len(self.histograms))
