"""Authoritative DNS: zones, name servers, and the iterative resolution
engine honest recursive resolvers use.

The paper's threat model defines a "correct" resolution as one that strictly
follows the DNS hierarchy: root, then TLD, then the domain's authoritative
name servers.  This package provides that hierarchy for the simulated
Internet, so honest resolvers produce ground-truth answers and manipulated
resolvers can be detected against them.
"""

from repro.authdns.hierarchy import DnsHierarchy, HierarchyBuilder
from repro.authdns.resolution import IterativeResolver, ResolutionError
from repro.authdns.server import AuthNsServer
from repro.authdns.zone import Zone, ZoneLookupResult

__all__ = [
    "AuthNsServer",
    "DnsHierarchy",
    "HierarchyBuilder",
    "IterativeResolver",
    "ResolutionError",
    "Zone",
    "ZoneLookupResult",
]
