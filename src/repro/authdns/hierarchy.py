"""Builder for a complete DNS hierarchy: root, TLDs, and domain zones."""

from repro.authdns.server import AuthNsServer
from repro.authdns.zone import Zone, ZoneLookupResult
from repro.dnswire.constants import QTYPE_PTR
from repro.dnswire.name import normalize_name
from repro.dnswire.records import ResourceRecord
from repro.netsim.address import reverse_pointer_name


class RdnsZone(Zone):
    """A dynamic ``in-addr.arpa`` zone backed by the rDNS registry, so PTR
    data follows churned addresses without rebuilding zone files."""

    def __init__(self, rdns_registry):
        super().__init__("in-addr.arpa")
        self._registry = rdns_registry

    def lookup(self, qname, qtype):
        if qtype == QTYPE_PTR:
            name = normalize_name(qname)
            if name.endswith(".in-addr.arpa"):
                octets = name[:-len(".in-addr.arpa")].split(".")
                if len(octets) == 4:
                    ip = ".".join(reversed(octets))
                    target = self._registry.ptr(ip)
                    if target is not None:
                        return ZoneLookupResult(
                            ZoneLookupResult.ANSWER,
                            records=[ResourceRecord.ptr(qname, target)])
            return ZoneLookupResult(ZoneLookupResult.NXDOMAIN,
                                    authority=[self.soa])
        return super().lookup(qname, qtype)


class DnsHierarchy:
    """The assembled hierarchy: root servers and every zone built so far."""

    def __init__(self, root_ips):
        self.root_ips = list(root_ips)
        self.zones = {}     # origin -> Zone
        self.servers = {}   # origin -> AuthNsServer

    def zone(self, origin):
        return self.zones.get(normalize_name(origin))


class HierarchyBuilder:
    """Creates AuthNS nodes and wires delegations root -> TLD -> domain.

    Server addresses come from a dedicated infrastructure prefix so they
    are disjoint from resolver/content address space.
    """

    def __init__(self, network, infra_prefix, rdns_registry=None):
        self.network = network
        self.infra_prefix = infra_prefix
        self.rdns_registry = rdns_registry
        self._next_ip_index = 1
        self._root_zone = Zone("", soa_mname="a.root-servers.sim")
        root_ip = self._allocate_ip()
        self._root_server = AuthNsServer(root_ip, [self._root_zone])
        network.register(self._root_server)
        self.hierarchy = DnsHierarchy([root_ip])
        self.hierarchy.zones[""] = self._root_zone
        self.hierarchy.servers[""] = self._root_server
        if rdns_registry is not None:
            self._install_rdns_zone()

    def _allocate_ip(self):
        ip = self.infra_prefix.address_at(self._next_ip_index)
        self._next_ip_index += 1
        if self._next_ip_index >= self.infra_prefix.num_addresses - 1:
            raise RuntimeError("infrastructure prefix exhausted")
        return ip

    def _install_rdns_zone(self):
        # arpa TLD, then a registry-backed in-addr.arpa zone beneath it.
        arpa_zone = self.ensure_tld("arpa")
        rdns_zone = RdnsZone(self.rdns_registry)
        server_ip = self._allocate_ip()
        server = AuthNsServer(server_ip, [rdns_zone])
        self.network.register(server)
        arpa_zone.delegate("in-addr.arpa",
                           {"ns1.in-addr.arpa": server_ip})
        self.hierarchy.zones["in-addr.arpa"] = rdns_zone
        self.hierarchy.servers["in-addr.arpa"] = server

    def ensure_tld(self, tld):
        """Create (or fetch) the zone for a top-level domain."""
        tld = normalize_name(tld)
        existing = self.hierarchy.zones.get(tld)
        if existing is not None:
            return existing
        zone = Zone(tld)
        server_ip = self._allocate_ip()
        server = AuthNsServer(server_ip, [zone])
        self.network.register(server)
        ns_host = "ns1.nic.%s" % tld
        self._root_zone.delegate(tld, {ns_host: server_ip})
        self.hierarchy.zones[tld] = zone
        self.hierarchy.servers[tld] = server
        return zone

    def register_domain(self, domain, a_records=None, wildcard_address=None,
                        mx_hosts=None):
        """Create a domain zone, its AuthNS, and the TLD delegation.

        ``a_records`` maps fully-qualified names (the apex or subdomains)
        to lists of IPv4 addresses.  ``wildcard_address`` installs
        ``*.domain`` (used by the scanner's measurement domain).
        ``mx_hosts`` is a list of (preference, hostname) pairs.
        Returns the new :class:`Zone` for further customisation.
        """
        domain = normalize_name(domain)
        labels = domain.split(".")
        if len(labels) < 2:
            raise ValueError("domain %r has no TLD" % domain)
        tld = labels[-1]
        tld_zone = self.ensure_tld(tld)
        zone = Zone(domain)
        server_ip = self._allocate_ip()
        server = AuthNsServer(server_ip, [zone])
        self.network.register(server)
        ns_host = "ns1.%s" % domain
        tld_zone.delegate(domain, {ns_host: server_ip})
        zone.add_a(ns_host, server_ip, ttl=3600)
        for name, addresses in (a_records or {}).items():
            for address in addresses:
                zone.add_a(name, address)
        if wildcard_address is not None:
            zone.add_a("*.%s" % domain, wildcard_address)
        for preference, hostname in (mx_hosts or []):
            zone.add_mx(domain, preference, hostname)
        self.hierarchy.zones[domain] = zone
        self.hierarchy.servers[domain] = server
        return zone
