"""The iterative resolution engine: root -> TLD -> domain AuthNS.

This is the "correct" resolution procedure the paper's threat model defines.
Honest recursive resolvers embed one of these engines; the trusted
resolvers used by the prefilter do too.
"""

from repro.dnswire.constants import (
    QTYPE_A,
    QTYPE_CNAME,
    QTYPE_NS,
    RCODE_NOERROR,
    RCODE_NXDOMAIN,
    RCODE_SERVFAIL,
)
from repro.dnswire.message import Message
from repro.dnswire.name import normalize_name
from repro.netsim.network import UdpPacket

MAX_REFERRALS = 24
MAX_CNAME_CHAIN = 8


class ResolutionError(Exception):
    """Resolution could not complete (no servers reachable, loop, …)."""


class ResolutionResult:
    """Final outcome of an iterative resolution."""

    def __init__(self, rcode, records, authority=(), queries_sent=0):
        self.rcode = rcode
        self.records = list(records)
        self.authority = list(authority)
        self.queries_sent = queries_sent

    def a_addresses(self):
        return [record.data.address for record in self.records
                if record.rtype == QTYPE_A]

    def min_ttl(self, default=300):
        ttls = [record.ttl for record in self.records]
        return min(ttls) if ttls else default


class IterativeResolver:
    """Resolves names by walking the hierarchy from the root servers."""

    def __init__(self, root_server_ips, source_ip, txid_rng=None):
        if not root_server_ips:
            raise ValueError("need at least one root server")
        self.root_server_ips = list(root_server_ips)
        self.source_ip = source_ip
        self._txid = 1

    def _next_txid(self):
        self._txid = (self._txid + 1) & 0xFFFF
        return self._txid

    def _ask(self, network, server_ip, name, qtype):
        query = Message.query(name, qtype=qtype, txid=self._next_txid(),
                              rd=False)
        packet = UdpPacket(self.source_ip, 40000 + (self._txid % 1000),
                           server_ip, 53, query.to_wire())
        for response in network.send_udp(packet):
            try:
                message = Message.from_wire(response.packet.payload)
            except ValueError:
                continue
            if message.header.txid == query.header.txid and message.header.qr:
                return message
        return None

    def resolve(self, network, name, qtype=QTYPE_A):
        """Iteratively resolve ``name``; returns a :class:`ResolutionResult`.

        Follows referrals from the root and chases CNAME chains across
        zones, exactly as a hierarchy-respecting recursive resolver would.
        """
        answers = []
        queries_sent = 0
        current_name = name
        for __ in range(MAX_CNAME_CHAIN):
            servers = list(self.root_server_ips)
            rcode = None
            terminal = None
            for __ in range(MAX_REFERRALS):
                response = None
                for server_ip in servers:
                    queries_sent += 1
                    response = self._ask(network, server_ip,
                                         current_name, qtype)
                    if response is not None:
                        break
                if response is None:
                    return ResolutionResult(RCODE_SERVFAIL, answers,
                                            queries_sent=queries_sent)
                if response.rcode == RCODE_NXDOMAIN:
                    return ResolutionResult(
                        RCODE_NXDOMAIN, answers,
                        authority=response.authorities,
                        queries_sent=queries_sent)
                if response.rcode != RCODE_NOERROR:
                    return ResolutionResult(response.rcode, answers,
                                            queries_sent=queries_sent)
                direct = [rr for rr in response.answers
                          if rr.rtype == qtype
                          and normalize_name(rr.name)
                          == normalize_name(current_name)]
                cnames = [rr for rr in response.answers
                          if rr.rtype == QTYPE_CNAME]
                if direct:
                    answers.extend(response.answers)
                    return ResolutionResult(RCODE_NOERROR, answers,
                                            queries_sent=queries_sent)
                if cnames and qtype != QTYPE_CNAME:
                    answers.extend(cnames)
                    # Did the same response carry the final answer too?
                    tail = [rr for rr in response.answers
                            if rr.rtype == qtype]
                    if tail:
                        answers.extend(tail)
                        return ResolutionResult(RCODE_NOERROR, answers,
                                                queries_sent=queries_sent)
                    current_name = cnames[-1].data.name
                    terminal = "cname"
                    break
                referral_ns = [rr for rr in response.authorities
                               if rr.rtype == QTYPE_NS]
                if referral_ns:
                    glue = {normalize_name(rr.name): rr.data.address
                            for rr in response.additionals
                            if rr.rtype == QTYPE_A}
                    next_servers = []
                    for ns_record in referral_ns:
                        address = glue.get(
                            normalize_name(ns_record.data.name))
                        if address is not None:
                            next_servers.append(address)
                    if not next_servers:
                        return ResolutionResult(RCODE_SERVFAIL, answers,
                                                queries_sent=queries_sent)
                    servers = next_servers
                    continue
                # NOERROR with no answer and no referral: NODATA.
                return ResolutionResult(RCODE_NOERROR, answers,
                                        authority=response.authorities,
                                        queries_sent=queries_sent)
            if terminal != "cname":
                return ResolutionResult(RCODE_SERVFAIL, answers,
                                        queries_sent=queries_sent)
        raise ResolutionError("CNAME chain too long for %r" % name)
