"""Simulated DNSSEC: zone signing and client validation strategies (§5).

The paper's discussion section argues that DNSSEC alone does not defeat
the Great Firewall's injected responses: a resolver typically takes the
FIRST response matching an open transaction, and the forged packet wins
the race.  Only a client that *waits* for a correctly signed response —
dropping unsigned and badly signed ones — is protected, and it can only
do that when it already knows the domain deploys DNSSEC (otherwise an
attacker simply strips the signatures).

This module makes that argument executable.  Signatures are simulated:
an RRSIG-like TXT-encoded record carries a keyed digest over the answer
rrset; validators share the zone's public key out of band (the trust
anchor).  An on-path injector cannot produce the digest without the key.

Strategies:

* ``STRATEGY_FIRST`` — classic resolver behaviour: first matching
  response wins (vulnerable).
* ``STRATEGY_WAIT_SIGNED`` — collect responses, accept the first one
  carrying a valid signature (protected — but only for signed zones the
  client knows about).
"""

from repro.dnswire.constants import QTYPE_A
from repro.dnswire.message import Message
from repro.dnswire.name import normalize_name
from repro.dnswire.records import ResourceRecord
from repro.netsim.network import UdpPacket
from repro.util import stable_hash

SIG_LABEL = "_repro-rrsig"

STRATEGY_FIRST = "first"
STRATEGY_WAIT_SIGNED = "wait-signed"


def rrset_digest(key, name, addresses):
    """The keyed digest a signer embeds and a validator recomputes."""
    return "%08x" % stable_hash(key, normalize_name(name),
                                *sorted(addresses))


class ZoneSigner:
    """Signs A answers of a zone with a per-zone key."""

    def __init__(self, key):
        self.key = key

    def sign_answers(self, message):
        """Append a signature record covering the A rrset of the answer
        section; no-op when there is nothing to sign."""
        by_name = {}
        for record in message.answers:
            if record.rtype == QTYPE_A:
                by_name.setdefault(normalize_name(record.name),
                                   []).append(record.data.address)
        for name, addresses in by_name.items():
            digest = rrset_digest(self.key, name, addresses)
            message.answers.append(ResourceRecord.txt(
                "%s.%s" % (SIG_LABEL, name), ["sig=%s" % digest],
                ttl=300))
        return message


class DnssecValidator:
    """Validates simulated signatures against trust anchors.

    ``trust_anchors`` maps zone apex -> key; a name is covered when any
    anchored apex is one of its suffixes.
    """

    def __init__(self, trust_anchors):
        self.trust_anchors = {normalize_name(apex): key
                              for apex, key in trust_anchors.items()}

    def anchor_for(self, name):
        labels = normalize_name(name).split(".")
        for index in range(len(labels)):
            apex = ".".join(labels[index:])
            if apex in self.trust_anchors:
                return apex
        return None

    def expects_signature(self, name):
        """True when the client knows this domain deploys DNSSEC —
        the prior knowledge §5 calls out as the hard prerequisite."""
        return self.anchor_for(name) is not None

    def validate(self, message, qname):
        """True when the message's A answers carry a valid signature."""
        apex = self.anchor_for(qname)
        if apex is None:
            return False
        key = self.trust_anchors[apex]
        name = normalize_name(qname)
        addresses = [record.data.address for record in message.answers
                     if record.rtype == QTYPE_A
                     and normalize_name(record.name) == name]
        if not addresses:
            return False
        expected = rrset_digest(key, name, addresses)
        sig_name = normalize_name("%s.%s" % (SIG_LABEL, name))
        for record in message.answers:
            if record.rtype == 16 and \
                    normalize_name(record.name) == sig_name:
                if record.data.text == "sig=%s" % expected:
                    return True
        return False


class ValidatingClient:
    """A stub client applying a response-acceptance strategy.

    Sends an A query to a resolver (or authoritative server) and picks
    among ALL arriving responses — including on-path injections — per
    the configured strategy.
    """

    def __init__(self, network, source_ip, validator=None,
                 strategy=STRATEGY_FIRST, source_port=31800):
        self.network = network
        self.source_ip = source_ip
        self.validator = validator
        self.strategy = strategy
        self.source_port = source_port
        self._txid = 0

    def query(self, server_ip, name):
        """Resolve ``name`` via ``server_ip``; returns (addresses,
        authenticated) where authenticated reports signature validity."""
        self._txid = (self._txid + 1) & 0xFFFF
        query = Message.query(name, txid=self._txid)
        packet = UdpPacket(self.source_ip, self.source_port, server_ip,
                           53, query.to_wire())
        messages = []
        for response in self.network.send_udp(packet):
            try:
                message = Message.from_wire(response.packet.payload)
            except ValueError:
                continue
            if message.header.qr and message.header.txid == self._txid:
                messages.append(message)
        if not messages:
            return [], False
        if self.strategy == STRATEGY_WAIT_SIGNED and \
                self.validator is not None and \
                self.validator.expects_signature(name):
            for message in messages:  # arrival order: wait for a valid one
                if self.validator.validate(message, name):
                    return message.a_addresses(), True
            return [], False  # nothing validly signed: resolution fails
        first = messages[0]
        authenticated = bool(
            self.validator is not None
            and self.validator.validate(first, name))
        return first.a_addresses(), authenticated
