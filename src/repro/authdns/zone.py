"""Zone data and authoritative lookup semantics."""

from repro.dnswire.constants import QTYPE_CNAME, QTYPE_NS, QTYPE_SOA
from repro.dnswire.name import normalize_name
from repro.dnswire.records import ResourceRecord


class ZoneLookupResult:
    """Outcome of an authoritative lookup inside one zone."""

    ANSWER = "answer"          # records found at the name
    CNAME = "cname"            # a CNAME redirects the query
    DELEGATION = "delegation"  # the name lives below a zone cut
    NXDOMAIN = "nxdomain"      # the name does not exist in the zone
    NODATA = "nodata"          # the name exists but has no such rtype

    def __init__(self, status, records=(), authority=(), additional=()):
        self.status = status
        self.records = list(records)
        self.authority = list(authority)
        self.additional = list(additional)

    def __repr__(self):
        return "ZoneLookupResult(%s, %d records)" % (
            self.status, len(self.records))


class Zone:
    """One DNS zone: an origin, its records, and its delegations.

    Supports exact names, wildcards (``*.example.edu`` — used by the
    scanner's measurement domain, whose queries carry random prefixes), and
    zone cuts with glue.
    """

    def __init__(self, origin, soa_mname=None, soa_rname=None):
        self.origin = normalize_name(origin)
        self._records = {}      # (name, rtype) -> [ResourceRecord]
        self._names = set()     # all names with any record
        self._cuts = {}         # delegated child zone apex -> [NS records]
        self._glue = {}         # ns hostname -> [A records]
        mname = soa_mname or ("ns1.%s" % self.origin if self.origin
                              else "ns1.root")
        rname = soa_rname or ("hostmaster.%s" % self.origin
                              if self.origin else "hostmaster.root")
        self.soa = ResourceRecord.soa(self.origin or ".", mname, rname)
        self.signer = None  # set via sign_with() for DNSSEC-enabled zones

    def sign_with(self, key):
        """Enable (simulated) DNSSEC: answers from this zone carry a
        keyed signature record (see :mod:`repro.authdns.dnssec`)."""
        from repro.authdns.dnssec import ZoneSigner
        self.signer = ZoneSigner(key)
        return self.signer

    # -- building ----------------------------------------------------------

    def _check_in_zone(self, name):
        if self.origin and not (name == self.origin
                                or name.endswith("." + self.origin)):
            raise ValueError("%r is not inside zone %r" % (name, self.origin))

    def add(self, record):
        """Add a record owned by this zone."""
        name = normalize_name(record.name)
        self._check_in_zone(name.lstrip("*."))
        self._records.setdefault((name, record.rtype), []).append(record)
        self._names.add(name)
        return record

    def add_a(self, name, address, ttl=300):
        return self.add(ResourceRecord.a(name, address, ttl=ttl))

    def add_cname(self, name, target, ttl=300):
        return self.add(ResourceRecord.cname(name, target, ttl=ttl))

    def add_mx(self, name, preference, exchange, ttl=3600):
        return self.add(ResourceRecord.mx(name, preference, exchange, ttl=ttl))

    def add_ptr(self, name, target, ttl=3600):
        return self.add(ResourceRecord.ptr(name, target, ttl=ttl))

    def delegate(self, child_apex, ns_hosts):
        """Create a zone cut: ``child_apex`` is served by ``ns_hosts``.

        ``ns_hosts`` maps NS hostnames to glue A addresses (address may be
        ``None`` when the NS host is out-of-bailiwick and needs no glue).
        """
        child = normalize_name(child_apex)
        self._check_in_zone(child)
        ns_records = []
        for hostname, address in ns_hosts.items():
            ns_records.append(ResourceRecord.ns(child, hostname))
            if address is not None:
                self._glue.setdefault(normalize_name(hostname), []).append(
                    ResourceRecord.a(hostname, address, ttl=3600))
        self._cuts[child] = ns_records

    # -- lookup ------------------------------------------------------------

    def _delegation_for(self, name):
        """The deepest zone cut at/above ``name`` (below the origin)."""
        labels = name.split(".")
        for i in range(len(labels)):
            candidate = ".".join(labels[i:])
            if candidate == self.origin:
                return None
            if candidate in self._cuts:
                return candidate
        return None

    def _glue_for(self, ns_records):
        additional = []
        for record in ns_records:
            additional.extend(self._glue.get(
                normalize_name(record.data.name), []))
        return additional

    def lookup(self, qname, qtype):
        """Authoritative lookup; returns a :class:`ZoneLookupResult`."""
        name = normalize_name(qname)
        cut = self._delegation_for(name)
        if cut is not None:
            ns_records = self._cuts[cut]
            return ZoneLookupResult(
                ZoneLookupResult.DELEGATION, authority=ns_records,
                additional=self._glue_for(ns_records))
        exact = self._records.get((name, qtype))
        if exact:
            return ZoneLookupResult(ZoneLookupResult.ANSWER, records=exact)
        cname = self._records.get((name, QTYPE_CNAME))
        if cname and qtype != QTYPE_CNAME:
            return ZoneLookupResult(ZoneLookupResult.CNAME, records=cname)
        if name in self._names:
            return ZoneLookupResult(
                ZoneLookupResult.NODATA, authority=[self.soa])
        # Wildcard synthesis: deepest *.suffix whose suffix covers the name.
        labels = name.split(".")
        for i in range(1, len(labels)):
            wildcard = "*." + ".".join(labels[i:])
            records = self._records.get((wildcard, qtype))
            if records:
                synthesized = [
                    ResourceRecord(qname, r.rtype, r.rclass, r.ttl, r.data)
                    for r in records]
                return ZoneLookupResult(
                    ZoneLookupResult.ANSWER, records=synthesized)
            if wildcard in self._names:
                return ZoneLookupResult(
                    ZoneLookupResult.NODATA, authority=[self.soa])
        return ZoneLookupResult(ZoneLookupResult.NXDOMAIN,
                                authority=[self.soa])

    def covers(self, qname):
        """True when this zone's origin is a suffix of ``qname``."""
        name = normalize_name(qname)
        if not self.origin:
            return True  # root zone covers everything
        return name == self.origin or name.endswith("." + self.origin)

    def __repr__(self):
        return "Zone(%r, %d rrsets, %d cuts)" % (
            self.origin or ".", len(self._records), len(self._cuts))
