"""Authoritative name server nodes."""

from repro.dnswire.constants import (
    CLASS_IN,
    RCODE_NOERROR,
    RCODE_NXDOMAIN,
    RCODE_REFUSED,
)
from repro.dnswire.message import Message
from repro.dnswire.name import normalize_name
from repro.authdns.zone import ZoneLookupResult
from repro.netsim.network import Node


class AuthNsServer(Node):
    """A name server authoritative for one or more zones.

    Answers only for names inside its zones (an AuthNS "does not need to
    process lookup requests for domains other than in its zone" — §2.1);
    everything else is REFUSED, never recursed.
    """

    def __init__(self, ip, zones=()):
        super().__init__(ip)
        self.zones = list(zones)
        self.query_count = 0

    def add_zone(self, zone):
        self.zones.append(zone)

    def _zone_for(self, qname):
        """Deepest zone on this server covering ``qname``."""
        best = None
        name = normalize_name(qname)
        for zone in self.zones:
            if zone.covers(name):
                if best is None or len(zone.origin) > len(best.origin):
                    best = zone
        return best

    def handle_udp(self, packet, network):
        if packet.dst_port != 53:
            return None
        try:
            query = Message.from_wire(packet.payload)
        except ValueError:
            return None
        if query.header.qr or query.question is None:
            return None
        self.query_count += 1
        return self.answer(query).to_wire()

    def answer(self, query):
        """Authoritatively answer a parsed query message."""
        question = query.question
        if question.qclass != CLASS_IN:
            return query.make_response(rcode=RCODE_REFUSED, ra=False)
        zone = self._zone_for(question.name)
        if zone is None:
            return query.make_response(rcode=RCODE_REFUSED, ra=False)
        result = zone.lookup(question.name, question.qtype)
        response = query.make_response(aa=True, ra=False)
        if result.status == ZoneLookupResult.ANSWER:
            response.answers.extend(result.records)
            if zone.signer is not None:
                zone.signer.sign_answers(response)
        elif result.status == ZoneLookupResult.CNAME:
            response.answers.extend(result.records)
            # Chase the CNAME while it stays inside our zones.
            target = result.records[0].data.name
            seen = {normalize_name(question.name)}
            while normalize_name(target) not in seen:
                seen.add(normalize_name(target))
                target_zone = self._zone_for(target)
                if target_zone is None:
                    break
                chased = target_zone.lookup(target, question.qtype)
                if chased.status == ZoneLookupResult.ANSWER:
                    response.answers.extend(chased.records)
                    break
                if chased.status == ZoneLookupResult.CNAME:
                    response.answers.extend(chased.records)
                    target = chased.records[0].data.name
                    continue
                break
        elif result.status == ZoneLookupResult.DELEGATION:
            response.header.aa = False
            response.authorities.extend(result.authority)
            response.additionals.extend(result.additional)
        elif result.status == ZoneLookupResult.NXDOMAIN:
            response.header.rcode = RCODE_NXDOMAIN
            response.authorities.extend(result.authority)
        else:  # NODATA
            response.header.rcode = RCODE_NOERROR
            response.authorities.extend(result.authority)
        return response
