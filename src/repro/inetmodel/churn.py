"""IP address churn: DHCP-style lease expiry and address reassignment.

Figure 2 of the paper shows 52.2% of resolvers changing address within a
week and >40% within a day, driven by short DHCP leases on consumer
broadband links.  Here every dynamic host has a lease inside its ISP's
pool prefix; when the simulated clock passes the expiry the host rebinds
to a fresh address in the pool, and its (dynamic-looking) rDNS record
follows it.  Hosts may also be permanently decommissioned (``offline_after``),
which is what drives the population decline in Figure 1.
"""

import random

from repro.inetmodel.rdns import dynamic_pool_name


class LeasedHost:
    """A network node living on a (possibly dynamic) leased address.

    Slotted: the lazy population keeps one of these per pool member
    even when the member itself is a 17-byte derivation record, so at
    a million members the per-host ``__dict__`` would be the single
    biggest remaining O(population) allocation (~100 B/host saved).
    """

    __slots__ = ("node", "pool", "lease_duration", "offline_after",
                 "online_after", "isp_domain", "expires_at", "online")

    def __init__(self, node, pool, lease_duration=None, offline_after=None,
                 isp_domain=None, online_after=None):
        self.node = node
        self.pool = pool
        self.lease_duration = lease_duration  # None => static address
        self.offline_after = offline_after    # None => never decommissioned
        self.online_after = online_after      # None => online from the start
        self.isp_domain = isp_domain
        self.expires_at = None
        self.online = online_after is None

    @property
    def dynamic(self):
        return self.lease_duration is not None

    def __repr__(self):
        return "LeasedHost(%r, dynamic=%s, online=%s)" % (
            self.node.ip, self.dynamic, self.online)


class ChurnModel:
    """Drives lease expiry, rebinding, and decommissioning for a host set."""

    def __init__(self, network, rdns=None, seed=0):
        self.network = network
        self.rdns = rdns
        self._rng = random.Random(seed)
        self._hosts = []
        self._pool_used = {}  # pool.cidr -> set of used offsets
        self.rebind_count = 0
        self.offline_count = 0

    def add(self, host):
        """Track a host; schedules its first lease expiry."""
        self._hosts.append(host)
        used = self._pool_used.setdefault(host.pool.cidr, set())
        from repro.netsim.address import ip_to_int
        used.add(ip_to_int(host.node.ip) - host.pool.base)
        if host.dynamic:
            host.expires_at = (self.network.clock.now
                               + self._jittered(host.lease_duration))

    def allocate_address(self, pool):
        """Reserve and return a free address inside ``pool``."""
        return pool.address_at(self._free_offset(pool))

    def hosts(self):
        return list(self._hosts)

    def _jittered(self, duration):
        """Lease lengths vary around the nominal duration (0.5x - 1.5x)."""
        return duration * (0.5 + self._rng.random())

    def _free_offset(self, pool):
        used = self._pool_used.setdefault(pool.cidr, set())
        if len(used) >= pool.num_addresses - 2:
            raise RuntimeError("pool %s exhausted" % pool.cidr)
        while True:
            # Skip network (0) and broadcast (last) addresses.
            offset = self._rng.randrange(1, pool.num_addresses - 1)
            if offset not in used:
                used.add(offset)
                return offset

    def _release(self, host):
        from repro.netsim.address import ip_to_int
        used = self._pool_used.get(host.pool.cidr)
        if used is not None:
            used.discard(ip_to_int(host.node.ip) - host.pool.base)

    def rebind(self, host):
        """Move a host to a fresh address within its pool."""
        old_ip = host.node.ip
        self._release(host)
        new_ip = host.pool.address_at(self._free_offset(host.pool))
        self.network.rebind(host.node, new_ip)
        if self.rdns is not None:
            self.rdns.remove(old_ip)
            if host.isp_domain:
                self.rdns.set_ptr(
                    new_ip, dynamic_pool_name(new_ip, host.isp_domain))
        host.expires_at = (self.network.clock.now
                           + self._jittered(host.lease_duration))
        self.rebind_count += 1

    def take_offline(self, host):
        """Permanently decommission a host."""
        self._release(host)
        self.network.unregister(host.node.ip)
        if self.rdns is not None:
            self.rdns.remove(host.node.ip)
        host.online = False
        self.offline_count += 1

    def bring_online(self, host):
        """Activate a host whose ``online_after`` has arrived."""
        self.network.register(host.node)
        if self.rdns is not None and host.isp_domain:
            if host.dynamic:
                self.rdns.set_ptr(host.node.ip, dynamic_pool_name(
                    host.node.ip, host.isp_domain))
        host.online = True
        host.online_after = None
        if host.dynamic:
            host.expires_at = (self.network.clock.now
                               + self._jittered(host.lease_duration))

    def pending_churn(self, horizon=0.0):
        """Forecast: pool cidr -> count of lifecycle events due soon.

        An event is "due" when :meth:`step` called within ``horizon``
        seconds of the current clock would apply it: a dynamic lease
        expiring (rebind), a decommission (``offline_after``), or a
        scheduled arrival (``online_after``).  Pure read — no RNG draw,
        no state change — so a delta-scanning campaign can ask "which
        pools will move this week?" before advancing the model, and a
        resumed campaign asking again gets the identical answer.
        """
        deadline = self.network.clock.now + horizon
        pending = {}
        for host in self._hosts:
            if not host.online:
                due = (host.online_after is not None
                       and host.online_after <= deadline)
            elif host.offline_after is not None \
                    and host.offline_after <= deadline:
                due = True
            else:
                due = (host.dynamic and host.expires_at is not None
                       and host.expires_at <= deadline)
            if due:
                cidr = host.pool.cidr
                pending[cidr] = pending.get(cidr, 0) + 1
        return pending

    def step(self):
        """Apply all expiries/decommissions due at the current clock time."""
        now = self.network.clock.now
        for host in self._hosts:
            if not host.online:
                if host.online_after is not None and now >= host.online_after:
                    self.bring_online(host)
                continue
            if host.offline_after is not None and now >= host.offline_after:
                self.take_offline(host)
                continue
            if host.dynamic:
                # A long step may span several leases; one rebind per step
                # is enough since intermediate addresses were never observed.
                if host.expires_at is not None and now >= host.expires_at:
                    self.rebind(host)

    def online_hosts(self):
        return [host for host in self._hosts if host.online]
