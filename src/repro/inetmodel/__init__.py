"""Models of Internet metadata: AS/RIR registries, GeoIP, rDNS, IP churn.

These substitute for the external data sources the paper used (MaxMind
GeoIP, BGP/AS data, live rDNS): a deterministic registry maps every
allocated prefix to an autonomous system, country, and Regional Internet
Registry, and an rDNS registry provides PTR names — including the dynamic
broadband naming patterns (``dynamic``, ``dialup``, …) the churn analysis
matches against (§2.5).
"""

from repro.inetmodel.allocation import PrefixAllocator
from repro.inetmodel.asdb import (
    AsRegistry,
    AutonomousSystem,
    COUNTRY_TO_RIR,
    rir_for_country,
)
from repro.inetmodel.churn import ChurnModel, LeasedHost
from repro.inetmodel.geoip import GeoIpDatabase
from repro.inetmodel.rdns import (
    DYNAMIC_TOKENS,
    RdnsRegistry,
    dynamic_pool_name,
    has_dynamic_token,
    static_name,
)

__all__ = [
    "AsRegistry",
    "AutonomousSystem",
    "COUNTRY_TO_RIR",
    "ChurnModel",
    "DYNAMIC_TOKENS",
    "GeoIpDatabase",
    "LeasedHost",
    "PrefixAllocator",
    "RdnsRegistry",
    "dynamic_pool_name",
    "has_dynamic_token",
    "rir_for_country",
    "static_name",
]
