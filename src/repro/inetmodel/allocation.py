"""Carving the simulated IPv4 space into non-overlapping prefixes.

The allocator hands out aligned CIDR blocks from a configurable super-range,
skipping reserved space, so every autonomous system in the scenario gets
disjoint address space and prefix lookup can use a sorted table.
"""

from repro.netsim.address import Ipv4Network, int_to_ip, ip_to_int, is_reserved


class PrefixAllocator:
    """Sequentially allocates aligned, non-overlapping CIDR blocks."""

    def __init__(self, start="1.0.0.0", end="223.255.255.255"):
        self._cursor = ip_to_int(start)
        self._end = ip_to_int(end)
        self.allocated = []

    def allocate(self, prefix_length):
        """Allocate the next free block of the given prefix length."""
        size = 1 << (32 - prefix_length)
        cursor = (self._cursor + size - 1) // size * size  # align
        while True:
            if cursor + size - 1 > self._end:
                raise RuntimeError("address space exhausted")
            block = Ipv4Network("%s/%d" % (int_to_ip(cursor), prefix_length))
            # Skip blocks that collide with reserved ranges.
            if is_reserved(block.base) or is_reserved(block.base + size - 1):
                cursor += size
                continue
            self._cursor = cursor + size
            self.allocated.append(block)
            return block

    def allocate_many(self, prefix_length, count):
        return [self.allocate(prefix_length) for __ in range(count)]
