"""Autonomous systems, their prefixes, and Regional Internet Registries."""

import bisect

# ISO country code -> RIR, for every country appearing in the scenario.
# (Roughly: ARIN = North America, LACNIC = Latin America & Caribbean,
# RIPE = Europe/Middle East/parts of Central Asia, APNIC = Asia-Pacific,
# AFRINIC = Africa.)
COUNTRY_TO_RIR = {
    "US": "ARIN", "CA": "ARIN",
    "MX": "LACNIC", "CO": "LACNIC", "AR": "LACNIC", "BR": "LACNIC",
    "CL": "LACNIC", "PE": "LACNIC", "VE": "LACNIC", "EC": "LACNIC",
    "DE": "RIPE", "GB": "RIPE", "FR": "RIPE", "IT": "RIPE", "TR": "RIPE",
    "RU": "RIPE", "PL": "RIPE", "NL": "RIPE", "ES": "RIPE", "UA": "RIPE",
    "GR": "RIPE", "BE": "RIPE", "EE": "RIPE", "IR": "RIPE", "LB": "RIPE",
    "SA": "RIPE", "CH": "RIPE", "SE": "RIPE", "RO": "RIPE", "CZ": "RIPE",
    "CN": "APNIC", "VN": "APNIC", "IN": "APNIC", "TH": "APNIC",
    "TW": "APNIC", "KR": "APNIC", "JP": "APNIC", "ID": "APNIC",
    "MY": "APNIC", "AU": "APNIC", "PH": "APNIC", "HK": "APNIC",
    "SG": "APNIC", "MN": "APNIC", "BD": "APNIC", "PK": "APNIC",
    "EG": "AFRINIC", "DZ": "AFRINIC", "ZA": "AFRINIC", "NG": "AFRINIC",
    "MA": "AFRINIC", "KE": "AFRINIC", "TN": "AFRINIC",
}

RIRS = ("ARIN", "LACNIC", "RIPE", "APNIC", "AFRINIC")


def rir_for_country(country):
    """The RIR responsible for a country code (``"UNKNOWN"`` if unmapped)."""
    return COUNTRY_TO_RIR.get(country, "UNKNOWN")


class AutonomousSystem:
    """One AS: number, operator name, country, kind, and its prefixes.

    ``kind`` distinguishes the operator categories the paper's Top-25
    analysis relies on: broadband/telecom ISPs vs hosting vs enterprise etc.
    """

    BROADBAND = "broadband"
    HOSTING = "hosting"
    ENTERPRISE = "enterprise"
    ACADEMIC = "academic"
    MOBILE = "mobile"

    def __init__(self, asn, name, country, kind=BROADBAND, prefixes=None):
        self.asn = asn
        self.name = name
        self.country = country
        self.kind = kind
        self.prefixes = list(prefixes or [])

    @property
    def rir(self):
        return rir_for_country(self.country)

    def add_prefix(self, prefix):
        self.prefixes.append(prefix)

    def __contains__(self, ip):
        return any(ip in prefix for prefix in self.prefixes)

    def __repr__(self):
        return "AS%d(%s, %s, %s)" % (self.asn, self.name, self.country,
                                     self.kind)


class AsRegistry:
    """Prefix-indexed registry: IP -> owning AS in O(log n).

    Prefixes must be non-overlapping (the allocator guarantees this);
    lookup is a bisect on sorted prefix bases.
    """

    def __init__(self):
        self._systems = {}
        self._bases = []
        self._entries = []  # parallel: (prefix, asn)
        self._dirty = False

    def add(self, autonomous_system):
        if autonomous_system.asn in self._systems:
            raise ValueError("duplicate ASN %d" % autonomous_system.asn)
        self._systems[autonomous_system.asn] = autonomous_system
        for prefix in autonomous_system.prefixes:
            self._entries.append((prefix.base, prefix, autonomous_system.asn))
        self._dirty = True

    def attach_prefix(self, asn, prefix):
        """Register an additional prefix under an existing AS (CDN edges)."""
        system = self._systems[asn]
        system.add_prefix(prefix)
        self._entries.append((prefix.base, prefix, asn))
        self._dirty = True

    def _reindex(self):
        self._entries.sort(key=lambda entry: entry[0])
        self._bases = [entry[0] for entry in self._entries]
        self._dirty = False

    def get(self, asn):
        return self._systems.get(asn)

    def all_systems(self):
        return list(self._systems.values())

    def lookup(self, ip):
        """The :class:`AutonomousSystem` owning ``ip``, or ``None``."""
        from repro.netsim.address import ip_to_int
        if self._dirty:
            self._reindex()
        value = ip_to_int(ip) if isinstance(ip, str) else ip
        index = bisect.bisect_right(self._bases, value) - 1
        if index < 0:
            return None
        __, prefix, asn = self._entries[index]
        if prefix.contains_int(value):
            return self._systems[asn]
        return None

    def asn_of(self, ip):
        system = self.lookup(ip)
        return system.asn if system is not None else None

    def country_of(self, ip):
        system = self.lookup(ip)
        return system.country if system is not None else None

    def rir_of(self, ip):
        system = self.lookup(ip)
        return system.rir if system is not None else "UNKNOWN"

    def __len__(self):
        return len(self._systems)
