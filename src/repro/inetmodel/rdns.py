"""Reverse DNS: PTR registry and naming conventions.

Two analyses depend on rDNS.  The churn analysis (§2.5) matches PTR names
against tokens indicating dynamic address assignment (``dynamic``,
``dialup``, ``broadband``, …).  The prefilter (§3.4, criterion ii) accepts
an IP as legitimate for a domain when its PTR name resembles the domain
*and* the PTR name's forward A record resolves back to the same IP —
forward-confirmed reverse DNS, which a squatter cannot fake because only
the domain owner controls the forward zone.
"""

from repro.netsim.address import reverse_pointer_name

DYNAMIC_TOKENS = (
    "dynamic", "dyn", "dialup", "dial", "broadband", "dsl", "adsl",
    "pool", "ppp", "cable", "dhcp",
)


def has_dynamic_token(rdns_name):
    """True when a PTR name advertises dynamic address assignment."""
    if not rdns_name:
        return False
    lowered = rdns_name.lower()
    return any(token in lowered.split(".") or "-%s" % token in lowered
               or "%s-" % token in lowered or token in lowered
               for token in DYNAMIC_TOKENS)


def dynamic_pool_name(ip, isp_domain):
    """A dynamic-pool PTR name, e.g. ``host-1-2-3-4.dynamic.isp.example``."""
    return "host-%s.dynamic.%s" % (ip.replace(".", "-"), isp_domain)


def static_name(ip, isp_domain):
    """A static-assignment PTR name, e.g. ``static-1-2-3-4.isp.example``."""
    return "static-%s.%s" % (ip.replace(".", "-"), isp_domain)


class RdnsRegistry:
    """Maps IP -> PTR name and PTR name -> forward A address.

    The forward table is populated only for names whose owner actually
    controls the forward zone; this is what makes forward-confirmation a
    meaningful check.
    """

    def __init__(self):
        self._ptr = {}
        self._forward = {}

    def set_ptr(self, ip, name, forward_confirmed=True):
        """Register a PTR record; optionally also its confirming A record."""
        self._ptr[ip] = name
        if forward_confirmed:
            self._forward[name.lower()] = ip

    def remove(self, ip):
        name = self._ptr.pop(ip, None)
        if name is not None:
            self._forward.pop(name.lower(), None)

    def ptr(self, ip):
        """The PTR name for ``ip``, or ``None``."""
        return self._ptr.get(ip)

    def forward(self, name):
        """The A address registered for a PTR name, or ``None``."""
        return self._forward.get(name.lower())

    def forward_confirmed(self, ip):
        """True when ip -> PTR -> A leads back to ``ip``."""
        name = self._ptr.get(ip)
        return name is not None and self._forward.get(name.lower()) == ip

    def pointer_query_name(self, ip):
        """The in-addr.arpa name a resolver would query for ``ip``."""
        return reverse_pointer_name(ip)

    def __len__(self):
        return len(self._ptr)

    def __contains__(self, ip):
        return ip in self._ptr
