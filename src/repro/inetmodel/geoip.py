"""GeoIP lookups, backed by the AS registry.

Stands in for the MaxMind GeoIP database the paper used for Tables 1/2 and
Figure 4: every allocated prefix belongs to exactly one AS, and each AS has
one country, so IP -> country is a prefix lookup.
"""


class GeoIpDatabase:
    """Country (and RIR) lookups for IP addresses."""

    UNKNOWN = "??"

    def __init__(self, as_registry):
        self._registry = as_registry

    def country(self, ip):
        """ISO country code for ``ip`` (``"??"`` when unallocated)."""
        found = self._registry.country_of(ip)
        return found if found is not None else self.UNKNOWN

    def rir(self, ip):
        """Regional Internet Registry for ``ip``."""
        return self._registry.rir_of(ip)

    def count_by_country(self, ips):
        """Histogram of countries over an iterable of addresses."""
        counts = {}
        for ip in ips:
            code = self.country(ip)
            counts[code] = counts.get(code, 0) + 1
        return counts

    def count_by_rir(self, ips):
        """Histogram of RIRs over an iterable of addresses."""
        counts = {}
        for ip in ips:
            registry = self.rir(ip)
            counts[registry] = counts.get(registry, 0) + 1
        return counts
