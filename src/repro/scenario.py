"""One-call construction of the paper-calibrated simulated Internet.

:func:`build_scenario` assembles everything: address allocation, the
AS/country/RIR plan (Tables 1/2), the DNS hierarchy with every scanned
domain, web/CDN/mail content, censorship landing pages for 34 countries,
the Great Firewall, the special-purpose hosts of the §4.3 case studies,
and the resolver population with its behaviors, churn, decline, and
growth schedules (Figures 1/2).

Counts are the paper's, divided by ``config.scale`` (default 1:2000) —
all reported results are shares and shapes, which are scale-invariant.
"""

import math
import random

from repro.authdns import HierarchyBuilder
from repro.datasets import (
    ALL_CATEGORIES,
    CATEGORY_ADULT,
    CATEGORY_FILESHARING,
    CATEGORY_GAMBLING,
    CATEGORY_MALWARE,
    DOMAIN_SETS,
    GROUND_TRUTH_DOMAIN,
    MEASUREMENT_DOMAIN,
    SNOOPING_TLDS,
    ScanDomain,
    all_domains,
)
from repro.datasets.domains import CATEGORY_MISC
from repro.inetmodel import (
    AsRegistry,
    AutonomousSystem,
    ChurnModel,
    GeoIpDatabase,
    PrefixAllocator,
    RdnsRegistry,
)
from repro.netsim import (
    DnsIngressFilter,
    GreatFirewall,
    Network,
    ScannerBlocker,
    SimClock,
)
from repro.netsim.clock import WEEK
from repro.resolvers import (
    AdInjectBehavior,
    SameNetworkBehavior,
    StaleCdnBehavior,
    BlockingBehavior,
    CensorshipBehavior,
    EmptyAnswerBehavior,
    LanIpBehavior,
    MailRedirectBehavior,
    MalwareBehavior,
    NsOnlyBehavior,
    NxRedirectBehavior,
    ParkingBehavior,
    PhishingBehavior,
    PopulationBuilder,
    ProxyAllBehavior,
    ResolutionService,
    ResolverSpec,
    SelfIpBehavior,
    StaticIpBehavior,
)
from repro.resolvers.population import (
    FLAG_DEVICE_HTTP,
    FLAG_PLAIN_NORMAL,
    FLAG_SELF_IP,
)
from repro.scanner import Blacklist, ScanCampaign, ScanTargetSpace
from repro.core.pipeline import ManipulationPipeline
from repro.websim import (
    CdnProvider,
    CertificateAuthority,
    MailServer,
    SiteLibrary,
    TransparentProxy,
    WebServer,
)
from repro.websim.httpserver import ContentTransformServer, StaticPageServer
from repro.websim.mail import banners_for_provider, provider_for_hostname
from repro.websim import pages
from repro.util import apportion, weighted_choice

# ---------------------------------------------------------------------------
# Country plan: (country, Jan-2014 resolver count in paper units, relative
# change to Feb-2015).  Top-10 rows are Table 1 verbatim; the rest are
# reconstructed so totals, RIR shares (Table 2), and the overall 26.8M ->
# 17.8M decline (Fig. 1) come out right.
# ---------------------------------------------------------------------------
COUNTRY_PLAN = (
    ("US", 2958640, -0.142), ("CN", 2418949, -0.130),
    ("TR", 1439736, -0.322), ("VN", 1393618, -0.254),
    ("MX", 1372934, -0.144), ("IN", 1269714, +0.127),
    ("TH", 1214042, -0.535), ("IT", 1172001, -0.383),
    ("CO", 1062080, -0.362), ("TW", 1061218, -0.573),
    ("AR", 983000, -0.750), ("ID", 850000, -0.420),
    ("IR", 800000, -0.350), ("BR", 750000, -0.420),
    ("RU", 750000, -0.400), ("PL", 700000, -0.460),
    ("EG", 680000, -0.120), ("KR", 600000, -0.850),
    ("GB", 560000, -0.636), ("DZ", 560000, -0.100),
    ("DE", 520000, -0.470), ("FR", 450000, -0.450),
    ("JP", 420000, -0.420), ("UA", 380000, -0.460),
    ("ES", 350000, -0.430), ("SA", 330000, -0.250),
    ("VE", 300000, -0.480), ("PH", 290000, -0.430),
    ("PK", 280000, -0.250), ("RO", 270000, -0.460),
    ("NL", 250000, -0.480), ("MY", 240000, +0.597),
    ("CL", 230000, -0.450), ("PE", 220000, -0.470),
    ("CA", 210000, -0.150), ("BD", 200000, -0.280),
    ("MA", 200000, -0.080), ("NG", 190000, -0.100),
    ("GR", 180000, -0.300), ("ZA", 170000, -0.120),
    ("CZ", 160000, -0.330), ("SE", 150000, -0.350),
    ("AU", 150000, -0.250), ("HK", 140000, -0.300),
    ("EC", 130000, -0.350), ("BE", 120000, -0.330),
    ("CH", 110000, -0.350), ("SG", 90000, -0.280),
    ("KE", 90000, -0.100), ("TN", 80000, -0.080),
    ("MN", 60000, -0.200), ("LB", 60000, +0.767),
    ("EE", 50000, -0.300),
)

_ISP_NAMES = {
    "US": "Comtel Broadband", "CN": "ChinaNet Backbone",
    "TR": "AnadoluTel", "VN": "VietNamNet", "MX": "TelMexico",
    "IN": "BharatNet", "TH": "SiamOnline", "IT": "ItaliaCom",
    "CO": "ColombiaTel", "TW": "FormosaNet", "AR": "PatagoniaTel",
    "ID": "NusantaraNet", "IR": "ParsOnline", "BR": "BrasilConecta",
    "RU": "VolgaTelecom", "KR": "HanRiverNet", "GB": "AlbionNet",
    "DE": "RheinTelekom", "FR": "LoireTelecom",
}

# Social-network domains the Great Firewall poisons (Fig. 4 / §4.2).
GFW_CENSORED = ("facebook.com", "twitter.com", "youtube.com",
                "www.facebook.com", "www.twitter.com", "www.youtube.com")

# Per-country censorship policies: category (or explicit domain) ->
# probability that an individual resolver in that country censors it.
# Calibrated from §4.2's coverage observations.
CENSOR_POLICIES = {
    "IR": {"domains": {"facebook.com": 0.97, "twitter.com": 0.97,
                       "youtube.com": 0.97},
           "categories": {CATEGORY_ADULT: 0.30, "Dating": 0.35}},
    "TR": {"domains": {"youporn.com": 0.90, "rotten.com": 0.90,
                       "thepiratebay.se": 0.5, "kickass.to": 0.5},
           "categories": {CATEGORY_GAMBLING: 0.4}},
    "ID": {"domains": {"adultfinder.com": 0.916, "youporn.com": 0.80,
                       "blogspot.com": 0.885, "rotten.com": 0.80,
                       "xhamster.com": 0.60, "redtube.com": 0.287},
           "categories": {CATEGORY_GAMBLING: 0.287}},
    "MY": {"domains": {"youporn.com": 0.55},
           "categories": {CATEGORY_GAMBLING: 0.3}},
    "IT": {"categories": {CATEGORY_GAMBLING: 0.693,
                          CATEGORY_FILESHARING: 0.60}},
    "RU": {"categories": {CATEGORY_FILESHARING: 0.35,
                          CATEGORY_GAMBLING: 0.30}},
    "GR": {"categories": {CATEGORY_GAMBLING: 0.839}},
    "BE": {"categories": {CATEGORY_GAMBLING: 0.786}},
    "MN": {"categories": {CATEGORY_ADULT: 0.789}},
    "EE": {"categories": {CATEGORY_GAMBLING: 0.569},
           "landing_country": "RU"},
    "VN": {"domains": {"facebook.com": 0.08},
           "categories": {CATEGORY_ADULT: 0.20}},
    "TH": {"categories": {CATEGORY_ADULT: 0.25,
                          CATEGORY_GAMBLING: 0.25}},
    "SA": {"categories": {CATEGORY_ADULT: 0.50, CATEGORY_GAMBLING: 0.6,
                          "Dating": 0.4}},
    "EG": {"categories": {CATEGORY_ADULT: 0.25}},
    "PK": {"domains": {"youtube.com": 0.08},
           "categories": {CATEGORY_ADULT: 0.40}},
    "DZ": {"categories": {CATEGORY_GAMBLING: 0.4}},
}

# Background suspicious mix: where always-misbehaving resolvers point.
# Calibrated against Table 5's Ground-Truth column (HTTP Error 55.0,
# Login 16.1, Parking 23.4, Misc 5.1, Search/Blocking trace).
BACKGROUND_MIX = (
    ("error", 0.600), ("login", 0.140), ("parking", 0.210),
    ("misc", 0.045), ("search", 0.003), ("blocking", 0.002),
)
BACKGROUND_SHARE = 0.027       # share of all resolvers
EMPTY_ANSWER_SHARE = 0.055     # NOERROR-empty for everything (§4.1)
NS_ONLY_SHARE = 0.0011
NX_MONETIZER_SHARE = 0.016     # Search on NXDOMAIN
AV_BLOCKER_SHARE = 0.010       # Blocking for malware/dating/adult
MAIL_REDIRECT_SHARE = 0.030
LAN_IP_SHARE = 0.0020
SAME_NET_SHARE = 0.0012   # answers inside the resolver's own /24 (dead)
SELF_IP_SHARE = 0.0006
PARKING_DEAD_SHARE = 0.030     # parking for dead/re-registered domains
PARKING_DEAD_SHARE_CN = 0.350  # much higher in CN (the two CN domains)
STALE_CDN_SHARE = 0.0025


class ScenarioConfig:
    """Tunable knobs for scenario construction."""

    def __init__(self, scale=2000, seed=7, loss_rate=0.002,
                 landing_ips_per_country=3, weeks=55,
                 min_pool_count=2, lazy_population=False,
                 node_cache=8192):
        if node_cache < 1:
            raise ValueError("node_cache must be >= 1")
        self.scale = scale
        self.seed = seed
        self.loss_rate = loss_rate
        self.landing_ips_per_country = landing_ips_per_country
        self.weeks = weeks
        self.min_pool_count = min_pool_count
        # Memory-bounded mode: resolver pools keep compact derivation
        # records and materialize nodes on first probe through an LRU of
        # at most ``node_cache`` live nodes (see DESIGN.md
        # "Memory-bounded streaming").
        self.lazy_population = lazy_population
        self.node_cache = node_cache

    def scaled(self, paper_count, minimum=None):
        if minimum is None:
            minimum = self.min_pool_count
        return max(minimum, int(round(paper_count / self.scale)))


class Scenario:
    """The fully built world plus convenience accessors."""

    def __init__(self, config):
        self.config = config
        self.clock = SimClock()
        self.network = Network(self.clock, seed=config.seed,
                               loss_rate=config.loss_rate)
        self.allocator = PrefixAllocator()
        self.as_registry = AsRegistry()
        self.geoip = GeoIpDatabase(self.as_registry)
        self.rdns = RdnsRegistry()
        self.ca = CertificateAuthority()
        self.site_library = SiteLibrary(seed=config.seed)
        self.churn = ChurnModel(self.network, rdns=self.rdns,
                                seed=config.seed + 1)
        self.blacklist = Blacklist()
        self.domain_catalog = {d.name: d for d in all_domains()}
        self.cdn_providers = []
        self.special_ips = {}      # group name -> list of IPs
        self.landing_ips = {}      # country -> list of censorship IPs
        self.gfw = None
        self.hierarchy = None
        self.service = None
        self.population = None
        self.scanner_ip = None
        self.verification_scanner_ip = None
        self.pipeline_source_ip = None
        self.resolver_prefixes = []
        self._next_asn = 64500

    # -- accessors used by examples/benches -----------------------------------

    def target_space(self):
        return ScanTargetSpace(self.resolver_prefixes)

    def new_campaign(self, verify=True, shards=1, perf=None, retries=0,
                     probe_timeout=None, backoff=2.0,
                     heartbeat_timeout=None, probe_batch=4096,
                     pacing=None, max_pps=None, stream_results=False,
                     chunk_rows=65536, delta=None):
        return ScanCampaign(
            self.network, self.churn, self.target_space(),
            self.scanner_ip, MEASUREMENT_DOMAIN, blacklist=self.blacklist,
            verification_source_ip=(self.verification_scanner_ip
                                    if verify else None),
            shards=shards, perf=perf, retries=retries,
            probe_timeout=probe_timeout, backoff=backoff,
            heartbeat_timeout=heartbeat_timeout,
            probe_batch=probe_batch, pacing=pacing, max_pps=max_pps,
            stream_results=stream_results, chunk_rows=chunk_rows,
            delta=delta)

    def new_pipeline(self, **kwargs):
        return ManipulationPipeline(
            self.network, self.service, self.as_registry, self.rdns,
            self.ca,
            known_cdn_common_names=[p.common_name.lstrip("*.")
                                    for p in self.cdn_providers],
            source_ip=self.pipeline_source_ip,
            domain_catalog=all_domains() + [ScanDomain(
                GROUND_TRUTH_DOMAIN, "GroundTruth")],
            **kwargs)

    def online_resolver_ips(self):
        return self.population.online_resolver_ips()

    def next_asn(self):
        self._next_asn += 1
        return self._next_asn

    def new_as(self, name, country, kind=AutonomousSystem.BROADBAND,
               prefix_length=None, prefix=None):
        """Create an AS with one prefix and register it."""
        if prefix is None:
            prefix = self.allocator.allocate(prefix_length or 20)
        asys = AutonomousSystem(self.next_asn(), name, country, kind,
                                [prefix])
        self.as_registry.add(asys)
        return asys, prefix


# ---------------------------------------------------------------------------
# Build helpers
# ---------------------------------------------------------------------------

def _prefix_length_for(count):
    """A CIDR length giving ~24x headroom over the resolver count.

    Sparse pools matter for Figure 2: on the real Internet resolver
    density is ~0.6% of the address space, so a churned-away address is
    almost never re-leased to another open resolver; dense simulated
    pools would inflate the long-term cohort survival with lookalikes.
    """
    needed = max(16, count * 24)
    length = 32 - max(4, math.ceil(math.log2(needed)))
    return max(12, min(26, length))


def _build_infrastructure(scenario):
    """DNS hierarchy, content servers, CDNs, mail, scanner hosts."""
    config = scenario.config
    # Infrastructure AS (hosting: AuthNS, scanner, trusted resolvers).
    infra_as, infra_prefix = scenario.new_as(
        "SimStudy Research", "US", AutonomousSystem.ACADEMIC, 16)
    builder = HierarchyBuilder(scenario.network, infra_prefix,
                               rdns_registry=scenario.rdns)
    scenario.hierarchy = builder.hierarchy
    scenario._hierarchy_builder = builder
    scenario.scanner_ip = infra_prefix.address_at(60001)
    scenario.pipeline_source_ip = infra_prefix.address_at(60002)
    trusted_source = infra_prefix.address_at(60003)
    # The verification scan runs from a different /8 (§2.2): carve its
    # prefix from the far end of the address space.
    ver_prefix = PrefixAllocator(start="203.64.0.0").allocate(24)
    ver_as = AutonomousSystem(scenario.next_asn(),
                              "SecondVantage Hosting", "DE",
                              AutonomousSystem.HOSTING, [ver_prefix])
    scenario.as_registry.add(ver_as)
    scenario.verification_scanner_ip = ver_prefix.address_at(10)

    scenario.service = ResolutionService(
        builder.hierarchy.root_ips, trusted_source,
        wildcard_suffixes=[MEASUREMENT_DOMAIN])

    # Measurement + ground-truth domains (we operate these AuthNS).
    gt_web_ip = infra_prefix.address_at(60010)
    builder.register_domain(MEASUREMENT_DOMAIN,
                            wildcard_address=infra_prefix.address_at(60011))
    builder.register_domain(GROUND_TRUTH_DOMAIN,
                            {GROUND_TRUTH_DOMAIN: [gt_web_ip]})
    scenario.site_library.set_category(GROUND_TRUTH_DOMAIN, CATEGORY_MISC)
    scenario.network.register(WebServer(
        gt_web_ip, scenario.site_library, [GROUND_TRUTH_DOMAIN],
        certificate=scenario.ca.issue(GROUND_TRUTH_DOMAIN)))

    # CDN providers.
    hosting_countries = ("US", "DE", "JP", "BR", "GB", "SG")
    for cdn_name, cn in (("EdgeSuite", "edgesuite-cdn.net"),
                         ("CloudVia", "cloudvia-edge.com")):
        provider = CdnProvider(cdn_name, cn, scenario.ca,
                               scenario.site_library, seed=config.seed)
        # Edges live in many foreign hosting ASes (the CDN problem, §3.4).
        for index, country in enumerate(hosting_countries):
            edge_as, edge_prefix = scenario.new_as(
                "%s Edge %s" % (cdn_name, country), country,
                AutonomousSystem.HOSTING, 24)
            provider.deploy_edge(scenario.network,
                                 edge_prefix.address_at(10))
            provider.deploy_edge(scenario.network,
                                 edge_prefix.address_at(11),
                                 enabled=(index % 3 != 2))
        scenario.cdn_providers.append(provider)

    # Content hosting ASes for origin web servers.
    origin_ases = []
    for country in ("US", "DE", "FR", "NL", "JP", "SG", "BR", "RU", "CN",
                    "IT", "GB", "IN"):
        asys, prefix = scenario.new_as(
            "%s WebHosting" % country, country, AutonomousSystem.HOSTING,
            22)
        origin_ases.append((asys, prefix, [0]))  # [next host index]

    rng = random.Random(config.seed + 11)

    def next_host_ip(preferred_country=None):
        candidates = origin_ases
        if preferred_country is not None:
            matching = [entry for entry in origin_ases
                        if entry[0].country == preferred_country]
            if matching:
                candidates = matching
        asys, prefix, counter = candidates[rng.randrange(len(candidates))]
        counter[0] += 1
        return prefix.address_at(counter[0] + 10)

    # Register every existing scanned domain: zone, origin server(s), TLS.
    cdn_cycle = 0
    web_server_ips = []
    for domain in all_domains():
        if not domain.exists:
            continue
        scenario.site_library.set_category(domain.name, domain.category)
        if domain.kind == ScanDomain.KIND_MAIL:
            continue  # mail hostnames are registered with their provider
        if domain.category == CATEGORY_MALWARE:
            continue  # handled below: dead, sinkholed, or re-registered
        if domain.cdn:
            provider = scenario.cdn_providers[
                cdn_cycle % len(scenario.cdn_providers)]
            cdn_cycle += 1
            provider.add_customer(domain.name)
            pool = provider.edge_pool_for(domain.name)
            builder.register_domain(domain.name,
                                    {domain.name: pool[:2],
                                     "www." + domain.name: pool[2:4]})
            scenario.service.register_cdn_pool(domain.name, pool)
        else:
            ips = [next_host_ip() for __ in range(rng.randint(1, 2))]
            builder.register_domain(domain.name,
                                    {domain.name: ips,
                                     "www." + domain.name: ips})
            certificate = (scenario.ca.issue(
                domain.name, san=(domain.name, "www." + domain.name))
                if domain.https else None)
            for ip in ips:
                scenario.network.register(WebServer(
                    ip, scenario.site_library, [domain.name],
                    certificate=certificate, https=domain.https))
                # Forward-confirmed rDNS for origin servers (§3.4 rule ii).
                ptr = "web%d.%s" % (rng.randint(1, 9), domain.name)
                scenario.rdns.set_ptr(ip, ptr)
                web_server_ips.append(ip)
    scenario.special_ips["web_servers"] = web_server_ips

    # Malware domains: a third dead (NXDOMAIN), a third sinkholed with a
    # minimal page, a third re-registered by parking providers (§4.2).
    malware_domains = DOMAIN_SETS[CATEGORY_MALWARE]
    sinkholed = []
    for index, domain in enumerate(malware_domains):
        scenario.site_library.set_category(domain.name, CATEGORY_MALWARE)
        if index % 3 == 0:
            continue  # dead: no zone at all -> NXDOMAIN upstream
        ip = next_host_ip()
        builder.register_domain(domain.name, {domain.name: [ip]})
        if index % 3 == 1:
            scenario.network.register(WebServer(
                ip, scenario.site_library, [domain.name], https=False))
            sinkholed.append(domain.name)
        else:
            # Re-registered by a reseller: the zone itself points at
            # parking (even our trusted resolution sees it).
            scenario.network.register(StaticPageServer(
                ip, pages.parking_page(domain.name, seed=config.seed)))
    scenario.special_ips["sinkholed_malware"] = sinkholed

    # Mail providers: zones + legitimate mail servers.
    mail_provider_as, mail_prefix = scenario.new_as(
        "MailCloud Hosting", "US", AutonomousSystem.HOSTING, 22)
    mail_index = [0]
    provider_zone_done = set()
    for domain in DOMAIN_SETS["MX"]:
        provider = provider_for_hostname(domain.name)
        labels = domain.name.split(".")
        apex = ".".join(labels[-2:])
        if apex in ("me.com",):
            apex = "me.com"
        mail_index[0] += 1
        ip = mail_prefix.address_at(mail_index[0] + 5)
        scenario.network.register(MailServer(ip, provider=provider))
        zone = scenario.hierarchy.zone(apex)
        if zone is None:
            zone = builder.register_domain(apex)
        zone.add_a(domain.name, ip)
        provider_zone_done.add(apex)

    return builder


def _build_special_hosts(scenario, builder):
    """Censorship landing pages, blocking/parking/search/login/phish/ad/
    malware/proxy/mail hosts — the destinations of manipulated answers."""
    config = scenario.config
    network = scenario.network

    # Censorship landing pages: a small set of IPs per censoring country.
    for country in pages.CENSOR_COUNTRIES:
        asys, prefix = scenario.new_as(
            "%s National Gateway" % country, country,
            AutonomousSystem.ENTERPRISE, 26)
        ips = []
        for variant in range(config.landing_ips_per_country):
            ip = prefix.address_at(variant + 5)
            network.register(StaticPageServer(
                ip, pages.censorship_landing(country, variant)))
            ips.append(ip)
        scenario.landing_ips[country] = ips
    scenario.special_ips["censorship_landing"] = [
        ip for ips in scenario.landing_ips.values() for ip in ips]

    svc_as, svc_prefix = scenario.new_as(
        "GlobalServices Hosting", "US", AutonomousSystem.HOSTING, 20)
    counter = [100]

    def svc_ip():
        counter[0] += 1
        return svc_prefix.address_at(counter[0])

    def static_group(name, bodies, status=200, **kwargs):
        ips = []
        for body in bodies:
            ip = svc_ip()
            network.register(StaticPageServer(ip, body, status=status,
                                              **kwargs))
            ips.append(ip)
        scenario.special_ips[name] = ips
        return ips

    static_group("blocking", [
        pages.isp_blocking_page("SafeNet Shield", "malicious"),
        pages.isp_blocking_page("FamilyGuard DNS", "adult"),
        pages.isp_blocking_page("SecureISP Filter", "phishing"),
        pages.isp_blocking_page("KidSafe Net", "dating"),
    ])
    static_group("parking", [
        pages.parking_page("parked-%d.example" % i,
                           reseller=("DomainMonetizer" if i % 2 == 0
                                     else "ParkingLotInc"),
                           seed=config.seed + i)
        for i in range(6)])
    static_group("search", [pages.search_page(provider="WebSearch"),
                            pages.search_page(provider="FindFast"),
                            pages.search_page(provider="LookupNow")])
    static_group("captive_portal", [
        pages.captive_portal("City Hotel", "hotel"),
        pages.captive_portal("Metro ISP", "isp"),
        pages.captive_portal("State University", "edu"),
        pages.webmail_login("ISP Webmail"),
    ])
    static_group("personal", [
        _personal_page(config.seed, i) for i in range(6)])
    static_group("dead", [])  # placeholder group; dead hosts below
    dead_ips = [svc_ip() for __ in range(5)]  # no node registered: timeouts
    scenario.special_ips["dead"] = dead_ips

    # Ad manipulation hosts (§4.3): 2 banner injectors, 2 script servers,
    # 7 ad blankers, 2 fake search pages with ads.
    ad_targets = [d.name for d in DOMAIN_SETS["Ads"]]
    inject_ips = []
    for transform in (pages.inject_ad_banner, pages.inject_ad_banner,
                      pages.inject_ad_script, pages.inject_ad_script):
        ip = svc_ip()
        network.register(ContentTransformServer(
            ip, scenario.site_library, transform, target_domains=None))
        inject_ips.append(ip)
    scenario.special_ips["ad_inject"] = inject_ips
    blank_ips = []
    for __ in range(7):
        ip = svc_ip()
        network.register(ContentTransformServer(
            ip, scenario.site_library, pages.blank_ads,
            target_domains=None))
        blank_ips.append(ip)
    scenario.special_ips["ad_blank"] = blank_ips
    static_group("fake_search", [pages.fake_search_with_ads("Google"),
                                 pages.fake_search_with_ads("Google")])

    # Transparent proxies: HTTP-only and TLS-capable (§4.3).  Proxies
    # relay web content only — asking them for a bare mail hostname gets
    # an error page, as on the real Internet.
    proxyable = {d.name for d in all_domains()
                 if d.exists and d.kind == ScanDomain.KIND_WEB}
    proxyable.add(GROUND_TRUTH_DOMAIN)
    http_proxy_ips = []
    for __ in range(10):
        ip = svc_ip()
        network.register(TransparentProxy(ip, scenario.site_library,
                                          https=False,
                                          web_domains=proxyable))
        http_proxy_ips.append(ip)
    scenario.special_ips["proxy_http"] = http_proxy_ips
    # TLS-capable proxies terminate TLS with their own issuing CA —
    # their certificates are well-formed (so §4.3 classifies them as
    # TLS-capable) but not trusted by the study's store, which is why
    # the prefilter's certificate rule does not whitewash them.
    proxy_ca = CertificateAuthority("ProxyTrust CA")
    tls_proxy_ips = []
    for __ in range(10):
        ip = svc_ip()
        network.register(TransparentProxy(ip, scenario.site_library,
                                          https=True, ca=proxy_ca,
                                          web_domains=proxyable))
        tls_proxy_ips.append(ip)
    scenario.special_ips["proxy_tls"] = tls_proxy_ips

    # Phishing hosts: PayPal image-slice pages (some HTTPS/self-signed),
    # and two bank clones (Brazilian and Russian networks, HTTP-only).
    paypal_ips = []
    for index in range(4):
        ip = svc_ip()
        cert = (CertificateAuthority.self_signed("paypal.com")
                if index == 0 else None)
        network.register(StaticPageServer(ip, pages.phishing_paypal(),
                                          certificate=cert))
        paypal_ips.append(ip)
    scenario.special_ips["phish_paypal"] = paypal_ips
    bank_page = scenario.site_library.page_for("intesasanpaolo.it")
    br_as, br_prefix = scenario.new_as("BR BulletHost", "BR",
                                       AutonomousSystem.HOSTING, 26)
    ru_as, ru_prefix = scenario.new_as("RU BulletHost", "RU",
                                       AutonomousSystem.HOSTING, 26)
    bank_phish_ips = [br_prefix.address_at(5), ru_prefix.address_at(5)]
    for ip in bank_phish_ips:
        network.register(StaticPageServer(
            ip, pages.phishing_bank(bank_page)))
    scenario.special_ips["phish_bank"] = bank_phish_ips

    # Malware-download update pages.
    malware_ips = []
    for index in range(8):
        ip = svc_ip()
        product = ("Adobe Flash Player" if index % 2 == 0
                   else "Java Runtime Environment")
        network.register(StaticPageServer(
            ip, pages.malware_update_page(product)))
        malware_ips.append(ip)
    scenario.special_ips["malware_update"] = malware_ips

    # Rogue mail listeners; two copy the genuine provider banners (§4.3).
    rogue_mail_ips = []
    for __ in range(10):
        ip = svc_ip()
        network.register(MailServer(ip, provider=None))  # generic banners
        rogue_mail_ips.append(ip)
    scenario.special_ips["mail_rogue"] = rogue_mail_ips
    copy_ips = []
    cn_research_as, cn_research_prefix = scenario.new_as(
        "CN Research Network", "CN", AutonomousSystem.ACADEMIC, 26)
    for index, provider in enumerate(("gmail.com", "yandex.ru")):
        ip = cn_research_prefix.address_at(index + 5)
        network.register(MailServer(
            ip, banners=banners_for_provider(provider)))
        copy_ips.append(ip)
    scenario.special_ips["mail_banner_copy"] = copy_ips


def _personal_page(seed, index):
    from repro.websim.html import HtmlPage
    rng = random.Random("%s|personal|%s" % (seed, index))
    page = HtmlPage("My %s Page" % rng.choice(
        ("Photo", "Travel", "Recipe", "Garden", "Model Train", "Shop")))
    page.add_heading("Welcome to my homepage")
    for __ in range(rng.randint(2, 5)):
        page.add_paragraph("Lorem ipsum dolor sit amet %d." % rng.random())
    page.add_image("/photos/%d.jpg" % index, alt="photo")
    return page.render()


# ---------------------------------------------------------------------------
# Behavior factory: per-resolver manipulation assignment
# ---------------------------------------------------------------------------

def _make_behavior_factory(scenario):
    special = scenario.special_ips
    landing = scenario.landing_ips
    catalog = scenario.domain_catalog
    malware_names = [d.name for d in DOMAIN_SETS[CATEGORY_MALWARE]]
    dead_parked = [name for name in malware_names
                   if scenario.hierarchy.zone(name) is None]
    torproject = ["torproject.org"]
    mail_names = [d.name for d in DOMAIN_SETS["MX"]]
    dating_names = [d.name for d in DOMAIN_SETS["Dating"]]
    adult_names = [d.name for d in DOMAIN_SETS["Adult"]]
    by_category = {category: [d.name for d in DOMAIN_SETS[category]]
                   for category in ALL_CATEGORIES}

    def background_behavior(rng, spec):
        kind = weighted_choice(rng, BACKGROUND_MIX)
        if kind == "error":
            pool = special["web_servers"] + special["dead"]
            return StaticIpBehavior(pool[rng.randrange(len(pool))])
        if kind == "login":
            if rng.random() < 0.917:
                return SelfIpBehavior()
            pool = special["captive_portal"]
            return StaticIpBehavior(pool[rng.randrange(len(pool))])
        if kind == "parking":
            pool = special["parking"]
            return StaticIpBehavior(pool[rng.randrange(len(pool))])
        if kind == "search":
            pool = special["search"]
            return StaticIpBehavior(pool[rng.randrange(len(pool))])
        if kind == "blocking":
            pool = special["blocking"]
            return StaticIpBehavior(pool[rng.randrange(len(pool))])
        # misc: proxies and personal pages.
        point = rng.random()
        if point < 0.30:
            return ProxyAllBehavior(special["proxy_http"])
        if point < 0.33:
            return ProxyAllBehavior(special["proxy_tls"])
        pool = special["personal"]
        return StaticIpBehavior(pool[rng.randrange(len(pool))])

    def censorship_behaviors(rng, spec):
        policy = CENSOR_POLICIES.get(spec.country)
        if policy is None:
            return []
        landing_country = policy.get("landing_country", spec.country)
        ips = landing.get(landing_country)
        if not ips:
            return []
        censored = set()
        for domain, probability in policy.get("domains", {}).items():
            if rng.random() < probability:
                censored.add(domain)
        for category, probability in policy.get("categories", {}).items():
            names = by_category.get(category, ())
            if rng.random() < probability:
                censored.update(names)
        if not censored:
            return []
        return [CensorshipBehavior(censored, ips, country=spec.country)]

    def factory(rng, spec, index, ip):
        behaviors = []
        behaviors.extend(censorship_behaviors(rng, spec))
        if rng.random() < AV_BLOCKER_SHARE:
            blocked = list(malware_names)
            if rng.random() < 0.5:
                blocked += dating_names
            if rng.random() < 0.3:
                blocked += adult_names
            pool = special["blocking"]
            behaviors.append(BlockingBehavior(
                blocked, pool[rng.randrange(len(pool))],
                empty_answer=rng.random() < 0.5))
        parking_share = (PARKING_DEAD_SHARE_CN if spec.country == "CN"
                         else PARKING_DEAD_SHARE)
        if rng.random() < parking_share:
            targets = list(dead_parked)
            if rng.random() < 0.35:
                targets += torproject
            behaviors.append(ParkingBehavior(targets, special["parking"]))
        if rng.random() < NX_MONETIZER_SHARE:
            pool = special["search"]
            behaviors.append(NxRedirectBehavior(
                pool[rng.randrange(len(pool))]))
        if rng.random() < MAIL_REDIRECT_SHARE:
            behaviors.append(MailRedirectBehavior(
                mail_names, special["mail_rogue"]))
        if rng.random() < LAN_IP_SHARE:
            behaviors.append(LanIpBehavior(
                "192.168.%d.1" % rng.randint(0, 5)))
            return behaviors
        if rng.random() < SAME_NET_SHARE:
            behaviors.append(SameNetworkBehavior(
                offset=rng.randint(180, 250)))
            return behaviors
        if rng.random() < SELF_IP_SHARE:
            behaviors.append(SelfIpBehavior())
            return behaviors
        if rng.random() < EMPTY_ANSWER_SHARE:
            behaviors.append(EmptyAnswerBehavior())
            return behaviors
        if rng.random() < NS_ONLY_SHARE:
            behaviors.append(NsOnlyBehavior())
            return behaviors
        if rng.random() < STALE_CDN_SHARE and scenario.cdn_providers:
            provider = scenario.cdn_providers[
                rng.randrange(len(scenario.cdn_providers))]
            stale = {domain: [edge.ip for edge in provider.edges
                              if not edge.enabled][:2]
                     for domain in provider.customer_domains}
            stale = {d: ips for d, ips in stale.items() if ips}
            if stale:
                behaviors.append(StaleCdnBehavior(stale))
        if rng.random() < BACKGROUND_SHARE:
            behaviors.append(background_behavior(rng, spec))
        return behaviors

    return factory


def _plain_normal(node):
    """Case-study candidacy without materializing lazy nodes.

    Lazy placeholders carry the answer as a precomputed dry-pass flag;
    eager (and provider) nodes are inspected directly.  Both paths
    encode the same predicate, so the candidate list is positionally
    identical across modes (which the shared shuffle relies on).
    """
    flags = getattr(node, "lazy_flags", None)
    if flags is not None:
        return bool(flags & FLAG_PLAIN_NORMAL)
    return (node.response_mode == "normal"
            and node.forward_to is None
            and not node.behaviors)


def _assign_case_study_resolvers(scenario, rng):
    """Hand-pick small resolver groups for the §4.3 case studies, so they
    exist at every scale (their paper counts are below 1/scale)."""
    special = scenario.special_ips
    config = scenario.config
    # Only long-lived hosts qualify: the case studies are measured at the
    # END of the 13-month campaign, so a decommissioned host would
    # silently shrink these already-tiny populations.
    normal = [host.node for host in scenario.population.hosts
              if host.online and host.offline_after is None
              and host.online_after is None
              and _plain_normal(host.node)]
    rng.shuffle(normal)
    cursor = [0]

    def take(paper_count, minimum):
        count = min(len(normal) - cursor[0],
                    config.scaled(paper_count, minimum=minimum))
        # Chosen nodes get a behavior inserted below: materialize lazy
        # picks permanently so the mutation survives LRU eviction.
        chosen = [node.pin() if hasattr(node, "pin") else node
                  for node in normal[cursor[0]:cursor[0] + count]]
        cursor[0] += count
        return chosen

    groups = {}
    ad_targets = [d.name for d in DOMAIN_SETS["Ads"]]
    for node in take(281, 3):
        node.behaviors.insert(0, AdInjectBehavior(
            ad_targets, special["ad_inject"]))
        groups.setdefault("ad_inject", []).append(node.ip)
    for node in take(14, 2):
        node.behaviors.insert(0, AdInjectBehavior(
            ad_targets, special["ad_blank"]))
        groups.setdefault("ad_blank", []).append(node.ip)
    for node in take(7, 2):
        node.behaviors.insert(0, StaticIpBehavior(
            special["fake_search"][0]))
        groups.setdefault("fake_search", []).append(node.ip)
    for node in take(176, 2):
        node.behaviors.insert(0, PhishingBehavior(
            ["paypal.com"], special["phish_paypal"]))
        groups.setdefault("phish_paypal", []).append(node.ip)
    for node in take(285, 2):
        node.behaviors.insert(0, PhishingBehavior(
            ["intesasanpaolo.it"], [special["phish_bank"][0]]))
        groups.setdefault("phish_bank_br", []).append(node.ip)
    for node in take(46, 2):
        node.behaviors.insert(0, PhishingBehavior(
            ["intesasanpaolo.it"], [special["phish_bank"][1]]))
        groups.setdefault("phish_bank_ru", []).append(node.ip)
    for node in take(228, 2):
        node.behaviors.insert(0, MalwareBehavior(
            ["get.adobe.com", "update.adobe.com", "java.com"],
            special["malware_update"]))
        groups.setdefault("malware", []).append(node.ip)
    for node in take(10179, 4):
        node.behaviors.insert(0, ProxyAllBehavior(special["proxy_http"]))
        groups.setdefault("proxy_http", []).append(node.ip)
    for node in take(99, 2):
        node.behaviors.insert(0, ProxyAllBehavior(special["proxy_tls"]))
        groups.setdefault("proxy_tls", []).append(node.ip)
    mail_names = [d.name for d in DOMAIN_SETS["MX"]]
    for node in take(8, 2):
        node.behaviors.insert(0, MailRedirectBehavior(
            mail_names, special["mail_banner_copy"]))
        groups.setdefault("mail_banner_copy", []).append(node.ip)
    scenario.case_study_resolvers = groups


# Broadband pool split per country: main telco, cable, wireless (§2.3).
BROADBAND_SPLIT_SHARES = (0.62, 0.26, 0.12)


def split_pool_counts(count, change, min_pool_count=2):
    """Per-AS broadband pool counts for one country.

    Returns ``(pool_counts, grown_counts)``: the initial per-AS counts
    (largest-remainder apportioned so they sum exactly to ``count``
    before minimum floors) and the post-growth counts for growing
    countries (apportioned from the grown total, floored at the initial
    counts so growth never shrinks a pool).  Rounding each share
    independently drifts from the country total on roughly a quarter of
    all counts (a 4-host country rounds to 2+1+0 = 3 hosts); Hamilton's
    method is exact before the minimum floors.
    """
    minimums = [min_pool_count] * len(BROADBAND_SPLIT_SHARES)
    pool_counts = apportion(count, BROADBAND_SPLIT_SHARES,
                            minimums=minimums)
    if change > 0:
        grown_counts = apportion(int(round(count * (1 + change))),
                                 BROADBAND_SPLIT_SHARES,
                                 minimums=pool_counts)
    else:
        grown_counts = list(pool_counts)
    return pool_counts, grown_counts


def _build_population(scenario, builder):
    config = scenario.config
    factory = _make_behavior_factory(scenario)
    scenario.population = PopulationBuilder(
        scenario.network, scenario.churn, scenario.service,
        rdns=scenario.rdns, snooping_tlds=SNOOPING_TLDS,
        seed=config.seed + 2,
        lazy=getattr(config, "lazy_population", False),
        node_cache=getattr(config, "node_cache", 8192))
    rng = random.Random(config.seed + 3)
    gfw_prefixes = []
    decline_specs = []

    for country, paper_count, change in COUNTRY_PLAN:
        count = config.scaled(paper_count)
        # Split across a main broadband AS and up to two secondary ones.
        splits = ["%s Telecom" % _ISP_NAMES.get(country, country),
                  "%s Cable" % country,
                  "%s Wireless" % country]
        special_as_change = None
        if country == "AR":
            # The Argentinean telco whose resolvers all but vanished.
            special_as_change = {0: -0.978, 1: -0.30, 2: -0.30}
        elif country == "KR":
            special_as_change = {0: -0.9999, 1: -0.62, 2: -0.62}
        pool_counts, grown_counts = split_pool_counts(
            count, change, min_pool_count=config.min_pool_count)
        for index, name in enumerate(splits):
            pool_count = pool_counts[index]
            prefix_length = _prefix_length_for(pool_count)
            asys, prefix = scenario.new_as(
                name, country, AutonomousSystem.BROADBAND, prefix_length)
            scenario.resolver_prefixes.append(prefix)
            if country == "CN":
                gfw_prefixes.append(prefix)
            as_change = change
            if special_as_change is not None:
                as_change = special_as_change[index]
            spec_extra = {}
            if as_change < -0.9:
                # Near-total shutdowns (the AR/KR ISPs) take their closed
                # resolvers down too; without this the stable REFUSED
                # population would floor the decline at ~-91%.
                spec_extra = {"refused_share": 0.004,
                              "servfail_share": 0.008}
            spec = ResolverSpec(
                asys, prefix, pool_count,
                isp_domain="%s.example" % name.lower().replace(" ", "-"),
                offline_fraction=max(0.0, -as_change),
                **spec_extra,
                growth_fraction=(as_change / (1 + as_change)
                                 if as_change > 0 else 0.0),
                behavior_factory=factory,
                gfw_immune_share=(0.024 if country == "CN" else 0.0),
            )
            if as_change > 0:
                # Growth hosts must be built on top of the initial count.
                spec.count = grown_counts[index]
            decline_specs.append(spec)
            scenario.population.build_pool(spec)

    # Resolver fleets of hosting/datacenter providers: the non-broadband
    # minority of the Top-25 networks ("at least 20 offer end user
    # services" means a handful do not, §2.3).  Hosting resolvers sit on
    # static addresses and rarely vanish.
    hosting_pools = (("US", "Summit Hosting", 400000),
                     ("DE", "Rhein Datacenters", 300000),
                     ("JP", "Tokai Cloud", 250000),
                     ("SG", "Lion DC", 200000),
                     ("NL", "Polder Hosting", 150000))
    for country, name, paper_count in hosting_pools:
        pool_count = config.scaled(paper_count)
        prefix_length = _prefix_length_for(pool_count)
        asys, prefix = scenario.new_as(name, country,
                                       AutonomousSystem.HOSTING,
                                       prefix_length)
        scenario.resolver_prefixes.append(prefix)
        scenario.population.build_pool(ResolverSpec(
            asys, prefix, pool_count, behavior_factory=factory,
            offline_fraction=0.05, day_lease_share=0.0,
            week_lease_share=0.0, static_mean_weeks=100,
            rdns_coverage=0.9, dynamic_token_share=0.0))

    # The Great Firewall middlebox over the (main) Chinese prefixes.
    scenario.gfw = GreatFirewall(
        gfw_prefixes, GFW_CENSORED, seed=config.seed + 4,
        decoy_pool=scenario.special_ips["web_servers"][:20])
    scenario.network.add_middlebox(scenario.gfw)

    # The 28 dark networks (§2.3): blocked-scanner, DNS-filtered, shutdown.
    dark_total = 0
    blocked_networks = []
    for index in range(4):
        asys, prefix = scenario.new_as(
            "DarkNet Blocked %d" % index, ("BR", "UA", "PH", "RO")[index],
            AutonomousSystem.BROADBAND, 24)
        scenario.resolver_prefixes.append(prefix)
        pool_count = config.scaled(2750, minimum=4)
        scenario.population.build_pool(ResolverSpec(
            asys, prefix, pool_count, behavior_factory=factory,
            day_lease_share=0.0, week_lease_share=0.0,
            static_mean_weeks=500))
        blocked_networks.append(prefix)
        dark_total += pool_count
    scenario.network.add_middlebox(ScannerBlocker(
        [scenario.scanner_ip], blocked_networks,
        active_after=18 * WEEK))
    filtered_as, filtered_prefix = scenario.new_as(
        "DarkNet Filtered", "PL", AutonomousSystem.BROADBAND, 24)
    scenario.resolver_prefixes.append(filtered_prefix)
    scenario.population.build_pool(ResolverSpec(
        filtered_as, filtered_prefix, config.scaled(2750, minimum=4),
        behavior_factory=factory, day_lease_share=0.0,
        week_lease_share=0.0, static_mean_weeks=500))
    scenario.network.add_middlebox(DnsIngressFilter(
        [filtered_prefix], active_after=26 * WEEK))
    shut_as, shut_prefix = scenario.new_as(
        "DarkNet Shutdown", "CZ", AutonomousSystem.BROADBAND, 24)
    scenario.resolver_prefixes.append(shut_prefix)
    # Shutdowns are gradual (servers retired over months), unlike the
    # abrupt one-week disappearance of newly deployed DNS filtering —
    # that difference is what the >=100-resolvers heuristic keys on.
    scenario.population.build_pool(ResolverSpec(
        shut_as, shut_prefix, config.scaled(2750, minimum=4),
        behavior_factory=factory, offline_fraction=1.0,
        offline_start_week=8, offline_end_week=50,
        day_lease_share=0.0, week_lease_share=0.0,
        static_mean_weeks=500))

    _assign_case_study_resolvers(scenario, rng)
    _equip_self_ip_resolvers(scenario, rng)


def _equip_self_ip_resolvers(scenario, rng):
    """Give every self-IP-answering resolver a device login page.

    The paper finds 91.7% of Login-category redirects leading to router
    login pages of two large manufacturers, and 7.0% of self-IP answers
    belonging to one brand of IP cameras (§4.1/§4.2).
    """
    for node in scenario.population.resolvers:
        flags = getattr(node, "lazy_flags", None)
        if flags is not None:
            # Dry-pass flags answer both checks without materializing;
            # the draw sequence below stays positionally identical to an
            # eager build (one draw per qualifying node, none for
            # skipped ones).
            if not flags & FLAG_SELF_IP or flags & FLAG_DEVICE_HTTP:
                continue
            node = node.pin()
        else:
            if not any(type(b).__name__ == "SelfIpBehavior"
                       for b in node.behaviors):
                continue
            if node.device is not None and node.device.http_body:
                continue
        point = rng.random()
        if point < 0.55:
            node.device_page = pages.router_login("TP-LINK")
        elif point < 0.917:
            node.device_page = pages.router_login("ZyXEL")
        elif point < 0.987:
            node.device_page = pages.camera_login("NetCam")
        else:
            node.device_page = pages.webmail_login()


def build_scenario(config=None):
    """Build the complete simulated world; returns a :class:`Scenario`."""
    if config is None:
        config = ScenarioConfig()
    scenario = Scenario(config)
    builder = _build_infrastructure(scenario)
    _build_special_hosts(scenario, builder)
    _build_population(scenario, builder)
    return scenario
