"""Section 4 analyses: prefilter effectiveness (§4.1), the Table-5
classification matrix, Figure 4's censorship geography, per-country
censorship coverage, and Great-Firewall double-response detection."""

from repro.core.labeling import CATEGORY_LABELS
from repro.dnswire.name import normalize_name
from repro.util import percentage


# ---------------------------------------------------------------------------
# §4.1 — prefilter and DNS-level behaviour statistics
# ---------------------------------------------------------------------------

def prefilter_summary(report):
    """The §4.1 shares for one pipeline report."""
    stats = report.prefilter.stats()
    stats["unknown_tuples"] = len(report.prefilter.unknown)
    stats["suspicious_resolvers"] = len(
        report.prefilter.unknown_resolvers())
    return stats


def suspicious_behavior_stats(reports):
    """DNS-level behaviour of suspicious resolvers across domain sets.

    ``reports`` maps category -> PipelineReport.  Reproduces: the share
    of suspicious resolvers returning their own IP; resolvers returning
    their own IP for every domain in >=75% of the sets; the share
    returning the same IP set for more than one domain; static-single-IP
    resolvers; and NS-only resolvers.
    """
    per_resolver_domain_ips = {}
    self_ip_sets = {}
    suspicious = set()
    ns_only = set()
    all_with_obs = {}
    for category, report in reports.items():
        for response_tuple in report.prefilter.unknown:
            resolver = response_tuple.resolver_ip
            suspicious.add(resolver)
            per_resolver_domain_ips.setdefault(resolver, {}).setdefault(
                response_tuple.domain, set()).add(response_tuple.ip)
            if response_tuple.ip == resolver:
                self_ip_sets.setdefault(resolver, set()).add(category)
        for observation in report.observations:
            resolver = observation.resolver_ip
            key = (resolver, category)
            all_with_obs.setdefault(resolver, set()).add(category)
            if observation.ns_record_count and not observation.addresses:
                ns_only.add(resolver)

    self_ip_any = set(self_ip_sets)
    set_count = max(1, len(reports))
    self_ip_most_sets = {resolver for resolver, categories
                         in self_ip_sets.items()
                         if len(categories) >= 0.75 * set_count}
    same_set_multi = 0
    static_single = 0
    for resolver, domain_ips in per_resolver_domain_ips.items():
        ip_sets = [frozenset(ips) for ips in domain_ips.values()]
        if len(ip_sets) > 1 and len(set(ip_sets)) < len(ip_sets):
            same_set_multi += 1
        distinct = set().union(*ip_sets) if ip_sets else set()
        if len(distinct) == 1 and len(domain_ips) > 1:
            static_single += 1
    # Resolvers answering with NS records only are manipulating too —
    # the paper counts them among the suspicious population (§4.1).
    suspicious |= ns_only
    total = len(suspicious) or 1
    return {
        "suspicious_resolvers": len(suspicious),
        "self_ip_any_share_pct": percentage(len(self_ip_any), total),
        "self_ip_most_sets": len(self_ip_most_sets),
        "same_set_multi_share_pct": percentage(same_set_multi, total),
        "static_single_share_pct": percentage(static_single, total),
        "ns_only_share_pct": percentage(len(ns_only), total),
    }


# ---------------------------------------------------------------------------
# Table 5 — label distribution per domain category
# ---------------------------------------------------------------------------

def classification_table(reports):
    """Build the Table-5 matrix.

    ``reports`` maps category name -> PipelineReport (one pipeline run
    per domain set, as in the paper).  For every category and label:
    the *average* share of suspicious resolvers per domain, and the
    *highest* share seen for any single domain in the set (the
    parenthesised numbers of Table 5).
    """
    table = {}
    for category, report in reports.items():
        per_domain_label_resolvers = {}
        per_domain_total = {}
        for labeled in report.labeled:
            domain = normalize_name(labeled.capture.domain)
            resolver = labeled.capture.resolver_ip
            per_domain_label_resolvers.setdefault(
                domain, {}).setdefault(labeled.label, set()).add(resolver)
            per_domain_total.setdefault(domain, set()).add(resolver)
        rows = {}
        for label in CATEGORY_LABELS:
            shares = []
            for domain, total_resolvers in per_domain_total.items():
                labeled_set = per_domain_label_resolvers[domain].get(
                    label, set())
                shares.append(percentage(len(labeled_set),
                                         len(total_resolvers)))
            if shares:
                rows[label] = {
                    "avg_pct": sum(shares) / len(shares),
                    "max_pct": max(shares),
                }
            else:
                rows[label] = {"avg_pct": 0.0, "max_pct": 0.0}
        table[category] = rows
    return table


def format_classification_table(table):
    labels = CATEGORY_LABELS
    header = "%-12s" % "category" + "".join("%-22s" % label
                                            for label in labels)
    lines = [header]
    for category, rows in table.items():
        cells = "".join("%6.1f%% (max %6.1f%%) "
                        % (rows[label]["avg_pct"], rows[label]["max_pct"])
                        for label in labels)
        lines.append("%-12s%s" % (category, cells))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 4 + censorship coverage
# ---------------------------------------------------------------------------

class Fig4Result:
    """Country histograms for (a) all responses and (b) unexpected ones."""

    def __init__(self, all_counts, unexpected_counts):
        self.all_counts = all_counts
        self.unexpected_counts = unexpected_counts

    @staticmethod
    def _shares(counts):
        total = sum(counts.values()) or 1
        return sorted(((country, percentage(count, total))
                       for country, count in counts.items()),
                      key=lambda item: (-item[1], item[0]))

    def all_shares(self):
        return self._shares(self.all_counts)

    def unexpected_shares(self):
        return self._shares(self.unexpected_counts)


def social_geography(report, geoip, social_domains):
    """Figure 4: resolver-country distribution for the social domains."""
    social = {normalize_name(d) for d in social_domains}
    all_resolvers = set()
    unexpected_resolvers = set()
    for observation in report.observations:
        if normalize_name(observation.domain) in social:
            all_resolvers.add(observation.resolver_ip)
    for response_tuple in report.prefilter.unknown:
        if normalize_name(response_tuple.domain) in social:
            unexpected_resolvers.add(response_tuple.resolver_ip)
    return Fig4Result(geoip.count_by_country(all_resolvers),
                      geoip.count_by_country(unexpected_resolvers))


def censorship_coverage(report, geoip, domains, country):
    """Share of a country's resolvers with unexpected answers for each of
    ``domains`` (e.g. 99.7% of Chinese resolvers for the social set)."""
    domains = {normalize_name(d) for d in domains}
    responders = set()
    unexpected = set()
    for observation in report.observations:
        if normalize_name(observation.domain) not in domains:
            continue
        if geoip.country(observation.resolver_ip) != country:
            continue
        responders.add(observation.resolver_ip)
    for response_tuple in report.prefilter.unknown:
        if normalize_name(response_tuple.domain) not in domains:
            continue
        if geoip.country(response_tuple.resolver_ip) != country:
            continue
        unexpected.add(response_tuple.resolver_ip)
    return {
        "country": country,
        "responders": len(responders),
        "unexpected": len(unexpected),
        "coverage_pct": percentage(len(unexpected), len(responders)),
    }


def gfw_double_responses(report, geoip, legit_addresses, country="CN"):
    """Resolvers showing the GFW signature: more than one response, the
    first forged and a later one carrying the legitimate address(es).

    ``legit_addresses`` maps domain -> set of known-legitimate IPs.
    Returns counts over that country's resolvers.
    """
    country_resolvers = set()
    double = set()
    for observation in report.observations:
        if geoip.country(observation.resolver_ip) != country:
            continue
        country_resolvers.add(observation.resolver_ip)
        if len(observation.all_responses) < 2:
            continue
        legit = legit_addresses.get(normalize_name(observation.domain))
        if not legit:
            continue
        first_addresses = set(observation.all_responses[0][1])
        later_legit = any(set(addresses) & legit
                          for __, addresses in observation.all_responses[1:])
        if later_legit and not (first_addresses & legit):
            double.add(observation.resolver_ip)
    return {
        "country_resolvers": len(country_resolvers),
        "double_response_resolvers": len(double),
        "share_pct": percentage(len(double), len(country_resolvers)),
    }


def unfetchable_breakdown(report, as_registry=None):
    """Where the 11.1% of tuples without HTTP content point (§4.2):
    LAN addresses, addresses in the resolver's own AS or /24, or simply
    dark hosts (disabled CDN edges, dead space)."""
    from repro.netsim.address import is_private, same_slash24
    lan = 0
    same_network = 0
    other = 0
    for capture in report.failed_captures:
        if is_private(capture.ip):
            lan += 1
            continue
        same_as = (as_registry is not None
                   and as_registry.asn_of(capture.ip) is not None
                   and as_registry.asn_of(capture.ip)
                   == as_registry.asn_of(capture.resolver_ip))
        if same_as or same_slash24(capture.ip, capture.resolver_ip):
            same_network += 1
        else:
            other += 1
    total = lan + same_network + other
    return {
        "unfetchable": total,
        "lan_share_pct": percentage(lan, total),
        "same_network_share_pct": percentage(same_network, total),
        "other_share_pct": percentage(other, total),
    }


def legit_addresses_from_report(report):
    """Known-legitimate IPs per domain, from the prefilter's output."""
    legit = {}
    for response_tuple in report.prefilter.legitimate:
        legit.setdefault(normalize_name(response_tuple.domain),
                         set()).add(response_tuple.ip)
    return legit
