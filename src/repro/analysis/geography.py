"""Tables 1 and 2: resolver fluctuation per country and per RIR."""

from repro.util import percentage


def country_fluctuation(first_result, last_result, geoip, top=10):
    """Table 1: top countries at the first scan and their change.

    Returns ``(rows, top_share)`` where each row is a dict with
    ``country``, ``first``, ``last``, ``delta``, ``delta_pct``, and
    ``top_share`` is the share of all first-scan resolvers covered by
    the top rows.
    """
    first_counts = geoip.count_by_country(first_result.responders)
    last_counts = geoip.count_by_country(last_result.responders)
    # Country code breaks count ties: responder sets reach here in
    # set-iteration order, which is not stable across e.g. a snapshot
    # restored from a checkpoint, and rank order must be.
    ranked = sorted(first_counts.items(),
                    key=lambda item: (-item[1], item[0]))
    rows = []
    for country, first_count in ranked[:top]:
        last_count = last_counts.get(country, 0)
        rows.append({
            "country": country,
            "first": first_count,
            "last": last_count,
            "delta": last_count - first_count,
            "delta_pct": percentage(last_count - first_count, first_count),
        })
    total_first = sum(first_counts.values())
    top_share = percentage(sum(row["first"] for row in rows), total_first)
    return rows, top_share


def extreme_changes(first_result, last_result, geoip, min_first=10):
    """Countries with the strongest relative decline/growth (§2.3 text)."""
    first_counts = geoip.count_by_country(first_result.responders)
    last_counts = geoip.count_by_country(last_result.responders)
    changes = []
    for country, first_count in first_counts.items():
        if first_count < min_first:
            continue
        last_count = last_counts.get(country, 0)
        changes.append((country, percentage(last_count - first_count,
                                            first_count)))
    changes.sort(key=lambda item: (item[1], item[0]))
    return changes


def rir_fluctuation(first_result, last_result, geoip):
    """Table 2: per-RIR resolver counts and fluctuation."""
    first_counts = geoip.count_by_rir(first_result.responders)
    last_counts = geoip.count_by_rir(last_result.responders)
    rows = []
    for rir in sorted(first_counts, key=lambda r: (-first_counts[r], r)):
        first_count = first_counts[rir]
        last_count = last_counts.get(rir, 0)
        rows.append({
            "rir": rir,
            "first": first_count,
            "last": last_count,
            "delta": last_count - first_count,
            "delta_pct": percentage(last_count - first_count, first_count),
        })
    return rows


def format_fluctuation(rows, key):
    """Aligned text rendering of a fluctuation table."""
    lines = ["%-8s %10s %10s %10s %8s" % (key, "first", "last", "delta",
                                          "pct")]
    for row in rows:
        lines.append("%-8s %10d %10d %+10d %+7.1f%%" % (
            row[key.lower()], row["first"], row["last"], row["delta"],
            row["delta_pct"]))
    return "\n".join(lines)
