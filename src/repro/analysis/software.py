"""Table 3: DNS software shares from the CHAOS scan."""

import re

from repro.scanner.chaos import (
    OUTCOME_ERROR,
    OUTCOME_HIDDEN,
    OUTCOME_NO_VERSION,
    OUTCOME_VERSION,
)
from repro.util import percentage

# Patterns mapping raw version strings to (software, version) pairs —
# the same normalisation the paper needed to aggregate BIND's verbose
# distribution-specific strings.
_VERSION_PATTERNS = (
    (re.compile(r"unbound[ /-]?(\d+\.\d+\.\d+)", re.I), "Unbound"),
    (re.compile(r"dnsmasq[ /-]?v?(\d+\.\d+)", re.I), "Dnsmasq"),
    (re.compile(r"powerdns.*?(\d+\.\d+\.\d+)", re.I), "PowerDNS"),
    (re.compile(r"microsoft dns (\d+\.\d+\.\d+)", re.I), "MS DNS"),
    (re.compile(r"nominum.*?(\d+\.\d+\.\d+)", re.I), "Nominum"),
    # BIND strings usually lead with the bare version number.
    (re.compile(r"^(\d+\.\d+(?:\.\d+)?)", re.I), "BIND"),
    (re.compile(r"bind[ /-]?(\d+\.\d+(?:\.\d+)?)", re.I), "BIND"),
)


class SoftwareVersionMatcher:
    """Normalises CHAOS version strings to (software, version)."""

    def match(self, text):
        """Return ``(software, version)`` or ``None`` if unrecognised."""
        if not text:
            return None
        for pattern, software in _VERSION_PATTERNS:
            found = pattern.search(text.strip())
            if found:
                version = found.group(1)
                # Keep major.minor.patch at most.
                version = ".".join(version.split(".")[:3])
                return software, version
        return None

    def __call__(self, text):
        return self.match(text)


def software_table(chaos_observations, matcher=None, top=10):
    """Build Table 3 from CHAOS observations.

    Returns a dict with outcome shares and the ranked software rows
    (share computed over version-leaking resolvers, as in the paper).
    """
    matcher = matcher or SoftwareVersionMatcher()
    outcome_counts = {OUTCOME_ERROR: 0, OUTCOME_NO_VERSION: 0,
                      OUTCOME_HIDDEN: 0, OUTCOME_VERSION: 0}
    version_counts = {}
    for observation in chaos_observations:
        if observation.outcome not in outcome_counts:
            continue
        outcome_counts[observation.outcome] += 1
        if observation.outcome == OUTCOME_VERSION:
            matched = matcher.match(observation.version_string)
            key = ("%s %s" % matched) if matched else "unrecognised"
            version_counts[key] = version_counts.get(key, 0) + 1
    total = sum(outcome_counts.values())
    leaking = outcome_counts[OUTCOME_VERSION]
    rows = [{"software": name, "count": count,
             "share_pct": percentage(count, leaking)}
            for name, count in sorted(version_counts.items(),
                                      key=lambda item: -item[1])[:top]]
    return {
        "responding": total,
        "error_share_pct": percentage(outcome_counts[OUTCOME_ERROR], total),
        "no_version_share_pct": percentage(
            outcome_counts[OUTCOME_NO_VERSION], total),
        "hidden_share_pct": percentage(outcome_counts[OUTCOME_HIDDEN],
                                       total),
        "version_share_pct": percentage(leaking, total),
        "version_leaking": leaking,
        "rows": rows,
    }


def format_software_table(table):
    """Aligned text rendering of the Table-3 result."""
    lines = [
        "CHAOS responders: %d" % table["responding"],
        "  error both queries: %.1f%%" % table["error_share_pct"],
        "  NOERROR, no version: %.1f%%" % table["no_version_share_pct"],
        "  hidden/arbitrary:    %.1f%%" % table["hidden_share_pct"],
        "  version leaked:      %.1f%%  (%d resolvers)"
        % (table["version_share_pct"], table["version_leaking"]),
        "",
        "%-22s %8s %7s" % ("software", "count", "share"),
    ]
    for row in table["rows"]:
        lines.append("%-22s %8d %6.1f%%" % (row["software"], row["count"],
                                            row["share_pct"]))
    return "\n".join(lines)
