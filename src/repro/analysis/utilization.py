"""Section 2.6: resolver utilization from cache-snooping traces.

Each resolver's TTL trace is classified into the paper's behaviour
classes; a resolver is *in use* when at least three TLDs are observed
being re-added to its cache after expiring (the >=3 threshold guards
against other researchers' scans re-priming caches), and *frequently
used* when at least one TLD reappears within five seconds of expiring.
"""

from repro.util import percentage

CLASS_UNRESPONSIVE = "unresponsive"
CLASS_EMPTY = "empty-responses"
CLASS_SINGLE = "single-response"
CLASS_STATIC_TTL = "static-ttl"
CLASS_ZERO_TTL = "zero-ttl"
CLASS_RESETTING = "ttl-resetting"
CLASS_IN_USE = "in-use"
CLASS_DECREASING = "decreasing-insufficient"
CLASS_IDLE = "idle"

FREQUENT_GAP_SECONDS = 5.0
IN_USE_TLD_THRESHOLD = 3
KNOWN_TLD_NS_TTL = 172800


def _tld_events(series):
    """Refresh events for one TLD: (estimated_gap, full_ttl) per re-add.

    A re-add shows as the observed TTL *increasing* between consecutive
    probes.  The gap between expiry and re-add is estimated from probe
    times and the (maximum-observed) full TTL.
    """
    numeric = [(t, v) for t, v in series if isinstance(v, (int, float))]
    if len(numeric) < 2:
        return [], numeric
    # The registries' NS TTLs are public constants (two days for the
    # snooped TLDs); knowing the full TTL is what makes the expiry-to-
    # re-add gap computable from hourly probes.
    full_ttl = max([KNOWN_TLD_NS_TTL] + [v for __, v in numeric])
    events = []
    for (t0, v0), (t1, v1) in zip(numeric, numeric[1:]):
        elapsed = t1 - t0
        expected = v0 - elapsed
        if v1 > expected + 1.0:  # TTL went up: the entry was re-added
            expiry_time = t0 + v0
            readd_time = t1 - (full_ttl - v1)
            gap = max(0.0, readd_time - expiry_time)
            refreshed_before_expiry = expected > 0
            events.append((gap, refreshed_before_expiry))
    return events, numeric


def classify_trace(trace):
    """Classify one :class:`SnoopingTrace` into a §2.6 behaviour class.

    Returns ``(class, detail)`` where detail carries per-class extras
    (e.g. whether an in-use resolver is frequently used).
    """
    all_values = [value for series in trace.observations.values()
                  for __, value in series]
    answered = [value for value in all_values if value is not None]
    if not answered:
        return CLASS_UNRESPONSIVE, {}
    if all(value == "empty" for value in answered):
        return CLASS_EMPTY, {}
    numeric = [value for value in answered
               if isinstance(value, (int, float))]
    per_tld_counts = [sum(1 for __, v in series if v is not None)
                      for series in trace.observations.values()]
    if numeric and all(count <= 1 for count in per_tld_counts):
        # At most one answer per TLD before falling silent.
        return CLASS_SINGLE, {}
    if numeric and all(value == 0 for value in numeric):
        return CLASS_ZERO_TTL, {}
    if numeric and len(set(numeric)) == 1:
        return CLASS_STATIC_TTL, {}

    refreshed_tlds = 0
    frequent = False
    early_resets = 0
    decreasing_only = 0
    for tld, series in trace.observations.items():
        events, numeric_series = _tld_events(series)
        real_refreshes = [gap for gap, before_expiry in events
                          if not before_expiry]
        if real_refreshes:
            refreshed_tlds += 1
            if min(real_refreshes) <= FREQUENT_GAP_SECONDS:
                frequent = True
        elif events:
            early_resets += 1
        elif len(numeric_series) >= 2:
            decreasing_only += 1
    if refreshed_tlds >= IN_USE_TLD_THRESHOLD:
        return CLASS_IN_USE, {"frequent": frequent,
                              "refreshed_tlds": refreshed_tlds}
    if early_resets > 0:
        return CLASS_RESETTING, {}
    if decreasing_only > 0:
        return CLASS_DECREASING, {}
    return CLASS_IDLE, {}


def utilization_summary(traces):
    """Aggregate trace classifications into the §2.6 shares."""
    counts = {}
    frequent = 0
    for trace in traces:
        cls, detail = classify_trace(trace)
        counts[cls] = counts.get(cls, 0) + 1
        if cls == CLASS_IN_USE and detail.get("frequent"):
            frequent += 1
    total = len(traces)
    responding = total - counts.get(CLASS_UNRESPONSIVE, 0)
    return {
        "total": total,
        "responding": responding,
        "responding_share_pct": percentage(responding, total),
        "class_counts": counts,
        "class_shares_pct": {cls: percentage(count, responding)
                             for cls, count in counts.items()
                             if cls != CLASS_UNRESPONSIVE},
        "in_use_share_pct": percentage(counts.get(CLASS_IN_USE, 0),
                                       responding),
        "frequent_share_pct": percentage(frequent, responding),
    }


def format_utilization(summary):
    lines = ["snooped resolvers: %d (responding: %.1f%%)" % (
        summary["total"], summary["responding_share_pct"])]
    for cls, share in sorted(summary["class_shares_pct"].items(),
                             key=lambda item: -item[1]):
        lines.append("  %-24s %6.1f%%" % (cls, share))
    lines.append("  %-24s %6.1f%%" % ("frequent (of responding)",
                                      summary["frequent_share_pct"]))
    return "\n".join(lines)
