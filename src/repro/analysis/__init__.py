"""Analyses that turn raw measurements into the paper's tables and figures.

Each module corresponds to one (or a small group of) results:

* :mod:`repro.analysis.magnitude` — Figure 1 (weekly resolver counts).
* :mod:`repro.analysis.geography` — Tables 1 and 2 (country/RIR
  fluctuation).
* :mod:`repro.analysis.fluctuation` — §2.3's AS-level drop attribution and
  dark-network classification.
* :mod:`repro.analysis.software` — Table 3 (CHAOS software shares).
* :mod:`repro.analysis.devices` — Table 4 (hardware/OS fingerprints).
* :mod:`repro.analysis.churn` — Figure 2 (IP-churn survival) and the
  dynamic-rDNS attribution.
* :mod:`repro.analysis.utilization` — §2.6 (cache-snooping usage classes).
* :mod:`repro.analysis.manipulation` — §4.1, Table 5, Figure 4, and the
  censorship-coverage statistics.
* :mod:`repro.analysis.casestudies` — §4.3 (ads, proxies, phishing, mail,
  malware).
"""

from repro.analysis.magnitude import magnitude_series
from repro.analysis.geography import country_fluctuation, rir_fluctuation
from repro.analysis.fluctuation import (
    as_fluctuation,
    classify_dark_networks,
    weekly_as_history,
)
from repro.analysis.software import SoftwareVersionMatcher, software_table
from repro.analysis.devices import device_table
from repro.analysis.churn import churn_survival, dynamic_rdns_share
from repro.analysis.utilization import classify_trace, utilization_summary
from repro.analysis.manipulation import (
    Fig4Result,
    censorship_coverage,
    classification_table,
    prefilter_summary,
    social_geography,
    suspicious_behavior_stats,
    unfetchable_breakdown,
)
from repro.analysis.casestudies import case_study_summary

__all__ = [
    "Fig4Result",
    "SoftwareVersionMatcher",
    "as_fluctuation",
    "case_study_summary",
    "censorship_coverage",
    "churn_survival",
    "classification_table",
    "classify_dark_networks",
    "classify_trace",
    "country_fluctuation",
    "device_table",
    "dynamic_rdns_share",
    "magnitude_series",
    "prefilter_summary",
    "rir_fluctuation",
    "social_geography",
    "software_table",
    "suspicious_behavior_stats",
    "unfetchable_breakdown",
    "utilization_summary",
    "weekly_as_history",
]
