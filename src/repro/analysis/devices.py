"""Table 4: device fingerprinting shares (hardware and OS)."""

from repro.util import percentage


def device_table(classifications, total_scanned=None):
    """Build Table 4 from fingerprint classifications.

    ``classifications`` maps ip -> (hardware, os, vendor), as returned by
    :meth:`FingerprintMatcher.classify_all` — it contains only hosts that
    responded on at least one TCP port.  ``total_scanned`` (all resolvers
    probed) yields the TCP-responding share (the paper's 26.3%).
    """
    # Table 4's hardware columns: anything outside the six named
    # categories (NAS, DSLAM, generic servers, ...) rolls into "Others".
    named = {"Router", "Embedded", "Firewall", "Camera", "DVR", "Unknown"}
    hardware_counts = {}
    os_counts = {}
    vendor_counts = {}
    for hardware, os_name, vendor in classifications.values():
        if hardware not in named:
            hardware = "Others"
        hardware_counts[hardware] = hardware_counts.get(hardware, 0) + 1
        os_counts[os_name] = os_counts.get(os_name, 0) + 1
        if vendor:
            vendor_counts[vendor] = vendor_counts.get(vendor, 0) + 1
    responders = len(classifications)

    def shares(counts):
        return [{"name": name, "count": count,
                 "share_pct": percentage(count, responders)}
                for name, count in sorted(counts.items(),
                                          key=lambda item: -item[1])]

    table = {
        "tcp_responders": responders,
        "hardware": shares(hardware_counts),
        "os": shares(os_counts),
        "vendors": shares(vendor_counts),
    }
    if total_scanned:
        table["tcp_responding_share_pct"] = percentage(responders,
                                                       total_scanned)
    return table


def share_of(table, section, name):
    """Convenience lookup: the share of one row (0.0 when absent)."""
    for row in table[section]:
        if row["name"] == name:
            return row["share_pct"]
    return 0.0


def format_device_table(table):
    """Aligned text rendering of the Table-4 result."""
    lines = ["TCP responders: %d" % table["tcp_responders"]]
    if "tcp_responding_share_pct" in table:
        lines[0] += "  (%.1f%% of scanned resolvers)" % \
            table["tcp_responding_share_pct"]
    for section in ("hardware", "os"):
        lines.append("")
        lines.append("%-14s %8s %7s" % (section, "count", "share"))
        for row in table[section]:
            lines.append("%-14s %8d %6.1f%%" % (row["name"], row["count"],
                                                row["share_pct"]))
    return "\n".join(lines)
