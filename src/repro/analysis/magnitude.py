"""Figure 1: weekly counts of responding resolvers by status code."""


def magnitude_series(snapshots):
    """Build the Figure-1 time series from campaign snapshots.

    Returns a list of dicts with ``week``, ``all``, ``noerror``,
    ``refused``, and ``servfail`` counts.
    """
    series = []
    for snapshot in snapshots:
        row = {"week": snapshot.week}
        row.update(snapshot.result.counts())
        series.append(row)
    return series


def decline_ratio(series, key="noerror"):
    """End-over-start ratio of a magnitude series (the 26.8M -> 17.8M
    decline of the paper corresponds to ~0.66)."""
    if not series or not series[0][key]:
        return 0.0
    return series[-1][key] / series[0][key]


def format_series(series):
    """Render the series as an aligned text table (one row per week)."""
    lines = ["week    all  noerror  refused  servfail"]
    for row in series:
        lines.append("%4d %6d  %7d  %7d  %8d" % (
            row["week"], row["all"], row["noerror"], row["refused"],
            row["servfail"]))
    return "\n".join(lines)
