"""AS-level fluctuation and dark-network attribution (paper §2.3).

The paper traced most of the global decline to a handful of networks
(an Argentinean telco at -97.8%, a Korean ISP from 434,567 to 22) and
classified 28 networks that went completely dark into: (i) blocking the
scanner (still alive in the verification scan), (ii) newly deployed DNS
filtering, or (iii) genuine shutdown — using a >=100-resolvers-per-week
threshold to separate filtering from shutdown.
"""

from repro.util import percentage

EXPLANATION_BLOCKED = "scanner-blocked"
EXPLANATION_FILTERED = "dns-filtering"
EXPLANATION_SHUTDOWN = "shutdown"


def as_fluctuation(first_result, last_result, as_registry, top=10):
    """Largest per-AS resolver drops between two scans."""
    def count_by_as(result):
        counts = {}
        for ip in result.responders:
            asn = as_registry.asn_of(ip)
            if asn is not None:
                counts[asn] = counts.get(asn, 0) + 1
        return counts

    first_counts = count_by_as(first_result)
    last_counts = count_by_as(last_result)
    rows = []
    for asn, first_count in first_counts.items():
        last_count = last_counts.get(asn, 0)
        system = as_registry.get(asn)
        rows.append({
            "asn": asn,
            "name": system.name if system else "AS%d" % asn,
            "country": system.country if system else "??",
            "first": first_count,
            "last": last_count,
            "delta": last_count - first_count,
            "delta_pct": percentage(last_count - first_count, first_count),
        })
    # ASN breaks delta ties so the ranking is independent of responder
    # set-iteration order (e.g. snapshots restored from a checkpoint).
    rows.sort(key=lambda row: (row["delta"], row["asn"]))
    return rows[:top]


def weekly_as_history(snapshots, as_registry, asns=None):
    """Per-AS responder counts per weekly snapshot.

    Returns ``{asn: [count_week0, count_week1, ...]}``; restrict to
    ``asns`` when given.  This is the input
    :func:`classify_dark_networks` uses to tell abrupt filtering apart
    from gradual shutdown.
    """
    wanted = set(asns) if asns is not None else None
    history = {}
    for index, snapshot in enumerate(snapshots):
        weekly = {}
        for ip in snapshot.result.responders:
            asn = as_registry.asn_of(ip)
            if asn is None or (wanted is not None and asn not in wanted):
                continue
            weekly[asn] = weekly.get(asn, 0) + 1
        keys = wanted if wanted is not None else set(weekly)
        for asn in keys:
            history.setdefault(asn, [0] * index).append(
                weekly.get(asn, 0))
        for asn, counts in history.items():
            while len(counts) < index + 1:
                counts.append(0)
    return history


def dark_networks(first_result, last_result, as_registry, min_first=1):
    """ASes with resolvers at the first scan and none at the last."""
    rows = as_fluctuation(first_result, last_result, as_registry,
                          top=10 ** 9)
    return [row for row in rows
            if row["first"] >= min_first and row["last"] == 0]


def classify_dark_networks(dark_rows, verification_result, as_registry,
                           weekly_history=None, filtering_threshold=100):
    """Attribute each dark network to one of the three explanations.

    * If the verification scan (from a second source) still sees
      resolvers in the AS, the primary scanner was blocked.
    * Else, if the network operated >= ``filtering_threshold`` resolvers
      in the week before going dark, assume DNS filtering was deployed.
    * Otherwise assume the resolvers were genuinely shut down.

    ``weekly_history`` optionally maps asn -> list of weekly counts; when
    absent the first-scan count stands in for the pre-dark level.
    """
    verification_by_as = {}
    if verification_result is not None:
        for ip in verification_result.responders:
            asn = as_registry.asn_of(ip)
            if asn is not None:
                verification_by_as[asn] = verification_by_as.get(asn, 0) + 1
    classified = []
    for row in dark_rows:
        asn = row["asn"]
        if verification_by_as.get(asn, 0) > 0:
            explanation = EXPLANATION_BLOCKED
        else:
            history = (weekly_history or {}).get(asn)
            if history is not None:
                pre_dark = 0
                for count in history:
                    if count == 0:
                        break
                    pre_dark = count
            else:
                pre_dark = row["first"]
            explanation = (EXPLANATION_FILTERED
                           if pre_dark >= filtering_threshold
                           else EXPLANATION_SHUTDOWN)
        classified.append(dict(row, explanation=explanation))
    return classified


def broadband_share_of_top_networks(result, as_registry, top=25):
    """Share of the top-N networks (by resolver count) that are broadband
    providers (the paper's 76.4% / "at least 20 of 25" observation)."""
    counts = {}
    for ip in result.responders:
        asn = as_registry.asn_of(ip)
        if asn is not None:
            counts[asn] = counts.get(asn, 0) + 1
    ranked = sorted(counts.items(),
                    key=lambda item: (-item[1], item[0]))[:top]
    if not ranked:
        return 0.0, []
    rows = []
    broadband_resolvers = 0
    total_resolvers = 0
    for asn, count in ranked:
        system = as_registry.get(asn)
        kind = system.kind if system else "unknown"
        rows.append({"asn": asn, "name": system.name if system else "?",
                     "kind": kind, "resolvers": count})
        total_resolvers += count
        if kind == "broadband":
            broadband_resolvers += count
    return percentage(broadband_resolvers, total_resolvers), rows
