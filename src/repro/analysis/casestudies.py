"""Section 4.3 case studies: ads, proxies, phishing, mail, malware.

Extracts from pipeline reports the small-but-telling populations the
paper highlights: ad redirections and injections, transparent proxies
(TLS vs HTTP-only), credential-phishing hosts, redirected mail traffic,
and fake update pages serving malware downloaders.
"""

import re

from repro.core.labeling import (
    LABEL_LOGIN,
    LABEL_MISC,
    SUBLABEL_AD_BLANKING,
    SUBLABEL_AD_INJECTION,
    SUBLABEL_FAKE_SEARCH_ADS,
    SUBLABEL_MALWARE,
    SUBLABEL_PHISHING,
    SUBLABEL_PROXY,
)


def _group(labeled, predicate):
    resolvers = set()
    ips = set()
    for item in labeled:
        if predicate(item):
            resolvers.add(item.capture.resolver_ip)
            ips.add(item.capture.ip)
    return {"resolvers": len(resolvers), "ips": len(ips),
            "ip_list": sorted(ips)}


def case_study_summary(report, network=None, ground_truth_bodies=None):
    """All §4.3 case-study counts from one pipeline report.

    Cluster-level labels are refined per capture for the Misc sublabels
    (the paper's fine-grained pass, §3.6): a bank-phish page differs
    from the original by one form action, so coarse clustering places
    it next to proxied originals — only a per-capture check against the
    ground truth separates the two.
    """
    from repro.core.labeling import ClusterLabeler, LabeledCapture
    ground_truth = ground_truth_bodies or report.ground_truth_bodies
    labeled = report.labeled
    if ground_truth:
        refiner = ClusterLabeler(ground_truth)
        refined = []
        for item in labeled:
            if item.label == LABEL_MISC:
                label, sublabel = refiner.label_capture(item.capture)
                refined.append(LabeledCapture(item.capture, label,
                                              sublabel, item.cluster_id))
            else:
                refined.append(item)
        labeled = refined
    summary = {}

    # Ad/malware groups are verified per capture body (not merely by
    # cluster label): a cluster exemplar decides the label, but counting
    # the serving IPs requires the signature in the member itself.
    from repro.core.labeling import (
        _BLANKED_AD_RE,
        _INJECTED_AD_RE,
        _MALWARE_RE,
    )

    def has(regex):
        return lambda item: bool(regex.search(item.capture.body or ""))

    summary["ad_injection"] = _group(
        labeled, lambda item: item.sublabel == SUBLABEL_AD_INJECTION
        and has(_INJECTED_AD_RE)(item))
    summary["ad_blanking"] = _group(
        labeled, lambda item: item.sublabel == SUBLABEL_AD_BLANKING
        and has(_BLANKED_AD_RE)(item))
    summary["fake_search_ads"] = _group(
        labeled, lambda item: item.sublabel == SUBLABEL_FAKE_SEARCH_ADS)
    summary["malware"] = _group(
        labeled, lambda item: item.sublabel == SUBLABEL_MALWARE
        and has(_MALWARE_RE)(item))
    summary["login"] = _group(
        labeled, lambda item: item.label == LABEL_LOGIN)

    # Proxies: split TLS-capable from HTTP-only when the network is
    # available to re-probe (the paper's distinction, §4.3).
    proxies = [item for item in labeled
               if item.sublabel == SUBLABEL_PROXY]
    if network is not None:
        tls_items = [item for item in proxies
                     if network.tls_handshake(
                         None, item.capture.ip,
                         sni=item.capture.domain) is not None]
        tls_ips = {item.capture.ip for item in tls_items}
        summary["proxy_tls"] = _group(
            proxies, lambda item: item.capture.ip in tls_ips)
        summary["proxy_http_only"] = _group(
            proxies, lambda item: item.capture.ip not in tls_ips)
    else:
        summary["proxy_all"] = _group(proxies, lambda item: True)

    # Phishing, with the PayPal image-slice signature called out.
    phishing = [item for item in labeled
                if item.sublabel == SUBLABEL_PHISHING]
    summary["phishing"] = _group(phishing, lambda item: True)
    paypal = [item for item in phishing
              if "paypal" in item.capture.domain.lower()]
    summary["phishing_paypal"] = _group(paypal, lambda item: True)
    if paypal:
        body = paypal[0].capture.body or ""
        summary["phishing_paypal"]["img_tags"] = len(
            re.findall(r"<img\b", body, re.IGNORECASE))
        summary["phishing_paypal"]["posts_to_php"] = bool(
            re.search(r"action=\"[^\"]*\.php\"", body))
    bank = [item for item in phishing
            if "paypal" not in item.capture.domain.lower()]
    summary["phishing_bank"] = _group(bank, lambda item: True)

    # Mail: listeners and banner copies.
    listeners, banner_matches = _classify_mail(report)
    summary["mail_listeners"] = listeners
    summary["mail_banner_copies"] = banner_matches
    return summary


def _classify_mail(report):
    from repro.core.pipeline import ManipulationPipeline
    listeners, matches = ManipulationPipeline.classify_mail(
        report.mail_captures)
    return (
        {"resolvers": len({c.resolver_ip for c in listeners}),
         "ips": len({c.ip for c in listeners})},
        {"resolvers": len({c.resolver_ip for c in matches}),
         "ips": len({c.ip for c in matches})},
    )


def format_case_studies(summary):
    lines = ["%-22s %10s %6s" % ("case study", "resolvers", "ips")]
    for name, group in summary.items():
        if not isinstance(group, dict) or "resolvers" not in group:
            continue
        lines.append("%-22s %10d %6d" % (name, group["resolvers"],
                                         group.get("ips", 0)))
    return "\n".join(lines)
