"""Figure 2: IP-address churn of the initial resolver cohort (paper §2.5).

The cohort is the set of addresses answering the first scan; each later
scan measures how many of those *exact addresses* still resolve.  The
paper finds 52.2% gone within one week, >40% within the first day, and
4.0% still stable after 55 weeks; 67.4% of the day-one leavers carry
dynamic-assignment tokens in their rDNS names.
"""

from repro.inetmodel.rdns import has_dynamic_token
from repro.util import percentage


def churn_survival(snapshots, cohort=None):
    """The Figure-2 survival curve.

    ``snapshots`` are campaign snapshots; the cohort defaults to the
    first week's responders.  Returns a list of (week, surviving_pct).
    """
    if not snapshots:
        return []
    if cohort is None:
        # The paper's cohort is the 26,820,486 NOERROR resolvers of the
        # first scan.
        cohort = set(snapshots[0].result.noerror)
    curve = []
    for snapshot in snapshots:
        alive = len(cohort & snapshot.result.responders)
        curve.append((snapshot.week, percentage(alive, len(cohort))))
    return curve


def day_one_leavers(first_result, day_one_result, cohort=None):
    """Addresses from the cohort that no longer answer one day later."""
    if cohort is None:
        cohort = set(first_result.noerror)
    return cohort - set(day_one_result.responders)


def dynamic_rdns_share(leaver_ips, rdns):
    """Of the leavers that have rDNS records, the share whose PTR names
    indicate dynamic address assignment (broadband/dialup/dynamic/...).

    ``rdns`` is either a live registry or a plain ``{ip: ptr}`` snapshot
    captured at scan time — the latter matters because once a leaver
    rebinds, the live registry no longer holds its old PTR.
    """
    lookup = rdns.ptr if hasattr(rdns, "ptr") else rdns.get
    with_records = 0
    dynamic = 0
    for ip in leaver_ips:
        name = lookup(ip)
        if not name:
            continue
        with_records += 1
        if has_dynamic_token(name):
            dynamic += 1
    return {
        "leavers": len(leaver_ips),
        "with_rdns": with_records,
        "dynamic": dynamic,
        "dynamic_share_pct": percentage(dynamic, with_records),
    }


def format_survival(curve):
    lines = ["week  surviving"]
    for week, pct in curve:
        lines.append("%4d  %8.1f%%" % (week, pct))
    return "\n".join(lines)
