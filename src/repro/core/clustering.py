"""Agglomerative hierarchical clustering with average linkage (paper §3.6).

Classic bottom-up agglomeration: every item starts as its own cluster and
the closest pair merges until the closest distance exceeds the threshold.
Average linkage (UPGMA) is maintained exactly via the Lance-Williams
update, so the merge history — returned as a dendrogram — reflects true
mean pairwise distances, which is what lets an analyst inspect how groups
formed (the paper's stated reason for choosing hierarchical clustering).

Two agglomeration algorithms produce that history:

* ``nn-chain`` (the default): the nearest-neighbor-chain algorithm.
  Walks chains of nearest neighbors until a reciprocal pair is found
  and merges it.  For reducible linkages — average, single, and
  complete all are — reciprocal nearest neighbors remain reciprocal
  under later merges, so the merge *tree* is identical to always
  merging the globally closest pair; only the discovery order differs.
  O(n²) total after the distance matrix.
* ``pair-scan``: the direct transcription — rescan all active pairs for
  the global minimum before every merge, O(n³).  Kept as the oracle the
  equivalence property tests and benchmarks compare against.

Because reducible linkages are monotone (a merged cluster is never
closer to a bystander than the nearer of its parts was), sorting the
NN-chain merges by distance yields the same bottom-up order the
pair-scan discovers, and cutting at the threshold keeps a prefix of
that order.
"""


class Cluster:
    """A final cluster: member indices plus the items themselves."""

    def __init__(self, indices, items):
        self.indices = list(indices)
        self.items = list(items)

    def __len__(self):
        return len(self.indices)

    def __iter__(self):
        return iter(self.items)

    def representative(self):
        """The first member, used as the cluster's exemplar for labeling."""
        return self.items[0]

    def __repr__(self):
        return "Cluster(%d items)" % len(self.indices)


class Dendrogram:
    """Merge history: (cluster_a, cluster_b, distance, new_size) rows, in
    merge order — the inspectable record hierarchical clustering offers."""

    def __init__(self):
        self.merges = []

    def record(self, left, right, distance, size):
        self.merges.append((left, right, distance, size))

    def __len__(self):
        return len(self.merges)

    def merge_distances(self):
        return [distance for __, __, distance, __ in self.merges]


def _distance_matrix(items, distance_fn):
    n = len(items)
    distance = [[0.0] * n for __ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            d = distance_fn(items[i], items[j])
            distance[i][j] = d
            distance[j][i] = d
    return distance


def _lance_williams(linkage, size_i, size_j, d_ik, d_jk):
    """Distance from the merge of clusters i and j to bystander k."""
    if linkage == "average":
        return (size_i * d_ik + size_j * d_jk) / (size_i + size_j)
    if linkage == "single":
        return min(d_ik, d_jk)
    return max(d_ik, d_jk)  # complete


def hierarchical_cluster(items, distance_fn, threshold, linkage="average",
                         algorithm="nn-chain"):
    """Cluster ``items`` bottom-up; returns ``(clusters, dendrogram)``.

    ``distance_fn(a, b)`` must be symmetric and non-negative.  ``linkage``
    selects how inter-cluster distance is updated after a merge:
    ``average`` (UPGMA, the paper's choice), ``single``, or ``complete``.
    Merging stops when the smallest inter-cluster distance exceeds
    ``threshold``.  ``algorithm`` picks the agglomeration strategy —
    ``nn-chain`` (O(n²), the default) or ``pair-scan`` (O(n³), the
    direct transcription kept as the equivalence oracle); both produce
    the same clusters and the same dendrogram up to floating-point
    noise in tied/accumulated averages.
    """
    if linkage not in ("average", "single", "complete"):
        raise ValueError("unknown linkage %r" % linkage)
    if algorithm not in ("nn-chain", "pair-scan"):
        raise ValueError("unknown algorithm %r" % algorithm)
    n = len(items)
    dendrogram = Dendrogram()
    if n == 0:
        return [], dendrogram
    if n == 1:
        return [Cluster([0], [items[0]])], dendrogram
    distance = _distance_matrix(items, distance_fn)
    if algorithm == "pair-scan":
        members = _agglomerate_pair_scan(n, distance, threshold, linkage,
                                         dendrogram)
    else:
        members = _agglomerate_nn_chain(n, distance, threshold, linkage,
                                        dendrogram)
    clusters = [Cluster(indices, [items[index] for index in indices])
                for __, indices in sorted(members.items())]
    return clusters, dendrogram


def _agglomerate_pair_scan(n, distance, threshold, linkage, dendrogram):
    """Merge the globally closest pair until it exceeds the threshold."""
    active = set(range(n))
    members = {i: [i] for i in range(n)}
    while len(active) > 1:
        best = None
        best_pair = None
        active_list = sorted(active)
        for index_a, i in enumerate(active_list):
            row = distance[i]
            for j in active_list[index_a + 1:]:
                d = row[j]
                if best is None or d < best:
                    best = d
                    best_pair = (i, j)
        if best is None or best > threshold:
            break
        i, j = best_pair
        size_i = len(members[i])
        size_j = len(members[j])
        # Lance-Williams update of distances from the merged cluster
        # (stored under index i) to every other active cluster.
        for k in active:
            if k in (i, j):
                continue
            updated = _lance_williams(linkage, size_i, size_j,
                                      distance[i][k], distance[j][k])
            distance[i][k] = updated
            distance[k][i] = updated
        members[i] = members[i] + members[j]
        del members[j]
        active.remove(j)
        dendrogram.record(i, j, best, len(members[i]))
    return members


def _agglomerate_nn_chain(n, distance, threshold, linkage, dendrogram):
    """Nearest-neighbor-chain agglomeration, O(n²).

    Builds the *complete* merge tree first — following chains of nearest
    neighbors costs O(n) per merge instead of rescanning all pairs —
    then sorts the merges by distance (valid because reducible linkages
    are monotone: every parent merge is at least as distant as its
    children) and replays the prefix at or below the threshold.  The
    replayed history is exactly what the pair-scan records.
    """
    alive = [True] * n
    size = [1] * n
    raw_merges = []                  # (kept index, dropped index, distance)
    stack = []
    next_seed = 0
    remaining = n
    while remaining > 1:
        if not stack:
            while not alive[next_seed]:
                next_seed += 1
            stack.append(next_seed)
        top = stack[-1]
        prev = stack[-2] if len(stack) >= 2 else -1
        row = distance[top]
        best = None
        best_j = -1
        for j in range(n):
            if not alive[j] or j == top:
                continue
            d = row[j]
            if best is None or d < best:
                best = d
                best_j = j
            elif d == best and j == prev:
                # On ties prefer the previous chain element: reciprocity
                # must be detected or the chain would oscillate.
                best_j = j
        if best_j != prev:
            stack.append(best_j)
            continue
        # Reciprocal nearest neighbors: merge under the smaller index,
        # exactly as the pair-scan does.
        stack.pop()
        stack.pop()
        i, j = (top, prev) if top < prev else (prev, top)
        for k in range(n):
            if not alive[k] or k in (i, j):
                continue
            updated = _lance_williams(linkage, size[i], size[j],
                                      distance[i][k], distance[j][k])
            distance[i][k] = updated
            distance[k][i] = updated
        alive[j] = False
        size[i] += size[j]
        raw_merges.append((i, j, best))
        remaining -= 1

    members = {i: [i] for i in range(n)}
    # Stable sort: equal-distance merges keep chain order, which already
    # has children before parents, so the replay below stays bottom-up.
    for i, j, d in sorted(raw_merges, key=lambda merge: merge[2]):
        if d > threshold:
            break
        members[i] = members[i] + members[j]
        del members[j]
        dendrogram.record(i, j, d, len(members[i]))
    return members


def render_dendrogram(dendrogram, labels=None, width=40):
    """ASCII rendering of the merge history — the paper's reason for
    choosing hierarchical clustering is that an analyst can inspect how
    groups formed; this makes the inspection printable.

    ``labels`` optionally maps original item indices to display names.
    One line per merge, indented by merge distance.
    """
    if not dendrogram.merges:
        return "(no merges)"
    max_distance = max(distance for __, __, distance, __
                       in dendrogram.merges) or 1.0
    lines = ["merge  dist   size  clusters"]
    for step, (left, right, distance, size) in enumerate(
            dendrogram.merges):
        bar = "#" * max(1, int(width * distance / max_distance))
        left_name = (labels or {}).get(left, "c%d" % left)
        right_name = (labels or {}).get(right, "c%d" % right)
        lines.append("%5d  %.3f %5d  %s + %s  %s"
                     % (step, distance, size, left_name, right_name,
                        bar))
    return "\n".join(lines)


def cluster_deduplicated(keys_items, distance_fn, threshold,
                         linkage="average", algorithm="nn-chain"):
    """Cluster with exact-duplicate collapsing.

    ``keys_items`` is a list of ``(dedup_key, item)``; items sharing a key
    are clustered once and re-expanded afterwards.  HTTP responses are
    overwhelmingly byte-identical across resolvers (censorship landing
    pages, parking lots), so this is the difference between clustering
    hundreds of profiles and clustering millions.
    """
    first_index_for_key = {}
    groups = {}
    for index, (key, item) in enumerate(keys_items):
        if key not in first_index_for_key:
            first_index_for_key[key] = len(groups)
            groups[key] = []
        groups[key].append(index)
    unique_items = [None] * len(groups)
    group_indices = [None] * len(groups)
    for key, indices in groups.items():
        slot = first_index_for_key[key]
        unique_items[slot] = keys_items[indices[0]][1]
        group_indices[slot] = indices
    clusters, dendrogram = hierarchical_cluster(
        unique_items, distance_fn, threshold, linkage=linkage,
        algorithm=algorithm)
    expanded = []
    for cluster in clusters:
        all_indices = []
        for unique_index in cluster.indices:
            all_indices.extend(group_indices[unique_index])
        all_indices.sort()
        expanded.append(Cluster(
            all_indices, [keys_items[index][1] for index in all_indices]))
    return expanded, dendrogram
