"""Agglomerative hierarchical clustering with average linkage (paper §3.6).

Classic bottom-up agglomeration: every item starts as its own cluster and
the closest pair merges until the closest distance exceeds the threshold.
Average linkage (UPGMA) is maintained exactly via the Lance-Williams
update, so the merge history — returned as a dendrogram — reflects true
mean pairwise distances, which is what lets an analyst inspect how groups
formed (the paper's stated reason for choosing hierarchical clustering).
"""


class Cluster:
    """A final cluster: member indices plus the items themselves."""

    def __init__(self, indices, items):
        self.indices = list(indices)
        self.items = list(items)

    def __len__(self):
        return len(self.indices)

    def __iter__(self):
        return iter(self.items)

    def representative(self):
        """The first member, used as the cluster's exemplar for labeling."""
        return self.items[0]

    def __repr__(self):
        return "Cluster(%d items)" % len(self.indices)


class Dendrogram:
    """Merge history: (cluster_a, cluster_b, distance, new_size) rows, in
    merge order — the inspectable record hierarchical clustering offers."""

    def __init__(self):
        self.merges = []

    def record(self, left, right, distance, size):
        self.merges.append((left, right, distance, size))

    def __len__(self):
        return len(self.merges)

    def merge_distances(self):
        return [distance for __, __, distance, __ in self.merges]


def hierarchical_cluster(items, distance_fn, threshold, linkage="average"):
    """Cluster ``items`` bottom-up; returns ``(clusters, dendrogram)``.

    ``distance_fn(a, b)`` must be symmetric and non-negative.  ``linkage``
    selects how inter-cluster distance is updated after a merge:
    ``average`` (UPGMA, the paper's choice), ``single``, or ``complete``.
    Merging stops when the smallest inter-cluster distance exceeds
    ``threshold``.
    """
    if linkage not in ("average", "single", "complete"):
        raise ValueError("unknown linkage %r" % linkage)
    n = len(items)
    dendrogram = Dendrogram()
    if n == 0:
        return [], dendrogram
    if n == 1:
        return [Cluster([0], [items[0]])], dendrogram

    # Distance matrix between active clusters (dict-of-dict, upper keys).
    distance = [[0.0] * n for __ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            d = distance_fn(items[i], items[j])
            distance[i][j] = d
            distance[j][i] = d

    active = set(range(n))
    members = {i: [i] for i in range(n)}

    while len(active) > 1:
        best = None
        best_pair = None
        active_list = sorted(active)
        for index_a, i in enumerate(active_list):
            row = distance[i]
            for j in active_list[index_a + 1:]:
                d = row[j]
                if best is None or d < best:
                    best = d
                    best_pair = (i, j)
        if best is None or best > threshold:
            break
        i, j = best_pair
        size_i = len(members[i])
        size_j = len(members[j])
        # Lance-Williams update of distances from the merged cluster
        # (stored under index i) to every other active cluster.
        for k in active:
            if k in (i, j):
                continue
            d_ik = distance[i][k]
            d_jk = distance[j][k]
            if linkage == "average":
                updated = (size_i * d_ik + size_j * d_jk) / (size_i + size_j)
            elif linkage == "single":
                updated = min(d_ik, d_jk)
            else:  # complete
                updated = max(d_ik, d_jk)
            distance[i][k] = updated
            distance[k][i] = updated
        members[i] = members[i] + members[j]
        del members[j]
        active.remove(j)
        dendrogram.record(i, j, best, len(members[i]))

    clusters = [Cluster(indices, [items[index] for index in indices])
                for __, indices in sorted(members.items())]
    return clusters, dendrogram


def render_dendrogram(dendrogram, labels=None, width=40):
    """ASCII rendering of the merge history — the paper's reason for
    choosing hierarchical clustering is that an analyst can inspect how
    groups formed; this makes the inspection printable.

    ``labels`` optionally maps original item indices to display names.
    One line per merge, indented by merge distance.
    """
    if not dendrogram.merges:
        return "(no merges)"
    max_distance = max(distance for __, __, distance, __
                       in dendrogram.merges) or 1.0
    lines = ["merge  dist   size  clusters"]
    for step, (left, right, distance, size) in enumerate(
            dendrogram.merges):
        bar = "#" * max(1, int(width * distance / max_distance))
        left_name = (labels or {}).get(left, "c%d" % left)
        right_name = (labels or {}).get(right, "c%d" % right)
        lines.append("%5d  %.3f %5d  %s + %s  %s"
                     % (step, distance, size, left_name, right_name,
                        bar))
    return "\n".join(lines)


def cluster_deduplicated(keys_items, distance_fn, threshold,
                         linkage="average"):
    """Cluster with exact-duplicate collapsing.

    ``keys_items`` is a list of ``(dedup_key, item)``; items sharing a key
    are clustered once and re-expanded afterwards.  HTTP responses are
    overwhelmingly byte-identical across resolvers (censorship landing
    pages, parking lots), so this is the difference between clustering
    hundreds of profiles and clustering millions.
    """
    first_index_for_key = {}
    groups = {}
    for index, (key, item) in enumerate(keys_items):
        if key not in first_index_for_key:
            first_index_for_key[key] = len(groups)
            groups[key] = []
        groups[key].append(index)
    unique_items = [None] * len(groups)
    group_indices = [None] * len(groups)
    for key, indices in groups.items():
        slot = first_index_for_key[key]
        unique_items[slot] = keys_items[indices[0]][1]
        group_indices[slot] = indices
    clusters, dendrogram = hierarchical_cluster(
        unique_items, distance_fn, threshold, linkage=linkage)
    expanded = []
    for cluster in clusters:
        all_indices = []
        for unique_index in cluster.indices:
            all_indices.extend(group_indices[unique_index])
        all_indices.sort()
        expanded.append(Cluster(
            all_indices, [keys_items[index][1] for index in all_indices]))
    return expanded, dendrogram
