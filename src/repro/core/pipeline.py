"""End-to-end orchestration of the Figure 3 processing chain."""

from contextlib import nullcontext

from repro.core.acquisition import DataAcquirer
from repro.core.clustering import cluster_deduplicated
from repro.core.diffcluster import build_diff_profile, diff_cluster
from repro.core.distance import FeatureCache, MemoizedDistance, PageDistance
from repro.core.labeling import (
    ClusterLabeler,
    LABEL_MISC,
    SUBLABEL_UNCLASSIFIED,
)
from repro.core.prefilter import Prefilterer, ResponseTuple
from repro.dnswire.name import normalize_name
from repro.scanner.domainengine import DomainScanEngine
from repro.scanner.domainscan import DomainScanner
from repro.websim.mail import banners_for_provider, provider_for_hostname


class PipelineReport:
    """Everything the pipeline produced, for the analysis layer."""

    def __init__(self):
        self.observations = []
        self.prefilter = None
        self.http_captures = []
        self.mail_captures = []
        self.failed_captures = []
        self.clusters = []
        self.dendrogram = None
        self.labeled = []
        self.diff_clusters = []
        self.ground_truth_bodies = {}
        # Degradation provenance: one entry per stage that failed or ran
        # partially; an empty list means a clean, complete run.
        self.degraded = []

    def mark_degraded(self, stage, reason):
        self.degraded.append({"stage": stage, "reason": reason})

    @property
    def is_degraded(self):
        return bool(self.degraded)

    @property
    def suspicious_resolvers(self):
        return {capture.capture.resolver_ip for capture in self.labeled}

    def labels_by_tuple(self):
        return {(normalize_name(l.capture.domain), l.capture.ip,
                 l.capture.resolver_ip): (l.label, l.sublabel)
                for l in self.labeled}

    def classified_share(self):
        """Share of fetched responses the labeler could classify."""
        if not self.labeled:
            return 1.0
        unclassified = sum(
            1 for l in self.labeled
            if l.label == LABEL_MISC and l.sublabel == SUBLABEL_UNCLASSIFIED)
        return 1.0 - unclassified / len(self.labeled)

    def __repr__(self):
        return ("PipelineReport(%d observations, %d captures, %d clusters)"
                % (len(self.observations), len(self.http_captures),
                   len(self.clusters)))


class ManipulationPipeline:
    """Wires scanning, prefiltering, acquisition, clustering, labeling."""

    def __init__(self, network, resolution_service, as_registry, rdns, ca,
                 known_cdn_common_names, source_ip, domain_catalog,
                 cluster_threshold=0.30, diff_threshold=0.5,
                 distance=None, perf=None, fetch_timeout=None,
                 error_budget=None, shards=1, heartbeat_timeout=None):
        self.network = network
        self.perf = perf
        self.service = resolution_service
        self.as_registry = as_registry
        self.rdns = rdns
        self.ca = ca
        self.known_cdn_common_names = tuple(known_cdn_common_names)
        self.source_ip = source_ip
        self.domain_catalog = {normalize_name(d.name): d
                               for d in domain_catalog}
        self.cluster_threshold = cluster_threshold
        self.diff_threshold = diff_threshold
        # Distance and feature evaluations are memoized for the life of
        # the pipeline: weekly re-runs over largely unchanged content
        # answer most cluster pairs from the caches.
        self.features = FeatureCache(perf=perf)
        self.distance = MemoizedDistance(distance or PageDistance(),
                                         perf=perf)
        self.domain_engine = DomainScanEngine(
            DomainScanner(network, source_ip), shards=shards, perf=perf,
            heartbeat_timeout=heartbeat_timeout)
        self.acquirer = DataAcquirer(network, source_ip,
                                     fetch_timeout=fetch_timeout,
                                     error_budget=error_budget)
        self.prefilterer = Prefilterer(
            network, resolution_service, as_registry, rdns, ca=ca,
            known_cdn_common_names=known_cdn_common_names,
            probe_source_ip=source_ip)

    @property
    def scanner(self):
        """The domain scanner, reachable (and replaceable, for tests)
        through the shard engine that drives it."""
        return self.domain_engine.scanner

    @scanner.setter
    def scanner(self, scanner):
        self.domain_engine.scanner = scanner

    # -- ground truth ---------------------------------------------------------

    def collect_ground_truth(self, domains):
        """Fetch the legitimate representation(s) of each web domain via
        our own trusted resolution path (§3.5, last paragraph)."""
        bodies = {}
        for domain in domains:
            meta = self.domain_catalog.get(normalize_name(domain.name)
                                           if hasattr(domain, "name")
                                           else normalize_name(domain))
            # Fall back to the domain's name attribute before str():
            # str(ScanDomain(...)) is the repr, which would poison the
            # ground-truth key.
            if meta is not None:
                name = meta.name
            else:
                name = getattr(domain, "name", None) or str(domain)
            if meta is not None and (not meta.exists or meta.kind != "web"):
                continue
            result = self.service.resolve_trusted(self.network, name)
            seen = []
            for address in result.addresses[:3]:
                capture = self.acquirer.fetch_http(
                    ResponseTuple(name, address, self.source_ip))
                if capture.fetched and capture.status == 200:
                    if capture.body not in seen:
                        seen.append(capture.body)
            if seen:
                bodies[normalize_name(name)] = seen
        return bodies

    # -- the chain ------------------------------------------------------------

    def _stage(self, name):
        """Perf timer for one Figure 3 step (no-op without a registry)."""
        if self.perf is None:
            return nullcontext()
        return self.perf.stage("pipeline_" + name)

    def run(self, resolver_ips, domains):
        """Execute steps 2–6 of Figure 3 for one domain set.

        ``resolver_ips`` come from a fresh Internet-wide scan (step 1);
        ``domains`` is a list of :class:`ScanDomain`.  Returns a
        :class:`PipelineReport`.

        A failing stage never aborts the chain: its fallback output is
        empty, the failure is recorded in ``report.degraded``, and the
        remaining stages run on whatever survived — the partial report
        the ROADMAP's graceful-degradation goal calls for.
        """
        report = PipelineReport()
        names = [d.name for d in domains]
        # Step 2: domain scan (sharded across workers when shards > 1).
        queries_before = getattr(self.scanner, "queries_sent", 0)
        with self._stage("domain_scan"):
            try:
                report.observations = self.domain_engine.scan(resolver_ips,
                                                              names)
            except Exception as error:
                report.mark_degraded("domain_scan", repr(error))
        if self.perf is not None:
            self.perf.count("pipeline_domain_queries",
                            getattr(self.scanner, "queries_sent", 0)
                            - queries_before)
            self.perf.gauge(
                "pipeline_domain_scan_qps",
                self.perf.rate("pipeline_domain_queries",
                               "pipeline_domain_scan"))
        # Step 3: DNS-based prefiltering.
        with self._stage("prefilter"):
            try:
                report.prefilter = self.prefilterer.process(
                    report.observations, self.domain_catalog)
            except Exception as error:
                report.mark_degraded("prefilter", repr(error))
            # Ground truth content, used by labeling and diff clustering.
            try:
                report.ground_truth_bodies = self.collect_ground_truth(
                    domains)
            except Exception as error:
                report.mark_degraded("ground_truth", repr(error))
        # Step 4: data acquisition for unknown tuples.
        with self._stage("acquisition"):
            unknown = (report.prefilter.unknown
                       if report.prefilter is not None else [])
            try:
                http_captures, mail_captures = self.acquirer.acquire(
                    unknown, self.domain_catalog)
            except Exception as error:
                report.mark_degraded("acquisition", repr(error))
                http_captures, mail_captures = [], []
            if self.acquirer.budget_exhausted:
                report.mark_degraded(
                    "acquisition",
                    "error budget exhausted after %d unreachable "
                    "fetches" % self.acquirer.failed_fetches)
        report.mail_captures = mail_captures
        report.http_captures = [c for c in http_captures if c.fetched]
        report.failed_captures = [c for c in http_captures if not c.fetched]
        # Step 5: coarse clustering (deduplicating identical bodies).
        profile_of = (lambda capture: self.features.profile_of(capture.body))
        keyed = [(capture.body, capture) for capture in report.http_captures]
        with self._stage("clustering"):
            try:
                clusters, dendrogram = cluster_deduplicated(
                    keyed,
                    lambda a, b: self.distance(profile_of(a), profile_of(b)),
                    self.cluster_threshold)
            except Exception as error:
                report.mark_degraded("clustering", repr(error))
                clusters, dendrogram = [], None
        if self.perf is not None:
            # Pair evaluations the body dedup spared the distance
            # matrix: all-pairs over captures minus all-pairs over
            # distinct bodies.
            total = len(keyed)
            unique = len({key for key, __ in keyed})
            self.perf.count("pipeline_distance_evals_avoided",
                            (total * (total - 1) - unique * (unique - 1))
                            // 2)
        report.clusters = clusters
        report.dendrogram = dendrogram
        # Step 6: labeling.
        with self._stage("labeling"):
            try:
                labeler = ClusterLabeler(report.ground_truth_bodies)
                report.labeled = labeler.label_clusters(clusters)
                # Fine-grained diff clustering of near-original
                # modifications.
                diff_profiles = []
                for capture in report.http_captures:
                    truths = report.ground_truth_bodies.get(
                        normalize_name(capture.domain))
                    if not truths or not capture.body:
                        continue
                    profile = build_diff_profile(capture, truths)
                    if 0 < profile.modification_size <= 40:
                        diff_profiles.append(profile)
                if diff_profiles:
                    report.diff_clusters, __ = diff_cluster(
                        diff_profiles, threshold=self.diff_threshold)
            except Exception as error:
                report.mark_degraded("labeling", repr(error))
                report.labeled = []
                report.diff_clusters = []
        if self.perf is not None:
            self.perf.count("pipeline_observations",
                            len(report.observations))
            self.perf.count("pipeline_captures",
                            len(report.http_captures))
            self.perf.gauge("pipeline_distance_cache_hit_rate",
                            self.distance.hit_rate())
            self.perf.gauge("pipeline_feature_cache_hit_rate",
                            self.features.hit_rate())
        return report

    # -- mail classification --------------------------------------------------

    @staticmethod
    def classify_mail(mail_captures):
        """Split mail captures into listener/banner-match groups (§4.3)."""
        listeners = []
        banner_matches = []
        for capture in mail_captures:
            if not capture.fetched:
                continue
            listeners.append(capture)
            provider = provider_for_hostname(capture.domain)
            if provider is not None:
                legit = banners_for_provider(provider)
                if any(banner == legit.get(service)
                       for service, banner in capture.banners.items()):
                    banner_matches.append(capture)
        return listeners, banner_matches
