"""End-to-end orchestration of the Figure 3 processing chain."""

from contextlib import contextmanager, nullcontext

from repro.core.acquisition import DataAcquirer
from repro.core.clustering import cluster_deduplicated
from repro.core.diffcluster import build_diff_profile, diff_cluster
from repro.core.distance import FeatureCache, MemoizedDistance, PageDistance
from repro.core.labeling import (
    ClusterLabeler,
    LABEL_MISC,
    SUBLABEL_UNCLASSIFIED,
)
from repro.core.prefilter import Prefilterer, ResponseTuple
from repro.dnswire.name import normalize_name
from repro.scanner.domainengine import DomainScanEngine
from repro.scanner.domainscan import DomainScanner
from repro.websim.mail import banners_for_provider, provider_for_hostname


class PipelineReport:
    """Everything the pipeline produced, for the analysis layer."""

    def __init__(self):
        self.observations = []
        # Number of domain-scan observations seen.  Equals
        # ``len(observations)`` on a resident run; on a streamed run
        # (``stream_observations``) the list stays empty — observations
        # flowed straight into the prefilter — and only this survives.
        self.observation_count = 0
        self.prefilter = None
        self.http_captures = []
        self.mail_captures = []
        self.failed_captures = []
        self.clusters = []
        self.dendrogram = None
        self.labeled = []
        self.diff_clusters = []
        self.ground_truth_bodies = {}
        # Degradation provenance: one entry per stage that failed or ran
        # partially; an empty list means a clean, complete run.
        self.degraded = []

    def mark_degraded(self, stage, reason):
        self.degraded.append({"stage": stage, "reason": reason})

    @property
    def is_degraded(self):
        return bool(self.degraded)

    @property
    def suspicious_resolvers(self):
        return {capture.capture.resolver_ip for capture in self.labeled}

    def labels_by_tuple(self):
        return {(normalize_name(l.capture.domain), l.capture.ip,
                 l.capture.resolver_ip): (l.label, l.sublabel)
                for l in self.labeled}

    def classified_share(self):
        """Share of fetched responses the labeler could classify."""
        if not self.labeled:
            return 1.0
        unclassified = sum(
            1 for l in self.labeled
            if l.label == LABEL_MISC and l.sublabel == SUBLABEL_UNCLASSIFIED)
        return 1.0 - unclassified / len(self.labeled)

    def __repr__(self):
        return ("PipelineReport(%d observations, %d captures, %d clusters)"
                % (self.observation_count, len(self.http_captures),
                   len(self.clusters)))


@contextmanager
def _nested(outer, inner):
    """Enter two context managers as one (perf timer around span)."""
    with outer, inner:
        yield


class ManipulationPipeline:
    """Wires scanning, prefiltering, acquisition, clustering, labeling."""

    def __init__(self, network, resolution_service, as_registry, rdns, ca,
                 known_cdn_common_names, source_ip, domain_catalog,
                 cluster_threshold=0.30, diff_threshold=0.5,
                 distance=None, perf=None, fetch_timeout=None,
                 error_budget=None, shards=1, heartbeat_timeout=None,
                 stream_observations=False, chunk_rows=65536):
        self.network = network
        self.perf = perf
        # Stream domain-scan observations straight into the prefilter
        # (bounded memory) instead of collecting the full list first.
        # Checkpointed runs fall back to resident collection: the
        # domain_scan stage's committed payload must carry the full
        # observation list for resume.
        self.stream_observations = stream_observations
        self.service = resolution_service
        self.as_registry = as_registry
        self.rdns = rdns
        self.ca = ca
        self.known_cdn_common_names = tuple(known_cdn_common_names)
        self.source_ip = source_ip
        self.domain_catalog = {normalize_name(d.name): d
                               for d in domain_catalog}
        self.cluster_threshold = cluster_threshold
        self.diff_threshold = diff_threshold
        if perf is not None:
            # Shard-merge reduction policies for the pipeline gauges
            # (set once per run; any shard's copy is equally current, so
            # the highest shard index deterministically wins) and the
            # derived QPS rate surfaced by ``format_report``.
            perf.declare_gauge("pipeline_domain_scan_qps", "last")
            perf.declare_gauge("pipeline_distance_cache_hit_rate", "last")
            perf.declare_gauge("pipeline_feature_cache_hit_rate", "last")
            perf.declare_rate("pipeline_domain_qps",
                              "pipeline_domain_queries",
                              "pipeline_domain_scan")
        # Distance and feature evaluations are memoized for the life of
        # the pipeline: weekly re-runs over largely unchanged content
        # answer most cluster pairs from the caches.
        self.features = FeatureCache(perf=perf)
        self.distance = MemoizedDistance(distance or PageDistance(),
                                         perf=perf)
        self.domain_engine = DomainScanEngine(
            DomainScanner(network, source_ip), shards=shards, perf=perf,
            heartbeat_timeout=heartbeat_timeout,
            stream_results=stream_observations, chunk_rows=chunk_rows)
        self.acquirer = DataAcquirer(network, source_ip,
                                     fetch_timeout=fetch_timeout,
                                     error_budget=error_budget)
        self.prefilterer = Prefilterer(
            network, resolution_service, as_registry, rdns, ca=ca,
            known_cdn_common_names=known_cdn_common_names,
            probe_source_ip=source_ip)

    @property
    def scanner(self):
        """The domain scanner, reachable (and replaceable, for tests)
        through the shard engine that drives it."""
        return self.domain_engine.scanner

    @scanner.setter
    def scanner(self, scanner):
        self.domain_engine.scanner = scanner

    # -- ground truth ---------------------------------------------------------

    def collect_ground_truth(self, domains):
        """Fetch the legitimate representation(s) of each web domain via
        our own trusted resolution path (§3.5, last paragraph)."""
        bodies = {}
        for domain in domains:
            meta = self.domain_catalog.get(normalize_name(domain.name)
                                           if hasattr(domain, "name")
                                           else normalize_name(domain))
            # Fall back to the domain's name attribute before str():
            # str(ScanDomain(...)) is the repr, which would poison the
            # ground-truth key.
            if meta is not None:
                name = meta.name
            else:
                name = getattr(domain, "name", None) or str(domain)
            if meta is not None and (not meta.exists or meta.kind != "web"):
                continue
            result = self.service.resolve_trusted(self.network, name)
            seen = []
            for address in result.addresses[:3]:
                capture = self.acquirer.fetch_http(
                    ResponseTuple(name, address, self.source_ip))
                if capture.fetched and capture.status == 200:
                    if capture.body not in seen:
                        seen.append(capture.body)
            if seen:
                bodies[normalize_name(name)] = seen
        return bodies

    # -- the chain ------------------------------------------------------------

    def _stage(self, name):
        """Perf timer + trace span for one Figure 3 step (no-op when
        neither instrument is active)."""
        perf_context = (self.perf.stage("pipeline_" + name)
                        if self.perf is not None else None)
        tracer = getattr(self.network, "tracer", None)
        span_context = tracer.span(name) if tracer is not None else None
        if span_context is None:
            return perf_context if perf_context is not None \
                else nullcontext()
        if perf_context is None:
            return span_context
        return _nested(perf_context, span_context)

    def _unit(self, checkpoint, report, name, compute, apply):
        """One checkpointable stage of the Figure 3 chain.

        Without a checkpoint this is just ``apply(compute())``.  With
        one, a committed stage is restored — its payload re-applied to
        the report, its degradation entries replayed, and the world
        state its commit captured (clock, counters, perf, the domain
        scanner's ``queries_sent``) reinstated — while a fresh stage is
        committed after it applies, then offers the crash plane a shot
        at the ``stage`` boundary.
        """
        if checkpoint is not None:
            record = checkpoint.restore(("stage", name))
            if record is not None:
                from repro.checkpoint import restore_world_state
                payload = record["payload"]
                apply(payload)
                for entry in payload.get("degraded") or ():
                    report.degraded.append(dict(entry))
                state = record["state"] or {}
                restore_world_state(self.network, self.perf, state)
                if "queries_sent" in state and \
                        hasattr(self.scanner, "queries_sent"):
                    self.scanner.queries_sent = state["queries_sent"]
                tracer = getattr(self.network, "tracer", None)
                if tracer is not None:
                    # A zero-duration marker keeps the resumed trace's
                    # stage coverage complete: the stage ran before the
                    # crash, under the same trace id.
                    tracer.emit(name, restored=True)
                return
        degraded_before = len(report.degraded)
        payload = compute()
        apply(payload)
        if checkpoint is not None:
            from repro.checkpoint import capture_world_state
            payload = dict(payload)
            payload["degraded"] = [
                dict(entry) for entry
                in report.degraded[degraded_before:]]
            state = capture_world_state(self.network, self.perf)
            if hasattr(self.scanner, "queries_sent"):
                state["queries_sent"] = self.scanner.queries_sent
            checkpoint.commit(("stage", name), payload, state=state)
            checkpoint.maybe_crash("stage", (name,))

    def run(self, resolver_ips, domains, checkpoint=None):
        """Execute steps 2–6 of Figure 3 for one domain set.

        ``resolver_ips`` come from a fresh Internet-wide scan (step 1);
        ``domains`` is a list of :class:`ScanDomain`.  Returns a
        :class:`PipelineReport`.

        A failing stage never aborts the chain: its fallback output is
        empty, the failure is recorded in ``report.degraded``, and the
        remaining stages run on whatever survived — the partial report
        the ROADMAP's graceful-degradation goal calls for.

        ``checkpoint``, when given, is a :class:`repro.checkpoint`
        scope: every stage's result is committed as it completes, and a
        resumed pipeline re-enters at the first incomplete stage with
        the earlier stages' outputs (and world state) restored.
        """
        report = PipelineReport()
        names = [d.name for d in domains]
        resolver_ips = list(resolver_ips)

        # Step 2: domain scan (sharded across workers when shards > 1).
        # A streamed run fuses steps 2+3: observation batches flow into
        # the prefilter as shards complete (in sequential order, so the
        # result is bit-identical) and the full list is never resident.
        # Checkpointed runs stay resident — the committed domain_scan
        # payload must carry the observations a resume re-applies.
        streaming = self.stream_observations and checkpoint is None
        streamed_prefilter = [None]

        def compute_domain_scan():
            queries_before = getattr(self.scanner, "queries_sent", 0)
            observations = []
            count = 0
            with self._stage("domain_scan"):
                try:
                    scope = (checkpoint.scope("stage", "domain_scan")
                             if checkpoint is not None else None)
                    if streaming:
                        from repro.core.prefilter import PrefilterResult
                        prefilter = PrefilterResult()

                        def consume(batch):
                            self.prefilterer.process_into(
                                prefilter, batch, self.domain_catalog)

                        count = self.domain_engine.scan(
                            resolver_ips, names, checkpoint=scope,
                            consume=consume)
                        streamed_prefilter[0] = prefilter
                    else:
                        observations = self.domain_engine.scan(
                            resolver_ips, names, checkpoint=scope)
                        count = len(observations)
                except Exception as error:
                    report.mark_degraded("domain_scan", repr(error))
            if self.perf is not None:
                self.perf.count("pipeline_domain_queries",
                                getattr(self.scanner, "queries_sent", 0)
                                - queries_before)
                self.perf.gauge(
                    "pipeline_domain_scan_qps",
                    self.perf.rate("pipeline_domain_queries",
                                   "pipeline_domain_scan"))
            return {"observations": observations, "count": count}

        def apply_domain_scan(payload):
            report.observations = payload["observations"]
            report.observation_count = payload.get(
                "count", len(payload["observations"]))

        self._unit(checkpoint, report, "domain_scan",
                   compute_domain_scan, apply_domain_scan)

        # Step 3: DNS-based prefiltering (already folded in when
        # streaming — the stage then just installs the result).
        def compute_prefilter():
            prefilter = None
            with self._stage("prefilter"):
                try:
                    if streaming:
                        prefilter = streamed_prefilter[0]
                    else:
                        prefilter = self.prefilterer.process(
                            report.observations, self.domain_catalog)
                except Exception as error:
                    report.mark_degraded("prefilter", repr(error))
            return {"prefilter": prefilter}

        def apply_prefilter(payload):
            report.prefilter = payload["prefilter"]

        self._unit(checkpoint, report, "prefilter",
                   compute_prefilter, apply_prefilter)

        # Ground truth content, used by labeling and diff clustering.
        def compute_ground_truth():
            bodies = {}
            with self._stage("ground_truth"):
                try:
                    bodies = self.collect_ground_truth(domains)
                except Exception as error:
                    report.mark_degraded("ground_truth", repr(error))
            return {"ground_truth_bodies": bodies}

        def apply_ground_truth(payload):
            report.ground_truth_bodies = payload["ground_truth_bodies"]

        self._unit(checkpoint, report, "ground_truth",
                   compute_ground_truth, apply_ground_truth)

        # Step 4: data acquisition for unknown tuples.
        def compute_acquisition():
            unknown = (report.prefilter.unknown
                       if report.prefilter is not None else [])
            with self._stage("acquisition"):
                try:
                    http_captures, mail_captures = self.acquirer.acquire(
                        unknown, self.domain_catalog)
                except Exception as error:
                    report.mark_degraded("acquisition", repr(error))
                    http_captures, mail_captures = [], []
                if self.acquirer.budget_exhausted:
                    report.mark_degraded(
                        "acquisition",
                        "error budget exhausted after %d unreachable "
                        "fetches" % self.acquirer.failed_fetches)
            return {"http_captures": http_captures,
                    "mail_captures": mail_captures}

        def apply_acquisition(payload):
            http_captures = payload["http_captures"]
            report.mail_captures = payload["mail_captures"]
            report.http_captures = [c for c in http_captures if c.fetched]
            report.failed_captures = [c for c in http_captures
                                      if not c.fetched]

        self._unit(checkpoint, report, "acquisition",
                   compute_acquisition, apply_acquisition)

        # Step 5: coarse clustering (deduplicating identical bodies).
        def compute_clustering():
            profile_of = (
                lambda capture: self.features.profile_of(capture.body))
            keyed = [(capture.body, capture)
                     for capture in report.http_captures]
            with self._stage("clustering"):
                try:
                    clusters, dendrogram = cluster_deduplicated(
                        keyed,
                        lambda a, b: self.distance(profile_of(a),
                                                   profile_of(b)),
                        self.cluster_threshold)
                except Exception as error:
                    report.mark_degraded("clustering", repr(error))
                    clusters, dendrogram = [], None
            if self.perf is not None:
                # Pair evaluations the body dedup spared the distance
                # matrix: all-pairs over captures minus all-pairs over
                # distinct bodies.
                total = len(keyed)
                unique = len({key for key, __ in keyed})
                avoided = (total * (total - 1)
                           - unique * (unique - 1)) // 2
                self.perf.count("pipeline_distance_evals_avoided",
                                avoided)
                # Fold the short-circuited pairs into the memo's stats:
                # hierarchical_cluster asks for each deduplicated pair
                # exactly once, so without this credit the hit-rate
                # gauge reads 0.0 while thousands of pair evaluations
                # were in fact avoided.
                self.distance.credit_avoided(avoided)
            return {"clusters": clusters, "dendrogram": dendrogram}

        def apply_clustering(payload):
            report.clusters = payload["clusters"]
            report.dendrogram = payload["dendrogram"]

        self._unit(checkpoint, report, "clustering",
                   compute_clustering, apply_clustering)

        # Step 6: labeling.
        def compute_labeling():
            labeled = []
            diff_clusters = []
            with self._stage("labeling"):
                try:
                    labeler = ClusterLabeler(report.ground_truth_bodies)
                    labeled = labeler.label_clusters(report.clusters)
                    # Fine-grained diff clustering of near-original
                    # modifications.
                    diff_profiles = []
                    for capture in report.http_captures:
                        truths = report.ground_truth_bodies.get(
                            normalize_name(capture.domain))
                        if not truths or not capture.body:
                            continue
                        profile = build_diff_profile(capture, truths)
                        if 0 < profile.modification_size <= 40:
                            diff_profiles.append(profile)
                    if diff_profiles:
                        diff_clusters, __ = diff_cluster(
                            diff_profiles, threshold=self.diff_threshold)
                except Exception as error:
                    report.mark_degraded("labeling", repr(error))
                    labeled = []
                    diff_clusters = []
            if self.perf is not None:
                self.perf.count("pipeline_observations",
                                report.observation_count)
                self.perf.count("pipeline_captures",
                                len(report.http_captures))
                self.perf.gauge("pipeline_distance_cache_hit_rate",
                                self.distance.hit_rate())
                self.perf.gauge("pipeline_feature_cache_hit_rate",
                                self.features.hit_rate())
            return {"labeled": labeled, "diff_clusters": diff_clusters}

        def apply_labeling(payload):
            report.labeled = payload["labeled"]
            report.diff_clusters = payload["diff_clusters"]

        self._unit(checkpoint, report, "labeling",
                   compute_labeling, apply_labeling)
        return report

    # -- mail classification --------------------------------------------------

    @staticmethod
    def classify_mail(mail_captures):
        """Split mail captures into listener/banner-match groups (§4.3)."""
        listeners = []
        banner_matches = []
        for capture in mail_captures:
            if not capture.fetched:
                continue
            listeners.append(capture)
            provider = provider_for_hostname(capture.domain)
            if provider is not None:
                legit = banners_for_provider(provider)
                if any(banner == legit.get(service)
                       for service, banner in capture.banners.items()):
                    banner_matches.append(capture)
        return listeners, banner_matches
