"""Cluster labeling and category classification (paper §3.6 step 6, §4.2).

The paper's analysts inspected each cluster's exemplar pages and attached
descriptive labels, then mapped labels onto website categories.  The
decision rules they describe are encoded here — e.g. HTML stating
"blocked by the order of [...] court/authority" marks censorship, router
vendor login forms mark the Login category — and are applied per cluster:
one labeling decision covers every member, which is exactly how
clustering reduced the paper's manual effort.
"""

import re

from repro.dnswire.name import normalize_name

# The six HTTP-content categories of Table 5, plus Misc's sub-labels
# surfaced by the case studies (§4.3).
LABEL_BLOCKING = "Blocking"
LABEL_CENSORSHIP = "Censorship"
LABEL_HTTP_ERROR = "HTTP Error"
LABEL_LOGIN = "Login"
LABEL_MISC = "Misc."
LABEL_PARKING = "Parking"
LABEL_SEARCH = "Search"

CATEGORY_LABELS = (LABEL_BLOCKING, LABEL_CENSORSHIP, LABEL_HTTP_ERROR,
                   LABEL_LOGIN, LABEL_MISC, LABEL_PARKING, LABEL_SEARCH)

# Misc sub-labels (all roll up into LABEL_MISC for Table 5).
SUBLABEL_PROXY = "transparent-proxy"
SUBLABEL_PHISHING = "phishing"
SUBLABEL_AD_INJECTION = "ad-injection"
SUBLABEL_AD_BLANKING = "ad-blanking"
SUBLABEL_FAKE_SEARCH_ADS = "fake-search-with-ads"
SUBLABEL_MALWARE = "malware-download"
SUBLABEL_UNCLASSIFIED = "unclassified"

_CENSOR_RE = re.compile(
    r"blocked by the order of the competent\s+(court|authority)|"
    r"court/authority", re.IGNORECASE)
_BLOCKING_RE = re.compile(
    r"(page|website|domain|content)[^.<]{0,60}(has been |is )?blocked|"
    r"content filter|parental control|blocked to protect",
    re.IGNORECASE)
_ERROR_TITLE_RE = re.compile(r"<title[^>]*>\s*(4\d\d|5\d\d)\b",
                             re.IGNORECASE)
_PASSWORD_FIELD_RE = re.compile(r"""type\s*=\s*["']password["']""",
                                re.IGNORECASE)
_LOGIN_HINT_RE = re.compile(
    r"router|modem|gateway|network login|captive|sign in|log ?in|webmail|"
    r"camera", re.IGNORECASE)
_PARKING_RE = re.compile(
    r"parked free|may be for sale|domain (is )?parked|sponsored listing",
    re.IGNORECASE)
_SEARCH_FORM_RE = re.compile(r"""name\s*=\s*["']q["']""", re.IGNORECASE)
_SPONSORED_RE = re.compile(r"sponsored (result|listing)|ad.?click",
                           re.IGNORECASE)
_PHP_FORM_RE = re.compile(r"""<form[^>]+action\s*=\s*["'][^"']*\.php["']""",
                          re.IGNORECASE)
_IMG_TAG_RE = re.compile(r"<img\b", re.IGNORECASE)
_MALWARE_RE = re.compile(
    r"(update|install)[^<]{0,80}\.exe|critical update available|"
    r"out of date and may be insecure", re.IGNORECASE)
_INJECTED_AD_RE = re.compile(
    r"injected-banner|ads-served|deliver\.js", re.IGNORECASE)
_BLANKED_AD_RE = re.compile(r"blocked-ad-placeholder|<!-- ad removed -->",
                            re.IGNORECASE)


class LabeledCapture:
    """One capture with its cluster-derived label and sub-label."""

    __slots__ = ("capture", "label", "sublabel", "cluster_id")

    def __init__(self, capture, label, sublabel=None, cluster_id=None):
        self.capture = capture
        self.label = label
        self.sublabel = sublabel
        self.cluster_id = cluster_id

    def __repr__(self):
        return "LabeledCapture(%s -> %s/%s)" % (
            self.capture, self.label, self.sublabel)


class ClusterLabeler:
    """Labels clusters of HTTP captures using the published rules."""

    def __init__(self, ground_truth_bodies=None):
        # domain -> list of legitimate HTML representations.
        self.ground_truth = {normalize_name(domain): list(bodies)
                             for domain, bodies
                             in (ground_truth_bodies or {}).items()}

    # -- per-page rules -------------------------------------------------------

    def _is_ground_truth_copy(self, capture):
        bodies = self.ground_truth.get(normalize_name(capture.domain), ())
        return any(capture.body == body for body in bodies)

    def _near_ground_truth(self, capture):
        """Same title and structure-ish as GT, but not byte-identical."""
        bodies = self.ground_truth.get(normalize_name(capture.domain), ())
        if not bodies or not capture.body:
            return None
        for body in bodies:
            if capture.body == body:
                continue
            truth_title = _title_of(body)
            if truth_title and truth_title == _title_of(capture.body):
                return body
        return None

    def label_capture(self, capture):
        """Label one capture; returns ``(label, sublabel)``."""
        body = capture.body or ""
        status = capture.status or 0
        if _CENSOR_RE.search(body):
            return LABEL_CENSORSHIP, None
        if status >= 400 or _ERROR_TITLE_RE.search(body):
            return LABEL_HTTP_ERROR, None
        if self._is_ground_truth_copy(capture):
            # Original content from a non-original IP: transparent proxy.
            return LABEL_MISC, SUBLABEL_PROXY
        if _INJECTED_AD_RE.search(body):
            return LABEL_MISC, SUBLABEL_AD_INJECTION
        if _BLANKED_AD_RE.search(body):
            return LABEL_MISC, SUBLABEL_AD_BLANKING
        if _MALWARE_RE.search(body):
            return LABEL_MISC, SUBLABEL_MALWARE
        if _PHP_FORM_RE.search(body) and _PASSWORD_FIELD_RE.search(body):
            image_count = len(_IMG_TAG_RE.findall(body))
            if image_count >= 10:
                # The PayPal pattern: a page rebuilt from image slices
                # plus a credential form posting to a .php collector.
                return LABEL_MISC, SUBLABEL_PHISHING
        near = self._near_ground_truth(capture)
        if near is not None and _PASSWORD_FIELD_RE.search(body):
            # Original-looking page with a modified form: bank phish.
            if _form_actions(body) != _form_actions(near):
                return LABEL_MISC, SUBLABEL_PHISHING
        if _BLOCKING_RE.search(body):
            return LABEL_BLOCKING, None
        if _PARKING_RE.search(body):
            return LABEL_PARKING, None
        if _SEARCH_FORM_RE.search(body):
            if _SPONSORED_RE.search(body) and _IMG_TAG_RE.search(body) \
                    and "banner" in body.lower():
                return LABEL_MISC, SUBLABEL_FAKE_SEARCH_ADS
            return LABEL_SEARCH, None
        if _PASSWORD_FIELD_RE.search(body) and _LOGIN_HINT_RE.search(body):
            return LABEL_LOGIN, None
        return LABEL_MISC, SUBLABEL_UNCLASSIFIED

    # -- per-cluster labeling -------------------------------------------------

    def label_clusters(self, clusters):
        """Label each cluster via its exemplar; returns LabeledCaptures.

        One decision per cluster, applied to all members — mirroring the
        manual labeling step the clustering was built to support.
        """
        labeled = []
        for cluster_id, cluster in enumerate(clusters):
            label, sublabel = self.label_capture(cluster.representative())
            for capture in cluster:
                labeled.append(LabeledCapture(capture, label, sublabel,
                                              cluster_id=cluster_id))
        return labeled


def _title_of(body):
    match = re.search(r"<title[^>]*>(.*?)</title>", body or "",
                      re.IGNORECASE | re.DOTALL)
    return match.group(1).strip() if match else ""


def _form_actions(body):
    return tuple(re.findall(
        r"""<form[^>]+action\s*=\s*["']([^"']*)["']""", body or "",
        re.IGNORECASE))
