"""Fine-grained clustering of page *modifications* (paper §3.6).

The coarse clustering tolerates small HTML changes — exactly the changes
an adversary makes when injecting JavaScript or swapping a form action on
an otherwise-original page.  This pass diffs each unknown response against
the most similar ground-truth representation of the requested site,
reduces the diff to multisets of added and removed HTML tags, and clusters
responses by the Jaccard distance of those modification sets: responses
with the *same kind of modification* group together regardless of which
site was modified.
"""

import difflib
import re
from collections import Counter

from repro.core.clustering import hierarchical_cluster
from repro.core.distance import jaccard_distance

_TAG_WITH_ATTRS_RE = re.compile(r"<([a-zA-Z][a-zA-Z0-9]*)\b[^>]*>")


def _tag_tokens(html):
    """The page as a list of opening-tag tokens (with their full text)."""
    return [(match.group(1).lower(), match.group(0))
            for match in _TAG_WITH_ATTRS_RE.finditer(html or "")]


def tag_diff(unknown_html, ground_truth_html):
    """Tags added to / removed from the ground truth, as multisets.

    Uses :mod:`difflib` over the full tag-token streams (the ``diff``
    utility of the paper, applied to markup), then collapses each side of
    the diff to a tag-name multiset — "the smaller these sets, the fewer
    modifications were done to the website".
    """
    unknown_tokens = _tag_tokens(unknown_html)
    truth_tokens = _tag_tokens(ground_truth_html)
    matcher = difflib.SequenceMatcher(
        a=[token for __, token in truth_tokens],
        b=[token for __, token in unknown_tokens],
        autojunk=False)
    added = Counter()
    removed = Counter()
    for op, truth_lo, truth_hi, unknown_lo, unknown_hi in \
            matcher.get_opcodes():
        if op in ("delete", "replace"):
            removed.update(name for name, __
                           in truth_tokens[truth_lo:truth_hi])
        if op in ("insert", "replace"):
            added.update(name for name, __
                         in unknown_tokens[unknown_lo:unknown_hi])
    return added, removed


class DiffProfile:
    """The modification fingerprint of one unknown response."""

    __slots__ = ("capture", "added", "removed", "similarity_to_truth")

    def __init__(self, capture, added, removed, similarity_to_truth):
        self.capture = capture
        self.added = added
        self.removed = removed
        self.similarity_to_truth = similarity_to_truth

    @property
    def modification_size(self):
        return sum(self.added.values()) + sum(self.removed.values())

    def combined_multiset(self):
        """Added and removed tags as one multiset with signed markers."""
        combined = Counter()
        for name, count in self.added.items():
            combined["+%s" % name] = count
        for name, count in self.removed.items():
            combined["-%s" % name] = count
        return combined

    def __repr__(self):
        return "DiffProfile(+%d/-%d tags)" % (
            sum(self.added.values()), sum(self.removed.values()))


def build_diff_profile(capture, ground_truth_bodies, distance_fn=None,
                       page_profiles=None):
    """Diff one capture against its best-matching ground truth.

    ``ground_truth_bodies`` is a list of legitimate HTML representations
    of the same requested domain; when several exist (CDN variants), the
    one most similar to the capture is selected, preferring the coarse
    distance function when profiles are supplied.
    """
    if not ground_truth_bodies:
        raise ValueError("need at least one ground-truth representation")
    best_body = None
    best_score = None
    if distance_fn is not None and page_profiles is not None:
        capture_profile, truth_profiles = page_profiles
        for body, profile in zip(ground_truth_bodies, truth_profiles):
            score = distance_fn(capture_profile, profile)
            if best_score is None or score < best_score:
                best_score = score
                best_body = body
    else:
        for body in ground_truth_bodies:
            score = 0.0 if body == capture.body else \
                1.0 - difflib.SequenceMatcher(
                    a=body[:4000], b=(capture.body or "")[:4000],
                    autojunk=False).quick_ratio()
            if best_score is None or score < best_score:
                best_score = score
                best_body = body
    added, removed = tag_diff(capture.body, best_body)
    return DiffProfile(capture, added, removed, 1.0 - (best_score or 0.0))


def diff_cluster(diff_profiles, threshold=0.5):
    """Cluster modification fingerprints by Jaccard distance.

    Responses whose tag-level modifications resemble each other (e.g. the
    same injected ``<script>``/banner ``<div>`` across different sites)
    end up in one cluster.
    """
    def distance(profile_a, profile_b):
        return jaccard_distance(profile_a.combined_multiset(),
                                profile_b.combined_multiset())

    return hierarchical_cluster(diff_profiles, distance, threshold,
                                linkage="average")
