"""DNS-based prefiltering of scan responses (paper §3.4).

Billions of responses come back from the domain scans; the overwhelming
majority are correct, and the pipeline must discard them without ever
discarding a bogus one (false negatives here are acceptable — they get
caught at the content stage — false positives are not).  A (domain, IP)
pair is accepted as legitimate when any of these hold:

* **NX rule** — for non-existent domains: NXDOMAIN, or NOERROR with an
  empty answer section, is the correct response.
* **AS rule** — the IP lies in one of the ASes of the addresses our own
  trusted resolvers return for the domain.
* **rDNS rule** — the IP's PTR name resembles the requested domain *and*
  the PTR name's forward A record resolves back to the same IP (only the
  domain owner can set up that A record).
* **Certificate rule** — an HTTPS probe of the IP returns a valid,
  trusted certificate for the domain (SNI handshake), or — for the known
  large CDN providers — a valid non-SNI default certificate whose common
  name identifies the provider.
"""

from repro.dnswire.constants import (
    RCODE_NOERROR,
    RCODE_NXDOMAIN,
)
from repro.dnswire.name import normalize_name


class ResponseTuple:
    """One (domain ◦ ip ◦ resolver) tuple flowing through the pipeline."""

    __slots__ = ("domain", "ip", "resolver_ip", "observation")

    def __init__(self, domain, ip, resolver_ip, observation=None):
        self.domain = domain
        self.ip = ip
        self.resolver_ip = resolver_ip
        self.observation = observation

    def key(self):
        return (self.domain, self.ip, self.resolver_ip)

    def __repr__(self):
        return "ResponseTuple(%s, %s, %s)" % (
            self.domain, self.ip, self.resolver_ip)


class PrefilterResult:
    """Buckets produced by the prefilter, per scanned domain."""

    def __init__(self):
        self.legitimate = []   # ResponseTuple: every address verified
        self.unknown = []      # ResponseTuple: at least one unverified IP
        self.empty = []        # (domain, resolver_ip): NOERROR, no answers
        self.nx_correct = []   # (domain, resolver_ip): correct NX handling
        self.errors = []       # (domain, resolver_ip, rcode)
        self.observations = 0

    def stats(self):
        """Share of each bucket among all observations."""
        total = self.observations or 1
        return {
            "observations": self.observations,
            "legitimate_share": (len(self.legitimate)
                                 + len(self.nx_correct)) / total,
            "empty_share": len(self.empty) / total,
            "unknown_share": len(self.unknown) / total,
            "error_share": len(self.errors) / total,
        }

    def unknown_resolvers(self):
        return {t.resolver_ip for t in self.unknown}

    def __repr__(self):
        return ("PrefilterResult(%d legit, %d unknown, %d empty, %d nx, "
                "%d errors)" % (len(self.legitimate), len(self.unknown),
                                len(self.empty), len(self.nx_correct),
                                len(self.errors)))


def registrable_suffix(name):
    """Crude registrable-domain extraction: the last two labels."""
    labels = normalize_name(name).split(".")
    return ".".join(labels[-2:]) if len(labels) >= 2 else name


class Prefilterer:
    """Applies the four filtering rules to domain-scan observations."""

    def __init__(self, network, resolution_service, as_registry, rdns,
                 ca=None, known_cdn_common_names=(), probe_source_ip=None,
                 enable_as_rule=True, enable_rdns_rule=True,
                 enable_cert_rule=True):
        self.network = network
        self.service = resolution_service
        self.as_registry = as_registry
        self.rdns = rdns
        self.ca = ca
        self.known_cdn_common_names = {normalize_name(name)
                                       for name in known_cdn_common_names}
        self.probe_source_ip = probe_source_ip
        self.enable_as_rule = enable_as_rule
        self.enable_rdns_rule = enable_rdns_rule
        self.enable_cert_rule = enable_cert_rule
        self._trusted_cache = {}
        self._verdict_cache = {}
        self.https_probes = 0

    # -- the four rules ------------------------------------------------------

    def _trusted_ases(self, domain):
        cached = self._trusted_cache.get(domain)
        if cached is None:
            result = self.service.resolve_trusted(self.network, domain)
            ases = set()
            for address in result.addresses:
                asn = self.as_registry.asn_of(address)
                if asn is not None:
                    ases.add(asn)
            cached = (set(result.addresses), ases)
            self._trusted_cache[domain] = cached
        return cached

    def _as_rule(self, domain, ip):
        trusted_ips, trusted_ases = self._trusted_ases(domain)
        if ip in trusted_ips:
            return True
        asn = self.as_registry.asn_of(ip)
        return asn is not None and asn in trusted_ases

    def _rdns_rule(self, domain, ip):
        ptr_name = self.rdns.ptr(ip) if self.rdns is not None else None
        if not ptr_name:
            return False
        if registrable_suffix(ptr_name) != registrable_suffix(domain):
            return False
        # Forward confirmation: only the domain owner can publish the A
        # record matching the PTR name.
        return self.rdns.forward(ptr_name) == ip

    def _cert_rule(self, domain, ip):
        if self.ca is None:
            return False
        self.https_probes += 2
        now = self.network.clock.now
        sni_cert = self.network.tls_handshake(self.probe_source_ip, ip,
                                              sni=domain)
        if sni_cert is not None and self.ca.validates(sni_cert, domain,
                                                      now=now):
            return True
        default_cert = self.network.tls_handshake(self.probe_source_ip, ip,
                                                  sni=None)
        if default_cert is None or default_cert.self_signed:
            return False
        if default_cert.issuer != self.ca.name:
            return False
        common = normalize_name(default_cert.common_name).lstrip("*.")
        return common in self.known_cdn_common_names

    def address_is_legitimate(self, domain, ip):
        """Apply AS, rDNS, and certificate rules to one (domain, IP)."""
        key = (domain, ip)
        verdict = self._verdict_cache.get(key)
        if verdict is None:
            verdict = bool(
                (self.enable_as_rule and self._as_rule(domain, ip))
                or (self.enable_rdns_rule and self._rdns_rule(domain, ip))
                or (self.enable_cert_rule and self._cert_rule(domain, ip)))
            self._verdict_cache[key] = verdict
        return verdict

    # -- observation processing -----------------------------------------------

    def process(self, observations, domain_catalog):
        """Filter a list of :class:`DnsObservation`.

        ``domain_catalog`` maps domain name -> :class:`ScanDomain` (to know
        which names are deliberately non-existent).  Returns a
        :class:`PrefilterResult`.
        """
        result = PrefilterResult()
        self.process_into(result, observations, domain_catalog)
        return result

    def process_into(self, result, observations, domain_catalog):
        """Fold a batch of observations into an existing result.

        The streaming entry point: the pipeline calls this once per
        observation chunk as the domain scan delivers them, so the full
        observation list never has to be resident.  Classification is
        per-observation, so chunked processing is bit-identical to one
        :meth:`process` call over the concatenated list.
        """
        for observation in observations:
            result.observations += 1
            domain = normalize_name(observation.domain)
            meta = domain_catalog.get(domain)
            exists = meta.exists if meta is not None else True
            if not exists:
                if observation.rcode == RCODE_NXDOMAIN or (
                        observation.rcode == RCODE_NOERROR
                        and not observation.addresses):
                    result.nx_correct.append(
                        (domain, observation.resolver_ip))
                elif observation.rcode != RCODE_NOERROR:
                    result.errors.append((domain, observation.resolver_ip,
                                          observation.rcode))
                else:
                    for address in observation.addresses:
                        result.unknown.append(ResponseTuple(
                            domain, address, observation.resolver_ip,
                            observation))
                continue
            if observation.rcode == RCODE_NOERROR \
                    and not observation.addresses:
                result.empty.append((domain, observation.resolver_ip))
                continue
            if observation.rcode != RCODE_NOERROR:
                result.errors.append((domain, observation.resolver_ip,
                                      observation.rcode))
                continue
            all_legit = all(self.address_is_legitimate(domain, address)
                            for address in observation.addresses)
            if all_legit:
                result.legitimate.append(ResponseTuple(
                    domain, observation.addresses[0],
                    observation.resolver_ip, observation))
            else:
                for address in observation.addresses:
                    result.unknown.append(ResponseTuple(
                        domain, address, observation.resolver_ip,
                        observation))
