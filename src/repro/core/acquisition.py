"""Data acquisition for unknown tuples (paper §3.5).

For every (domain ◦ ip ◦ resolver) tuple that survived prefiltering, the
acquirer mimics a Firefox 28 client: it requests the page from the
returned IP with the original domain in the Host header, follows
redirects and frames at most twice, and — crucially — resolves any new
(sub-)domain a redirect points to *at the resolver that produced the
original tuple*, since that resolver controls the victim's view of DNS.
For mail hostnames it collects IMAP/POP3/SMTP greeting banners instead.
"""

import re

from repro.dnswire.constants import QTYPE_A, RCODE_NOERROR
from repro.dnswire.message import Message
from repro.dnswire.name import normalize_name
from repro.netsim.address import is_private
from repro.netsim.network import UdpPacket
from repro.websim.http import HttpRequest
from repro.websim.mail import MAIL_PORTS

_IFRAME_RE = re.compile(r"""<iframe\b[^>]*\bsrc\s*=\s*["']([^"']+)["']""",
                        re.IGNORECASE)
_URL_RE = re.compile(r"^(https?)://([^/]+)(/.*)?$", re.IGNORECASE)


class HttpCapture:
    """The web content obtained for one tuple (or the reason none was)."""

    def __init__(self, domain, ip, resolver_ip, status=None, body=None,
                 scheme="http", redirects=(), failure=None,
                 final_host=None):
        self.domain = domain
        self.ip = ip
        self.resolver_ip = resolver_ip
        self.status = status
        self.body = body
        self.scheme = scheme
        self.redirects = list(redirects)
        self.failure = failure      # None | "lan" | "unreachable"
        self.final_host = final_host or domain

    @property
    def fetched(self):
        return self.body is not None

    def key(self):
        return (self.domain, self.ip, self.resolver_ip)

    def __repr__(self):
        return "HttpCapture(%s @ %s via %s, status=%r)" % (
            self.domain, self.ip, self.resolver_ip, self.status)


class MailCapture:
    """Mail banners obtained for one tuple of the MX domain set."""

    def __init__(self, domain, ip, resolver_ip, banners=None):
        self.domain = domain
        self.ip = ip
        self.resolver_ip = resolver_ip
        self.banners = dict(banners or {})

    @property
    def fetched(self):
        return bool(self.banners)

    def __repr__(self):
        return "MailCapture(%s @ %s, %s)" % (
            self.domain, self.ip, sorted(self.banners))


class DataAcquirer:
    """Fetches HTTP(S) content and mail banners for response tuples."""

    def __init__(self, network, source_ip, max_redirects=2,
                 source_port=31600, fetch_timeout=None, error_budget=None):
        self.network = network
        self.source_ip = source_ip
        self.max_redirects = max_redirects
        self.source_port = source_port
        # Timeout bound on every TCP fetch (HTTP and banner connects):
        # a fault-injected stall past this fails the fetch instead of
        # hanging the whole acquisition stage.
        self.fetch_timeout = fetch_timeout
        # Maximum unreachable fetches tolerated per acquire() batch;
        # beyond it remaining tuples are skipped (``failure="budget"``)
        # and ``budget_exhausted`` flags the degradation.
        self.error_budget = error_budget
        self.failed_fetches = 0
        self.budget_exhausted = False
        self._txid = 0
        self.http_fetches = 0

    # -- DNS at the original resolver -----------------------------------------

    def _resolve_at(self, resolver_ip, name):
        """Resolve ``name`` at the resolver under study (redirect chasing)."""
        self._txid = (self._txid + 1) & 0xFFFF
        query = Message.query(name, qtype=QTYPE_A, txid=self._txid)
        packet = UdpPacket(self.source_ip, self.source_port, resolver_ip,
                           53, query.to_wire())
        for response in self.network.send_udp(packet):
            try:
                message = Message.from_wire(response.packet.payload)
            except ValueError:
                continue
            if message.header.qr and message.header.txid == self._txid:
                if message.rcode == RCODE_NOERROR:
                    return message.a_addresses()
                return []
        return []

    # -- HTTP -----------------------------------------------------------------

    def _single_fetch(self, ip, host, path, scheme):
        self.http_fetches += 1
        request = HttpRequest(host=host, path=path or "/", scheme=scheme)
        return self.network.http_request(self.source_ip, ip, request,
                                         timeout=self.fetch_timeout)

    @staticmethod
    def _parse_url(url, current_host, current_scheme):
        match = _URL_RE.match(url.strip())
        if match:
            return (match.group(1).lower(), match.group(2).lower(),
                    match.group(3) or "/")
        # Relative URL: same host and scheme.
        path = url if url.startswith("/") else "/" + url
        return current_scheme, current_host, path

    def fetch_http(self, response_tuple, https_first=False):
        """Acquire web content for one tuple, following ≤2 redirects."""
        domain = normalize_name(response_tuple.domain)
        ip = response_tuple.ip
        resolver_ip = response_tuple.resolver_ip
        if is_private(ip):
            return HttpCapture(domain, ip, resolver_ip, failure="lan")
        schemes = ("https", "http") if https_first else ("http", "https")
        response = None
        scheme_used = schemes[0]
        for scheme in schemes:
            response = self._single_fetch(ip, domain, "/", scheme)
            scheme_used = scheme
            if response is not None:
                break
        if response is None:
            return HttpCapture(domain, ip, resolver_ip,
                               failure="unreachable")
        redirects = []
        host = domain
        current_ip = ip
        for __ in range(self.max_redirects):
            next_url = None
            if response.is_redirect:
                next_url = response.location
            elif response.body:
                iframe = _IFRAME_RE.search(response.body)
                if iframe:
                    next_url = iframe.group(1)
            if next_url is None:
                break
            scheme_used, next_host, next_path = self._parse_url(
                next_url, host, scheme_used)
            redirects.append(next_url)
            if normalize_name(next_host) != host:
                # New (sub-)domain: resolve it at the original resolver.
                host = normalize_name(next_host)
                addresses = self._resolve_at(resolver_ip, host)
                if not addresses:
                    break
                current_ip = addresses[0]
                if is_private(current_ip):
                    return HttpCapture(domain, ip, resolver_ip,
                                       redirects=redirects, failure="lan")
            next_response = self._single_fetch(current_ip, host, next_path,
                                               scheme_used)
            if next_response is None:
                break
            response = next_response
        return HttpCapture(domain, ip, resolver_ip, status=response.status,
                           body=response.body, scheme=scheme_used,
                           redirects=redirects, final_host=host)

    # -- mail -----------------------------------------------------------------

    def fetch_mail(self, response_tuple):
        """Collect IMAP/POP3/SMTP banners for one MX-set tuple."""
        banners = {}
        for service, port in MAIL_PORTS.items():
            banner = self.network.tcp_banner(self.source_ip,
                                             response_tuple.ip, port,
                                             timeout=self.fetch_timeout)
            if banner:
                banners[service] = banner
        return MailCapture(response_tuple.domain, response_tuple.ip,
                           response_tuple.resolver_ip, banners)

    # -- batch ----------------------------------------------------------------

    def acquire(self, tuples, domain_catalog=None):
        """Fetch content for many tuples.

        Returns ``(http_captures, mail_captures)``; tuples of MX-set
        hostnames get mail treatment (plus HTTP, matching the paper's
        "for particular domain names also banner information").
        """
        http_captures = []
        mail_captures = []
        fetch_cache = {}
        self.failed_fetches = 0
        self.budget_exhausted = False
        for response_tuple in tuples:
            if self.budget_exhausted:
                # Error budget spent: stop touching the network, mark
                # the remaining tuples as skipped so the report's
                # degraded provenance stays explicit.
                http_captures.append(HttpCapture(
                    normalize_name(response_tuple.domain),
                    response_tuple.ip, response_tuple.resolver_ip,
                    failure="budget"))
                continue
            meta = (domain_catalog or {}).get(
                normalize_name(response_tuple.domain))
            is_mail = meta is not None and meta.kind == "mail"
            if is_mail:
                # MX tuples get both treatments: mail banners (§3.5) and —
                # "further" — the same HTTP acquisition as everything else.
                mail_captures.append(self.fetch_mail(response_tuple))
            cache_key = (response_tuple.domain, response_tuple.ip)
            cached = fetch_cache.get(cache_key)
            if cached is not None:
                http_captures.append(HttpCapture(
                    cached.domain, cached.ip, response_tuple.resolver_ip,
                    status=cached.status, body=cached.body,
                    scheme=cached.scheme, redirects=cached.redirects,
                    failure=cached.failure, final_host=cached.final_host))
                continue
            https = meta is not None and getattr(meta, "https", False)
            capture = self.fetch_http(response_tuple, https_first=https)
            # Content depends only on (domain, ip) unless redirects pulled
            # the resolver back in; cache the common case.
            if not capture.redirects:
                fetch_cache[cache_key] = capture
            http_captures.append(capture)
            if capture.failure == "unreachable":
                self.failed_fetches += 1
                if self.error_budget is not None and \
                        self.failed_fetches > self.error_budget:
                    self.budget_exhausted = True
        return http_captures, mail_captures
