"""The classification pipeline for manipulated DNS resolutions (paper §3).

This is the paper's primary contribution, implemented as the processing
chain of Figure 3:

1. identify open resolvers (``repro.scanner.ipv4scan``),
2. query the 13-category domain set (``repro.scanner.domainscan``),
3. prefilter legitimate (domain, IP, resolver) tuples
   (:mod:`repro.core.prefilter`),
4. acquire HTTP(S)/mail content for the unknown remainder
   (:mod:`repro.core.acquisition`),
5. cluster the responses — coarse agglomerative hierarchical clustering
   over seven normalized HTML features (:mod:`repro.core.features`,
   :mod:`repro.core.distance`, :mod:`repro.core.clustering`), plus
   fine-grained diff clustering against ground truth
   (:mod:`repro.core.diffcluster`),
6. label the clusters and map them to website categories
   (:mod:`repro.core.labeling`).

:mod:`repro.core.pipeline` wires all of it together.
"""

from repro.core.features import PageProfile, extract_features
from repro.core.distance import PageDistance, edit_distance, jaccard_distance
from repro.core.clustering import (
    Cluster,
    hierarchical_cluster,
    render_dendrogram,
)
from repro.core.diffcluster import DiffProfile, diff_cluster, tag_diff
from repro.core.prefilter import PrefilterResult, Prefilterer, ResponseTuple
from repro.core.acquisition import (
    DataAcquirer,
    HttpCapture,
    MailCapture,
)
from repro.core.labeling import (
    CATEGORY_LABELS,
    LABEL_BLOCKING,
    LABEL_CENSORSHIP,
    LABEL_HTTP_ERROR,
    LABEL_LOGIN,
    LABEL_MISC,
    LABEL_PARKING,
    LABEL_SEARCH,
    ClusterLabeler,
)
from repro.core.pipeline import ManipulationPipeline, PipelineReport

__all__ = [
    "CATEGORY_LABELS",
    "Cluster",
    "ClusterLabeler",
    "DataAcquirer",
    "DiffProfile",
    "HttpCapture",
    "LABEL_BLOCKING",
    "LABEL_CENSORSHIP",
    "LABEL_HTTP_ERROR",
    "LABEL_LOGIN",
    "LABEL_MISC",
    "LABEL_PARKING",
    "LABEL_SEARCH",
    "MailCapture",
    "ManipulationPipeline",
    "PageDistance",
    "PageProfile",
    "PipelineReport",
    "PrefilterResult",
    "Prefilterer",
    "ResponseTuple",
    "diff_cluster",
    "edit_distance",
    "extract_features",
    "hierarchical_cluster",
    "jaccard_distance",
    "render_dendrogram",
    "tag_diff",
]
