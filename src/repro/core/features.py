"""HTML feature extraction for the clustering distance (paper §3.6).

From each HTTP body the pipeline extracts exactly what the seven distance
features consume: body length, the multiset and the ordered sequence of
opening HTML tags, the ``<title>`` text, all JavaScript code, embedded
resources (``src=""`` values), and outgoing links (``href=""`` values).
A small regex tokenizer is sufficient — the analysis never executes
JavaScript and never renders (§3.5).
"""

import re
from collections import Counter

_TAG_RE = re.compile(r"<([a-zA-Z][a-zA-Z0-9]*)\b[^>]*>")
_TITLE_RE = re.compile(r"<title[^>]*>(.*?)</title>", re.IGNORECASE | re.DOTALL)
_SCRIPT_RE = re.compile(r"<script\b[^>]*>(.*?)</script>",
                        re.IGNORECASE | re.DOTALL)
_SRC_RE = re.compile(r"""\bsrc\s*=\s*["']([^"']+)["']""", re.IGNORECASE)
_HREF_RE = re.compile(r"""\bhref\s*=\s*["']([^"']+)["']""", re.IGNORECASE)

# Tags are normalized to compact identifiers ("each HTML tag to a
# 2-byte-long identifier") so the tag-sequence edit distance compares
# structure, not spelling.  Identifiers are assigned on first sight.
_TAG_IDS = {}


def tag_identifier(tag_name):
    """The stable 2-byte identifier for an HTML tag name."""
    tag_name = tag_name.lower()
    identifier = _TAG_IDS.get(tag_name)
    if identifier is None:
        identifier = len(_TAG_IDS) & 0xFFFF
        _TAG_IDS[tag_name] = identifier
    return identifier


class PageProfile:
    """The feature bundle for one HTTP response body."""

    __slots__ = ("length", "tag_multiset", "tag_sequence", "title",
                 "javascript", "resources", "links", "body_hash")

    def __init__(self, length, tag_multiset, tag_sequence, title,
                 javascript, resources, links, body_hash):
        self.length = length
        self.tag_multiset = tag_multiset
        self.tag_sequence = tag_sequence
        self.title = title
        self.javascript = javascript
        self.resources = resources
        self.links = links
        self.body_hash = body_hash

    def __repr__(self):
        return "PageProfile(len=%d, tags=%d, title=%r)" % (
            self.length, len(self.tag_sequence), self.title[:40])


def extract_features(body, max_sequence=500, max_text=2000):
    """Extract a :class:`PageProfile` from an HTML body string.

    ``max_sequence`` and ``max_text`` cap the tag-sequence and text-feature
    lengths so edit distances stay tractable on pathological pages; the
    caps are far above anything the scanned sites produce.
    """
    body = body or ""
    tags = [match.group(1).lower() for match in _TAG_RE.finditer(body)]
    title_match = _TITLE_RE.search(body)
    title = title_match.group(1).strip() if title_match else ""
    javascript = "\n".join(match.group(1).strip()
                           for match in _SCRIPT_RE.finditer(body)
                           if match.group(1).strip())
    return PageProfile(
        length=len(body),
        tag_multiset=Counter(tags),
        tag_sequence=tuple(tag_identifier(tag)
                           for tag in tags[:max_sequence]),
        title=title[:max_text],
        javascript=javascript[:max_text],
        resources=Counter(_SRC_RE.findall(body)),
        links=Counter(_HREF_RE.findall(body)),
        body_hash=hash(body),
    )
