"""The custom page-distance function: seven normalized features of equal
weight (paper §3.6, coarse-grained clustering).

1. body-length difference (coarse similarity),
2. Jaccard distance over the HTML-tag multiset,
3. edit distance over the normalized opening-tag sequence (structure),
4. edit distance over the ``<title>`` text,
5. edit distance over all JavaScript code,
6. Jaccard distance over embedded resources (``src=``),
7. Jaccard distance over outgoing links (``href=``).
"""


def jaccard_distance(multiset_a, multiset_b):
    """Jaccard distance for multisets: 1 - |A ∩ B| / |A ∪ B|.

    Both arguments are ``collections.Counter``; two empty multisets are
    identical (distance 0).
    """
    if not multiset_a and not multiset_b:
        return 0.0
    intersection = sum((multiset_a & multiset_b).values())
    union = sum((multiset_a | multiset_b).values())
    if union == 0:
        return 0.0
    return 1.0 - intersection / union


def edit_distance(seq_a, seq_b, cap=None):
    """Levenshtein distance between two sequences (strings or tuples).

    ``cap`` optionally truncates inputs for bounded cost.  Uses the
    classic two-row dynamic program.
    """
    if cap is not None:
        seq_a = seq_a[:cap]
        seq_b = seq_b[:cap]
    if seq_a == seq_b:
        return 0
    if not seq_a:
        return len(seq_b)
    if not seq_b:
        return len(seq_a)
    if len(seq_a) < len(seq_b):
        seq_a, seq_b = seq_b, seq_a
    previous = list(range(len(seq_b) + 1))
    for i, item_a in enumerate(seq_a, 1):
        current = [i]
        for j, item_b in enumerate(seq_b, 1):
            cost = 0 if item_a == item_b else 1
            current.append(min(previous[j] + 1,
                               current[j - 1] + 1,
                               previous[j - 1] + cost))
        previous = current
    return previous[-1]


def normalized_edit_distance(seq_a, seq_b, cap=None):
    """Edit distance scaled into [0, 1] by the longer sequence."""
    longest = max(len(seq_a), len(seq_b))
    if longest == 0:
        return 0.0
    if cap is not None:
        longest = min(longest, cap)
    return min(1.0, edit_distance(seq_a, seq_b, cap=cap) / longest)


def length_difference(length_a, length_b):
    """Relative body-length difference in [0, 1]."""
    longest = max(length_a, length_b)
    if longest == 0:
        return 0.0
    return abs(length_a - length_b) / longest


class PageDistance:
    """Callable combining the seven features with equal weights.

    Instances are picklable and reusable; ``__call__`` takes two
    :class:`repro.core.features.PageProfile` objects and returns a
    distance in [0, 1].
    """

    FEATURE_NAMES = ("length", "tags", "structure", "title", "javascript",
                     "resources", "links")

    def __init__(self, weights=None, text_cap=600):
        if weights is None:
            weights = {name: 1.0 for name in self.FEATURE_NAMES}
        unknown = set(weights) - set(self.FEATURE_NAMES)
        if unknown:
            raise ValueError("unknown distance features: %s" % sorted(unknown))
        self.weights = {name: float(weights.get(name, 0.0))
                        for name in self.FEATURE_NAMES}
        total = sum(self.weights.values())
        if total <= 0:
            raise ValueError("at least one feature weight must be positive")
        self.total_weight = total
        self.text_cap = text_cap

    def feature_distances(self, profile_a, profile_b):
        """The seven per-feature distances as a dict (for inspection)."""
        cap = self.text_cap
        return {
            "length": length_difference(profile_a.length, profile_b.length),
            "tags": jaccard_distance(profile_a.tag_multiset,
                                     profile_b.tag_multiset),
            "structure": normalized_edit_distance(profile_a.tag_sequence,
                                                  profile_b.tag_sequence,
                                                  cap=cap),
            "title": normalized_edit_distance(profile_a.title,
                                              profile_b.title, cap=cap),
            "javascript": normalized_edit_distance(profile_a.javascript,
                                                   profile_b.javascript,
                                                   cap=cap),
            "resources": jaccard_distance(profile_a.resources,
                                          profile_b.resources),
            "links": jaccard_distance(profile_a.links, profile_b.links),
        }

    def __call__(self, profile_a, profile_b):
        distances = self.feature_distances(profile_a, profile_b)
        return sum(self.weights[name] * value
                   for name, value in distances.items()) / self.total_weight


class MemoizedDistance:
    """Memoizing wrapper around a symmetric distance callable.

    The page distance is by far the most expensive per-call operation in
    the pipeline (three edit-distance dynamic programs per pair), and
    agglomerative clustering asks for the same pairs again across runs
    of the same pipeline (weekly campaigns, ground-truth comparisons).
    Keyed by the identity of the two profile objects — cheap, and exact
    as long as profiles are immutable once built, which
    :class:`FeatureCache` guarantees by returning the same profile
    object for the same body.  The memo keeps references to both
    profiles so ids cannot be recycled under it.

    ``evaluations`` counts true underlying calls, ``hits`` the pairs
    answered from the memo; both are mirrored into ``perf`` when a
    registry is supplied (``distance_evals`` / ``distance_cache_hits``).
    ``avoided`` accumulates pairs a caller-side layer answered without
    consulting the memo at all (the clustering stage deduplicates
    identical bodies *before* building its distance matrix, and
    ``hierarchical_cluster`` asks for each remaining pair exactly once)
    — credited via :meth:`credit_avoided` so :meth:`hit_rate` reports
    the fraction of logical pair evaluations that skipped the
    underlying distance, not just the memo's own (structurally ~zero)
    hit share.
    """

    def __init__(self, distance, perf=None):
        self.distance = distance
        self.perf = perf
        self._memo = {}     # (id, id) -> (value, profile, profile)
        self.evaluations = 0
        self.hits = 0
        self.avoided = 0

    def __call__(self, profile_a, profile_b):
        key = ((id(profile_a), id(profile_b))
               if id(profile_a) <= id(profile_b)
               else (id(profile_b), id(profile_a)))
        entry = self._memo.get(key)
        if entry is not None:
            self.hits += 1
            if self.perf is not None:
                self.perf.count("distance_cache_hits")
            return entry[0]
        value = self.distance(profile_a, profile_b)
        self.evaluations += 1
        if self.perf is not None:
            self.perf.count("distance_evals")
        self._memo[key] = (value, profile_a, profile_b)
        return value

    def credit_avoided(self, pairs):
        """Credit ``pairs`` pair-evaluations short-circuited upstream."""
        if pairs > 0:
            self.avoided += pairs

    def hit_rate(self):
        saved = self.hits + self.avoided
        total = self.evaluations + saved
        return saved / total if total else 0.0


class FeatureCache:
    """Body-keyed memo of extracted :class:`PageProfile` objects.

    Guarantees one profile object per distinct body, which both avoids
    re-parsing identical pages (the overwhelmingly common case across
    resolvers) and makes profile identity a stable cache key for
    :class:`MemoizedDistance`.  Counters mirror into ``perf`` as
    ``feature_extractions`` / ``feature_cache_hits``.
    """

    def __init__(self, extractor=None, perf=None):
        if extractor is None:
            from repro.core.features import extract_features
            extractor = extract_features
        self.extractor = extractor
        self.perf = perf
        self._profiles = {}
        self.extractions = 0
        self.hits = 0

    def profile_of(self, body):
        profile = self._profiles.get(body)
        if profile is not None:
            self.hits += 1
            if self.perf is not None:
                self.perf.count("feature_cache_hits")
            return profile
        profile = self.extractor(body)
        self.extractions += 1
        if self.perf is not None:
            self.perf.count("feature_extractions")
        self._profiles[body] = profile
        return profile

    def hit_rate(self):
        total = self.extractions + self.hits
        return self.hits / total if total else 0.0

    def __len__(self):
        return len(self._profiles)
