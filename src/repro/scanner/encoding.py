"""Identity encodings used by the scanners.

Two encodings from the paper:

*IPv4 scans* (§2.2): each probe's query name embeds the target address
(``prefix.hex-ip.domain.edu``), so a response can be attributed to the
host it was actually sent to even when the reply's UDP source address
differs (multi-homed hosts, DNS proxies).

*Domain scans* (§3.3): the query name is fixed per domain, so the target
resolver's identity is packed into ceil(log2(20M)) = 25 bits: 16 in the
DNS transaction ID, 9 in the UDP source port, and — redundantly, because
some resolvers rewrite the destination port of their response — the same
9 bits in the 0x20 case pattern of the query name.
"""

from repro.dnswire.name import (
    apply_0x20,
    encode_name,
    normalize_name,
    recover_0x20_bits,
)
from repro.netsim.address import int_to_ip, ip_to_int

PORT_BITS = 9
TXID_BITS = 16
MAX_RESOLVER_ID = (1 << (PORT_BITS + TXID_BITS)) - 1

# Wire constants of the one query shape every IPv4-scan probe shares:
# header flags/counts for a 1-question rd=1 query (bytes 2..11), and the
# QTYPE=A / QCLASS=IN question tail.
_QUERY_HEADER_TAIL = b"\x01\x00\x00\x01\x00\x00\x00\x00\x00\x00"
_QUESTION_TAIL = b"\x00\x01\x00\x01"


class ProbeBatchEncoder:
    """Preallocated-buffer encoder for IPv4-scan probe payloads.

    Every probe's wire image differs from its neighbours only in three
    windows — the 2-byte txid, the ``r<hex>`` cache-busting label (2–7
    bytes, so six distinct frame lengths), and the 8-hex-char target —
    everything else is a pure function of the measurement domain.  The
    encoder keeps one mutable template per frame length, pre-filled
    with all the constant bytes, and :meth:`encode` just writes the
    three windows and snapshots the frame (a single C ``memcpy``).
    Compared to joining seven fragments per probe, nothing is
    re-derived and no intermediate tuples or fragments are allocated.

    Output is byte-identical to ``Message.query(...).to_wire()`` for
    the equivalent query (pinned by tests).
    """

    _LABEL_OFFSET = 13  # txid(2) + header tail(10) + length byte(1)

    def __init__(self, measurement_domain):
        self.measurement_domain = measurement_domain
        suffix_wire = encode_name(measurement_domain)
        self._pool = {}
        for label_len in range(2, 8):  # "r0" .. "rffffff"
            frame = bytearray()
            frame += b"\x00\x00"                  # txid window
            frame += _QUERY_HEADER_TAIL
            frame.append(label_len)
            frame += b"\x00" * label_len          # label window
            frame.append(8)
            frame += b"\x00" * 8                  # hex-target window
            frame += suffix_wire + _QUESTION_TAIL
            hex_offset = self._LABEL_OFFSET + label_len + 1
            self._pool[label_len] = (frame, hex_offset)

    def encode(self, key, value):
        """Encode the probe for one (probe key, target int) pair.

        Returns ``(txid, payload_bytes)``; the txid and label are the
        probe-key windows the scanner derives from its splitmix64 probe
        identity, ``value`` is the 32-bit target address.
        """
        label = b"r%x" % (key >> 16 & 0xFFFFFF)
        frame, hex_offset = self._pool[len(label)]
        txid = key & 0xFFFF
        frame[0] = txid >> 8
        frame[1] = txid & 0xFF
        frame[self._LABEL_OFFSET:hex_offset - 1] = label
        frame[hex_offset:hex_offset + 8] = b"%08x" % value
        return txid, bytes(frame)

    def encode_batch(self, keys, values):
        """Encode a whole batch; returns a list of (txid, payload)."""
        encode = self.encode
        return [encode(key, value) for key, value in zip(keys, values)]


def encode_target_qname(target_ip, measurement_domain, probe_id=0):
    """Build the IPv4-scan query name: random prefix + hex target IP."""
    return "r%x.%08x.%s" % (probe_id & 0xFFFFFF, ip_to_int(target_ip),
                            measurement_domain)


def decode_target_ip(qname, measurement_domain):
    """Recover the target address from an IPv4-scan query name."""
    name = normalize_name(qname)
    suffix = "." + normalize_name(measurement_domain)
    if not name.endswith(suffix):
        return None
    remainder = name[:-len(suffix)]
    labels = remainder.split(".")
    if len(labels) != 2:
        return None
    try:
        value = int(labels[1], 16)
    except ValueError:
        return None
    if not 0 <= value <= 0xFFFFFFFF:
        return None
    return int_to_ip(value)


class ResolverIdCodec:
    """Packs a 25-bit resolver identifier into txid + source port + 0x20.

    ``base_port`` anchors the 512-port window used for the 9 high bits.
    Decoding prefers the port bits; when the response's destination port
    falls outside the window (a port-rewriting resolver) the 0x20 case
    pattern of the echoed question supplies the same bits.
    """

    def __init__(self, base_port=33000):
        if not 1024 <= base_port <= 65535 - (1 << PORT_BITS):
            raise ValueError("base_port window out of range")
        self.base_port = base_port

    def encode(self, resolver_id, domain):
        """Return ``(txid, src_port, cased_qname)`` for a scan query."""
        if not 0 <= resolver_id <= MAX_RESOLVER_ID:
            raise ValueError("resolver id %d exceeds 25 bits" % resolver_id)
        txid = resolver_id & 0xFFFF
        high = resolver_id >> TXID_BITS
        src_port = self.base_port + high
        cased = apply_0x20(normalize_name(domain), high)
        return txid, src_port, cased

    def decode(self, txid, response_dst_port, echoed_qname):
        """Recover the resolver id from a response's fields.

        ``response_dst_port`` is the UDP port the response was sent to
        (our original source port); ``echoed_qname`` is the question name
        echoed in the response.
        """
        window = 1 << PORT_BITS
        if self.base_port <= response_dst_port < self.base_port + window:
            high = response_dst_port - self.base_port
        else:
            high, bit_count = recover_0x20_bits(echoed_qname)
            if bit_count < PORT_BITS:
                # Short names cannot carry all 9 bits; mask what we have.
                high &= (1 << bit_count) - 1
            else:
                high &= window - 1
        return (high << TXID_BITS) | (txid & 0xFFFF)
