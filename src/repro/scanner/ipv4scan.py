"""Internet-wide IPv4 DNS scanning (paper §2.2).

One scan sends a single DNS A query to every address in the target space
(minus blacklist and reserved ranges), in LFSR-permuted order, with the
target address hex-encoded in the query name.  The result records, per
rcode, the set of *target* addresses that answered — attributing responses
by the encoded name, so hosts answering from a different source address
(multi-homed / DNS proxies) are both counted correctly and detected.
"""

from repro.dnswire.constants import (
    RCODE_NOERROR,
    RCODE_REFUSED,
    RCODE_SERVFAIL,
)
from repro.dnswire.message import Message
from repro.netsim.address import is_reserved
from repro.netsim.network import UdpPacket
from repro.scanner.encoding import decode_target_ip, encode_target_qname
from repro.scanner.lfsr import LFSR


class ScanTargetSpace:
    """Maps a dense index space onto a set of target prefixes.

    Substitution note: the paper permutes all 2^32 addresses; scanning the
    simulator's full IPv4 space would waste cycles on guaranteed-empty
    space, so the LFSR permutes the *allocated* universe instead — the
    same behaviour (bounded per-network probe rate) on the same
    populated prefixes.
    """

    def __init__(self, prefixes):
        self.prefixes = list(prefixes)
        self._cumulative = []
        total = 0
        for prefix in self.prefixes:
            self._cumulative.append(total)
            total += prefix.num_addresses
        self.total = total

    def ip_at(self, index):
        if not 0 <= index < self.total:
            raise IndexError(index)
        import bisect
        slot = bisect.bisect_right(self._cumulative, index) - 1
        prefix = self.prefixes[slot]
        return prefix.address_at(index - self._cumulative[slot])

    def __len__(self):
        return self.total


class ScanResult:
    """Outcome of one Internet-wide scan."""

    def __init__(self, timestamp):
        self.timestamp = timestamp
        self.by_rcode = {}            # rcode -> set of target IPs
        self.responders = set()       # all target IPs that answered
        self.divergent_sources = set()  # targets whose reply src differed
        self.probes_sent = 0

    def record(self, target_ip, rcode, source_ip):
        self.responders.add(target_ip)
        self.by_rcode.setdefault(rcode, set()).add(target_ip)
        if source_ip != target_ip:
            self.divergent_sources.add(target_ip)

    @property
    def noerror(self):
        return self.by_rcode.get(RCODE_NOERROR, set())

    @property
    def refused(self):
        return self.by_rcode.get(RCODE_REFUSED, set())

    @property
    def servfail(self):
        return self.by_rcode.get(RCODE_SERVFAIL, set())

    def counts(self):
        """Summary dict used by the magnitude analysis (Figure 1)."""
        return {
            "all": len(self.responders),
            "noerror": len(self.noerror),
            "refused": len(self.refused),
            "servfail": len(self.servfail),
        }

    def __repr__(self):
        return "ScanResult(t=%.0f, %d responders)" % (
            self.timestamp, len(self.responders))


class Ipv4Scanner:
    """Sends one DNS A probe per target address and aggregates responses."""

    def __init__(self, network, source_ip, measurement_domain,
                 blacklist=None, source_port=31337, lfsr_seed=0xACE1):
        self.network = network
        self.source_ip = source_ip
        self.measurement_domain = measurement_domain
        self.blacklist = blacklist
        self.source_port = source_port
        self.lfsr_seed = lfsr_seed
        self._probe_id = 0
        from repro.dnswire.name import encode_name
        self._suffix_wire = encode_name(measurement_domain)

    def _query_wire(self, qname_prefix_labels, txid):
        """Build query bytes directly: header + labels + suffix + A/IN.

        Equivalent to ``Message.query(...).to_wire()`` (covered by tests)
        but ~4x faster, which matters at one probe per address per week.
        """
        parts = [bytes((txid >> 8, txid & 0xFF)),
                 b"\x01\x00\x00\x01\x00\x00\x00\x00\x00\x00"]
        for label in qname_prefix_labels:
            raw = label.encode("ascii")
            parts.append(bytes((len(raw),)))
            parts.append(raw)
        parts.append(self._suffix_wire)
        parts.append(b"\x00\x01\x00\x01")  # QTYPE=A, QCLASS=IN
        return b"".join(parts)

    def probe(self, target_ip):
        """Send one scan probe; return parsed (rcode, source_ip) pairs."""
        self._probe_id += 1
        txid = self._probe_id & 0xFFFF
        from repro.netsim.address import ip_to_int
        payload = self._query_wire(
            ("r%x" % (self._probe_id & 0xFFFFFF),
             "%08x" % ip_to_int(target_ip)), txid)
        packet = UdpPacket(self.source_ip, self.source_port,
                           target_ip, 53, payload)
        observations = []
        for response in self.network.send_udp(packet):
            try:
                message = Message.from_wire(response.packet.payload)
            except ValueError:
                continue  # corrupted packet: ignored (§5 Completeness)
            if not message.header.qr:
                continue
            if message.header.txid != txid:
                continue
            observations.append((message.rcode, response.packet.src_ip))
        return observations

    def scan(self, target_space):
        """Scan every allowed address in the target space once."""
        result = ScanResult(self.network.clock.now)
        order = LFSR.order_for(len(target_space))
        lfsr = LFSR(order, seed=(self.lfsr_seed % ((1 << order) - 1)) or 1)
        for state in lfsr.sequence():
            index = state - 1
            if index >= len(target_space):
                continue
            target_ip = target_space.ip_at(index)
            if is_reserved(target_ip):
                continue
            if self.blacklist is not None and target_ip in self.blacklist:
                continue
            result.probes_sent += 1
            for rcode, source_ip in self.probe(target_ip):
                result.record(target_ip, rcode, source_ip)
        return result

    def scan_addresses(self, addresses):
        """Probe an explicit address list (re-probing known resolvers)."""
        result = ScanResult(self.network.clock.now)
        for target_ip in addresses:
            if self.blacklist is not None and target_ip in self.blacklist:
                continue
            result.probes_sent += 1
            for rcode, source_ip in self.probe(target_ip):
                result.record(target_ip, rcode, source_ip)
        return result
