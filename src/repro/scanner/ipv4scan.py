"""Internet-wide IPv4 DNS scanning (paper §2.2).

One scan sends a single DNS A query to every address in the target space
(minus blacklist and reserved ranges), in LFSR-permuted order, with the
target address hex-encoded in the query name.  The result records, per
rcode, the set of *target* addresses that answered — attributing responses
by the encoded name, so hosts answering from a different source address
(multi-homed / DNS proxies) are both counted correctly and detected.

Hot-path design (the "wire-level fast paths" of the sharded engine):

* responses are triaged with :func:`repro.dnswire.message.peek_header`
  — txid/qr/rcode read straight off the fixed 12-byte header, no
  :class:`~repro.dnswire.message.Message` construction;
* query payloads come from a pre-encoded template (header flags, suffix
  wire, and QTYPE/QCLASS tail are built once per scanner);
* reserved/blacklist membership is precomputed per target prefix, so
  prefixes that cannot intersect an excluded range skip the per-address
  checks entirely;
* probe identity (txid + cache-busting label) is a pure hash of
  (scanner, scan epoch, target address) rather than a sequential
  counter, so any index subset of the target space — a shard — sends
  byte-identical probes to what a sequential full scan would send.
"""

import bisect

from repro.dnswire.constants import (
    RCODE_NOERROR,
    RCODE_REFUSED,
    RCODE_SERVFAIL,
)
from repro.dnswire.message import peek_header
from repro.dnswire.name import encode_name
from repro.netsim.address import (
    RESERVED_NETWORKS,
    int_to_ip,
    ip_to_int,
    is_reserved,
)
from repro.scanner.lfsr import LFSR

# Fixed header flags + section counts of a standard 1-question query
# (rd=1, qdcount=1), i.e. bytes 2..11 of every probe we send.
_QUERY_HEADER_TAIL = b"\x01\x00\x00\x01\x00\x00\x00\x00\x00\x00"
_QUESTION_TAIL = b"\x00\x01\x00\x01"  # QTYPE=A, QCLASS=IN
_M64 = (1 << 64) - 1
# Single-byte label-length prefixes, indexed by length (qname labels are
# at most 63 bytes by definition).
_LABEL_LEN = tuple(bytes((n,)) for n in range(64))


def _mix64(value):
    """splitmix64 finaliser (see :mod:`repro.netsim.network`)."""
    value &= _M64
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _M64
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _M64
    value ^= value >> 31
    return value


def _networks_intersect(left, right):
    """True when two CIDR prefixes share any address."""
    return ((left.base & right.mask) == right.base
            or (right.base & left.mask) == left.base)


class ScanTargetSpace:
    """Maps a dense index space onto a set of target prefixes.

    Substitution note: the paper permutes all 2^32 addresses; scanning the
    simulator's full IPv4 space would waste cycles on guaranteed-empty
    space, so the LFSR permutes the *allocated* universe instead — the
    same behaviour (bounded per-network probe rate) on the same
    populated prefixes.
    """

    def __init__(self, prefixes):
        self.prefixes = list(prefixes)
        self._cumulative = []
        total = 0
        for prefix in self.prefixes:
            self._cumulative.append(total)
            total += prefix.num_addresses
        self.total = total

    def int_at(self, index):
        """The 32-bit integer address ``index`` positions into the space."""
        if not 0 <= index < self.total:
            raise IndexError(index)
        slot = bisect.bisect_right(self._cumulative, index) - 1
        return self.prefixes[slot].base + (index - self._cumulative[slot])

    def ip_at(self, index):
        return int_to_ip(self.int_at(index))

    def shard_ranges(self, shards):
        """Split ``[0, len(self))`` into ``shards`` contiguous ranges.

        Every index lands in exactly one range; empty trailing ranges are
        dropped (a space smaller than the shard count yields fewer
        ranges).  Sharding by index keeps each worker's targets
        contiguous in address space while the shared LFSR walk still
        interleaves probe *order* pseudo-randomly within each shard.
        """
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        size, remainder = divmod(self.total, shards)
        ranges = []
        start = 0
        for shard in range(shards):
            stop = start + size + (1 if shard < remainder else 0)
            if stop > start:
                ranges.append((start, stop))
            start = stop
        return ranges

    def __len__(self):
        return self.total


class ScanResult:
    """Outcome of one Internet-wide scan.

    ``retransmissions`` counts retry datagrams beyond the first probe of
    each target (zero on the default single-probe path).  ``provenance``
    is filled by the sharded engine: one entry per completed work item,
    recording which shards degraded (worker retried, split, or rescued
    in-process) on the way to this merged result.
    """

    def __init__(self, timestamp):
        self.timestamp = timestamp
        self.by_rcode = {}            # rcode -> set of target IPs
        self.responders = set()       # all target IPs that answered
        self.divergent_sources = set()  # targets whose reply src differed
        self.probes_sent = 0
        self.retransmissions = 0
        self.provenance = []

    def record(self, target_ip, rcode, source_ip):
        self.responders.add(target_ip)
        self.by_rcode.setdefault(rcode, set()).add(target_ip)
        if source_ip != target_ip:
            self.divergent_sources.add(target_ip)

    def merge(self, other):
        """Fold another (disjoint shard's) result into this one."""
        self.probes_sent += other.probes_sent
        self.retransmissions += other.retransmissions
        self.provenance.extend(other.provenance)
        self.responders |= other.responders
        self.divergent_sources |= other.divergent_sources
        for rcode, targets in other.by_rcode.items():
            self.by_rcode.setdefault(rcode, set()).update(targets)
        return self

    @property
    def degraded_shards(self):
        """Provenance entries that did not complete on a first try."""
        return [entry for entry in self.provenance
                if entry.get("status") != "ok"]

    @property
    def noerror(self):
        return self.by_rcode.get(RCODE_NOERROR, set())

    @property
    def refused(self):
        return self.by_rcode.get(RCODE_REFUSED, set())

    @property
    def servfail(self):
        return self.by_rcode.get(RCODE_SERVFAIL, set())

    def counts(self):
        """Summary dict used by the magnitude analysis (Figure 1)."""
        return {
            "all": len(self.responders),
            "noerror": len(self.noerror),
            "refused": len(self.refused),
            "servfail": len(self.servfail),
        }

    def __repr__(self):
        return "ScanResult(t=%.0f, %d responders)" % (
            self.timestamp, len(self.responders))


def retry_schedule(probe_timeout, retries, backoff=2.0, rtt_floor=0.0):
    """Effective per-attempt response timeouts for one target.

    Pure function: attempt ``k`` waits ``probe_timeout * backoff**k``
    (exponential backoff), floored at ``rtt_floor`` — the deterministic
    pairwise round-trip estimate, so a far target is never timed out
    faster than its own path latency.  ``None`` entries mean "wait
    indefinitely" (no timeout configured): responses are never discarded
    as late, and a retry happens only when nothing answered at all.
    """
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if probe_timeout is None:
        return [None] * (retries + 1)
    return [max(probe_timeout * backoff ** attempt, rtt_floor)
            for attempt in range(retries + 1)]


def merge_scan_results(timestamp, results):
    """Merge disjoint per-shard results into one :class:`ScanResult`.

    Set unions are order-insensitive and the shards partition the index
    space, so the merged result is identical to what one sequential scan
    over the whole space produces.
    """
    merged = ScanResult(timestamp)
    for result in results:
        merged.merge(result)
    return merged


class TargetFilter:
    """Precomputed reserved/blacklist membership for one target space.

    Prefixes that provably cannot intersect a reserved range or a
    blacklisted network are marked clean once, reducing the per-address
    check to (at most) one set lookup.
    """

    def __init__(self, target_space, blacklist=None):
        self.blacklist = blacklist
        blacklist_networks = list(blacklist.networks) if blacklist else []
        self.blacklist_addresses = (frozenset(blacklist.addresses)
                                    if blacklist else frozenset())
        excluded = list(RESERVED_NETWORKS) + blacklist_networks
        # One flag per prefix slot, aligned with ScanTargetSpace.prefixes.
        self.clean = [
            not any(_networks_intersect(prefix, other)
                    for other in excluded)
            for prefix in target_space.prefixes
        ]
        self.all_clean = all(self.clean) and not self.blacklist_addresses

    def allows_slot(self, slot, value):
        """Membership check given the prefix slot and integer address."""
        if self.clean[slot]:
            return value not in self.blacklist_addresses
        if is_reserved(value):
            return False
        if self.blacklist is not None and value in self.blacklist:
            return False
        return True


class Ipv4Scanner:
    """Sends one DNS A probe per target address and aggregates responses.

    ``retries``/``probe_timeout``/``backoff`` configure the robust probe
    path: up to ``retries`` retransmissions per unanswered target, each
    attempt's timeout growing exponentially from ``probe_timeout`` but
    never below the target's own deterministic round-trip estimate
    (adaptive per-target timeout).  The defaults (``retries=0``,
    ``probe_timeout=None``) keep the single-probe fast path — and the
    existing determinism gates — bit-identical to before.
    """

    # The engine checks this before passing its heartbeat callback
    # (scanner doubles in tests may not accept ``on_progress``).
    supports_progress = True

    def __init__(self, network, source_ip, measurement_domain,
                 blacklist=None, source_port=31337, lfsr_seed=0xACE1,
                 perf=None, retries=0, probe_timeout=None, backoff=2.0,
                 timeout_margin=1.25):
        self.network = network
        self.source_ip = source_ip
        self.measurement_domain = measurement_domain
        self.blacklist = blacklist
        self.source_port = source_port
        self.lfsr_seed = lfsr_seed
        self.perf = perf
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.retries = retries
        self.probe_timeout = probe_timeout
        self.backoff = backoff
        self.timeout_margin = timeout_margin
        self._suffix_wire = encode_name(measurement_domain)
        # Pre-encoded query template: everything after the txid plus
        # everything after the variable qname labels.
        self._template_head = _QUERY_HEADER_TAIL
        self._template_tail = self._suffix_wire + _QUESTION_TAIL
        # Scanner identity folded into probe ids: the verification
        # scanner (different source) must not reuse the primary
        # scanner's query names even when probing the same target at the
        # same simulated time.
        self._identity = _mix64(
            (ip_to_int(source_ip) << 17) ^ source_port ^ lfsr_seed)

    # -- probe construction ------------------------------------------------

    def _probe_key(self, epoch, target_int):
        """Deterministic 40-bit probe identity for one (scan, target).

        Independent of probe *order*, so shard workers and a sequential
        scan build byte-identical packets for the same target.
        """
        return _mix64(self._identity ^ (epoch << 32) ^ target_int)

    def _scan_epoch(self):
        """Per-scan component of probe identity (advances with the clock)."""
        return int(self.network.clock.now) & 0xFFFFFFFF

    def _query_wire(self, qname_prefix_labels, txid):
        """Build query bytes directly: header + labels + suffix + A/IN.

        Equivalent to ``Message.query(...).to_wire()`` (covered by tests)
        but ~4x faster, which matters at one probe per address per week.
        """
        parts = [txid.to_bytes(2, "big"), self._template_head]
        for label in qname_prefix_labels:
            raw = label.encode("ascii")
            parts.append(bytes((len(raw),)))
            parts.append(raw)
        parts.append(self._template_tail)
        return b"".join(parts)

    def probe(self, target_ip):
        """Send one scan probe; return parsed (rcode, source_ip) pairs."""
        target_int = ip_to_int(target_ip)
        return self._probe_fast(target_ip, target_int,
                                self._probe_key(self._scan_epoch(),
                                                target_int))

    def _probe_fast(self, target_ip, target_int, key):
        """Hot-path probe: pre-keyed identity, header-peek triage."""
        txid = key & 0xFFFF
        prefix_label = b"r%x" % ((key >> 16) & 0xFFFFFF)
        payload = b"".join((
            txid.to_bytes(2, "big"), self._template_head,
            bytes((len(prefix_label),)), prefix_label,
            b"\x08", b"%08x" % target_int,
            self._template_tail))
        observations = []
        for response in self.network.send_probe(
                self.source_ip, self.source_port, target_ip, 53,
                target_int, payload):
            peeked = peek_header(response.packet.payload)
            if peeked is None:
                continue  # short/truncated garbage (§5 Completeness)
            rtxid, qr, rcode = peeked
            if not qr:
                continue
            if rtxid != txid:
                continue  # mismatched (or corrupted) transaction id
            observations.append((rcode, response.packet.src_ip))
        return observations

    # -- scans -------------------------------------------------------------

    def scan(self, target_space, index_range=None, on_progress=None):
        """Scan every allowed address in the target space once.

        ``index_range`` restricts the walk to a contiguous ``(start,
        stop)`` index shard; the full LFSR permutation is still walked
        (integer ops only), so probe order within the shard — and every
        probe's bytes — match the sequential scan exactly.

        ``on_progress`` (no arguments) is invoked every 1024 probes —
        the engine's worker heartbeat.  When retries or a probe timeout
        are configured the scan takes the robust per-target path;
        otherwise the single-probe fast loop below runs unchanged.
        """
        if self.retries > 0 or self.probe_timeout is not None:
            return self._scan_robust(target_space, index_range,
                                     on_progress)
        result = ScanResult(self.network.clock.now)
        total = len(target_space)
        if total == 0:
            return result
        start, stop = index_range if index_range is not None else (0, total)
        epoch = self._scan_epoch()
        order = LFSR.order_for(total)
        lfsr = LFSR(order, seed=(self.lfsr_seed % ((1 << order) - 1)) or 1)
        target_filter = TargetFilter(target_space, self.blacklist)
        # The loop below is the engine's single-core fast path: the LFSR
        # step, probe-key mix, payload template fill, and response header
        # peek are all inlined (no per-probe function calls beyond the
        # network send itself).  ``probe()``/``_probe_fast`` remain the
        # readable reference implementation of one probe; the determinism
        # test comparing sharded vs sequential scans pins both paths.
        cumulative = target_space._cumulative
        prefixes = target_space.prefixes
        bisect_right = bisect.bisect_right
        allows_slot = target_filter.allows_slot
        all_clean = target_filter.all_clean
        seed_epoch = self._identity ^ (epoch << 32)
        template_head = self._template_head
        template_tail = self._template_tail
        send_probe = self.network.send_probe
        source_ip = self.source_ip
        source_port = self.source_port
        label_len = _LABEL_LEN
        record = result.record
        taps = lfsr.taps
        state = first = lfsr.state
        probes_sent = 0
        responses_seen = 0
        # Response round trips, batched into the perf histogram in one
        # flush (appends happen only on the rare answered-probe path).
        rtts = [] if self.perf is not None else None
        while True:
            index = state - 1
            if index < total and start <= index < stop:
                slot = bisect_right(cumulative, index) - 1
                value = prefixes[slot].base + (index - cumulative[slot])
                if all_clean or allows_slot(slot, value):
                    probes_sent += 1
                    if on_progress is not None and not probes_sent & 1023:
                        on_progress()
                    # splitmix64 finaliser, inlined (== _mix64).
                    key = (seed_epoch ^ value) & _M64
                    key ^= key >> 30
                    key = (key * 0xBF58476D1CE4E5B9) & _M64
                    key ^= key >> 27
                    key = (key * 0x94D049BB133111EB) & _M64
                    key ^= key >> 31
                    txid = key & 0xFFFF
                    prefix_label = b"r%x" % ((key >> 16) & 0xFFFFFF)
                    payload = b"".join((
                        txid.to_bytes(2, "big"), template_head,
                        label_len[len(prefix_label)], prefix_label,
                        b"\x08", b"%08x" % value, template_tail))
                    target_ip = int_to_ip(value)
                    responses = send_probe(source_ip, source_port,
                                           target_ip, 53, value, payload)
                    for response in responses:
                        raw = response.packet.payload
                        # Inlined peek_header + qr/txid triage.
                        if len(raw) < 12 or not raw[2] & 0x80:
                            continue
                        if (raw[0] << 8) | raw[1] != txid:
                            continue
                        responses_seen += 1
                        if rtts is not None:
                            rtts.append(response.latency)
                        record(target_ip, raw[3] & 0x0F,
                               response.packet.src_ip)
            # Inlined Fibonacci LFSR step (== LFSR.step).
            lsb = state & 1
            state >>= 1
            if lsb:
                state ^= taps
            if state == first:
                break
        result.probes_sent = probes_sent
        if self.perf is not None:
            self.perf.count("probes_sent", probes_sent)
            self.perf.count("responses_seen", responses_seen)
            self.perf.count("parse_calls_avoided", responses_seen)
            self.perf.observe_many("probe_rtt_seconds", rtts)
        return result

    def _scan_robust(self, target_space, index_range, on_progress):
        """Retry/backoff scan path (``retries > 0`` or a probe timeout).

        Walks the identical LFSR permutation as the fast loop, but each
        unanswered target is retransmitted up to ``retries`` times with
        exponentially growing, latency-floored timeouts.  Every
        retransmission re-sends the *same* flow, so the network's
        flow-keyed fate draws give it a fresh, order-independent loss
        decision — merged shard results stay bit-identical to a
        sequential robust scan.
        """
        result = ScanResult(self.network.clock.now)
        total = len(target_space)
        if total == 0:
            return result
        start, stop = index_range if index_range is not None else (0, total)
        epoch = self._scan_epoch()
        order = LFSR.order_for(total)
        lfsr = LFSR(order, seed=(self.lfsr_seed % ((1 << order) - 1)) or 1)
        target_filter = TargetFilter(target_space, self.blacklist)
        cumulative = target_space._cumulative
        prefixes = target_space.prefixes
        bisect_right = bisect.bisect_right
        allows_slot = target_filter.allows_slot
        all_clean = target_filter.all_clean
        seed_epoch = self._identity ^ (epoch << 32)
        attempts = self.retries + 1
        base_schedule = retry_schedule(self.probe_timeout, self.retries,
                                       self.backoff)
        latency_between = self.network.latency_between
        margin = self.timeout_margin
        taps = lfsr.taps
        state = first = lfsr.state
        probes_sent = 0
        targets_probed = 0
        retransmissions = 0
        late_responses = 0
        responses_seen = 0
        rtts = [] if self.perf is not None else None
        while True:
            index = state - 1
            if index < total and start <= index < stop:
                slot = bisect_right(cumulative, index) - 1
                value = prefixes[slot].base + (index - cumulative[slot])
                if all_clean or allows_slot(slot, value):
                    targets_probed += 1
                    if on_progress is not None and \
                            not targets_probed & 1023:
                        on_progress()
                    key = _mix64(seed_epoch ^ value)
                    txid = key & 0xFFFF
                    prefix_label = b"r%x" % ((key >> 16) & 0xFFFFFF)
                    payload = b"".join((
                        txid.to_bytes(2, "big"), self._template_head,
                        _LABEL_LEN[len(prefix_label)], prefix_label,
                        b"\x08", b"%08x" % value, self._template_tail))
                    target_ip = int_to_ip(value)
                    # Adaptive floor: never time a target out faster
                    # than its own deterministic round trip.
                    rtt_floor = None
                    for attempt in range(attempts):
                        timeout = base_schedule[attempt]
                        if timeout is not None:
                            if rtt_floor is None:
                                rtt_floor = 2 * latency_between(
                                    self.source_ip, target_ip) * margin
                            if timeout < rtt_floor:
                                timeout = rtt_floor
                        probes_sent += 1
                        if attempt:
                            retransmissions += 1
                        answered = False
                        for response in self.network.send_probe(
                                self.source_ip, self.source_port,
                                target_ip, 53, value, payload):
                            raw = response.packet.payload
                            if len(raw) < 12 or not raw[2] & 0x80:
                                continue
                            if (raw[0] << 8) | raw[1] != txid:
                                continue
                            if timeout is not None and \
                                    response.latency > timeout:
                                late_responses += 1
                                continue
                            answered = True
                            responses_seen += 1
                            if rtts is not None:
                                rtts.append(response.latency)
                            result.record(target_ip, raw[3] & 0x0F,
                                          response.packet.src_ip)
                        if answered:
                            break
            lsb = state & 1
            state >>= 1
            if lsb:
                state ^= taps
            if state == first:
                break
        result.probes_sent = probes_sent
        result.retransmissions = retransmissions
        if self.perf is not None:
            self.perf.count("probes_sent", probes_sent)
            self.perf.count("responses_seen", responses_seen)
            self.perf.count("parse_calls_avoided", responses_seen)
            self.perf.count("probe_retransmissions", retransmissions)
            if late_responses:
                self.perf.count("probe_responses_late", late_responses)
            self.perf.observe_many("probe_rtt_seconds", rtts)
        return result

    def scan_addresses(self, addresses):
        """Probe an explicit address list (re-probing known resolvers)."""
        result = ScanResult(self.network.clock.now)
        epoch = self._scan_epoch()
        for target_ip in addresses:
            if self.blacklist is not None and target_ip in self.blacklist:
                continue
            result.probes_sent += 1
            target_int = ip_to_int(target_ip)
            key = self._probe_key(epoch, target_int)
            for rcode, source_ip in self._probe_fast(target_ip, target_int,
                                                     key):
                result.record(target_ip, rcode, source_ip)
        if self.perf is not None:
            self.perf.count("probes_sent", result.probes_sent)
        return result
