"""Internet-wide IPv4 DNS scanning (paper §2.2).

One scan sends a single DNS A query to every address in the target space
(minus blacklist and reserved ranges), in LFSR-permuted order, with the
target address hex-encoded in the query name.  The result records, per
rcode, the set of *target* addresses that answered — attributing responses
by the encoded name, so hosts answering from a different source address
(multi-homed / DNS proxies) are both counted correctly and detected.

Hot-path design (the "wire-level fast paths" of the sharded engine):

* the scan hot loop is *batched and columnar* (see DESIGN.md, "Columnar
  scan core"): targets come out of the LFSR permutation in fixed-size
  batches (:class:`repro.scanner.lfsr.TargetBatchIterator`), and each
  batch is triaged in bulk — targets that host no node and interest no
  middlebox (~97% of the space) are settled with C-level set/array
  operations against precomputed columns (addresses, filter mask, loss
  fates, hotness), while the rare "hot" target pays the full per-packet
  wire path, preserving exact per-probe semantics;
* responses are triaged with :func:`repro.dnswire.message.peek_header`
  — txid/qr/rcode read straight off the fixed 12-byte header, no
  :class:`~repro.dnswire.message.Message` construction;
* query payloads come from a preallocated buffer pool
  (:class:`repro.scanner.encoding.ProbeBatchEncoder`): per probe only
  the txid, cache-busting label, and hex target are written;
* reserved/blacklist membership is precomputed per target prefix, so
  prefixes that cannot intersect an excluded range skip the per-address
  checks entirely;
* probe identity (txid + cache-busting label) is a pure hash of
  (scanner, scan epoch, target address) rather than a sequential
  counter, so any index subset of the target space — a shard — sends
  byte-identical probes to what a sequential full scan would send;
* :class:`ScanResult` stores observations as parallel integer columns
  and exposes the historical set API as lazy views, so shard result
  frames and checkpoint snapshots ship raw buffers, not per-IP
  containers.
"""

import bisect
from array import array
from itertools import compress
from sys import intern

from repro.dnswire.constants import (
    RCODE_NOERROR,
    RCODE_REFUSED,
    RCODE_SERVFAIL,
)
from repro.dnswire.message import peek_header
from repro.dnswire.name import encode_name
from repro.netsim.address import (
    RESERVED_NETWORKS,
    int_to_ip,
    ip_to_int,
    is_reserved,
)
from repro.scanner.encoding import ProbeBatchEncoder
from repro.scanner.lfsr import LFSR, TargetBatchIterator, permutation
from repro.scanner.pacing import (
    build_pacing_plan,
    defense_plane,
    normalize_pacing,
)

# Fixed header flags + section counts of a standard 1-question query
# (rd=1, qdcount=1), i.e. bytes 2..11 of every probe we send.
_QUERY_HEADER_TAIL = b"\x01\x00\x00\x01\x00\x00\x00\x00\x00\x00"
_QUESTION_TAIL = b"\x00\x01\x00\x01"  # QTYPE=A, QCLASS=IN
_M64 = (1 << 64) - 1
# Single-byte label-length prefixes, indexed by length (qname labels are
# at most 63 bytes by definition).
_LABEL_LEN = tuple(bytes((n,)) for n in range(64))


def _mix64(value):
    """splitmix64 finaliser (see :mod:`repro.netsim.network`)."""
    value &= _M64
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _M64
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _M64
    value ^= value >> 31
    return value


def _networks_intersect(left, right):
    """True when two CIDR prefixes share any address."""
    return ((left.base & right.mask) == right.base
            or (right.base & left.mask) == left.base)


class ScanTargetSpace:
    """Maps a dense index space onto a set of target prefixes.

    Substitution note: the paper permutes all 2^32 addresses; scanning the
    simulator's full IPv4 space would waste cycles on guaranteed-empty
    space, so the LFSR permutes the *allocated* universe instead — the
    same behaviour (bounded per-network probe rate) on the same
    populated prefixes.
    """

    def __init__(self, prefixes):
        self.prefixes = list(prefixes)
        self._cumulative = []
        total = 0
        for prefix in self.prefixes:
            self._cumulative.append(total)
            total += prefix.num_addresses
        self.total = total

    def int_at(self, index):
        """The 32-bit integer address ``index`` positions into the space."""
        if not 0 <= index < self.total:
            raise IndexError(index)
        slot = bisect.bisect_right(self._cumulative, index) - 1
        return self.prefixes[slot].base + (index - self._cumulative[slot])

    def ip_at(self, index):
        return int_to_ip(self.int_at(index))

    def index_of(self, value):
        """Index of the 32-bit address ``value``, or ``None`` if the
        space does not cover it."""
        for slot, prefix in enumerate(self.prefixes):
            if (value & prefix.mask) == prefix.base:
                return self._cumulative[slot] + (value - prefix.base)
        return None

    def shard_ranges(self, shards):
        """Split ``[0, len(self))`` into ``shards`` contiguous ranges.

        Every index lands in exactly one range; empty trailing ranges are
        dropped (a space smaller than the shard count yields fewer
        ranges).  Sharding by index keeps each worker's targets
        contiguous in address space while the shared LFSR walk still
        interleaves probe *order* pseudo-randomly within each shard.
        """
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        size, remainder = divmod(self.total, shards)
        ranges = []
        start = 0
        for shard in range(shards):
            stop = start + size + (1 if shard < remainder else 0)
            if stop > start:
                ranges.append((start, stop))
            start = stop
        return ranges

    def __len__(self):
        return self.total


# ---------------------------------------------------------------------------
# Columnar sweep support: precomputed per-space columns, memoised at
# module level.  Every column is a pure function of its key (the
# space's prefix layout, plus the filter for the allow mask), so the
# memos survive scenario rebuilds — weekly campaign scans, bench
# repeats, and forked shard workers (which inherit warm caches through
# copy-on-write) all reuse them for free.
# ---------------------------------------------------------------------------

_COLUMN_CACHE = {}
_ALLOWED_CACHE = {}
# Sweep plans: the entire cold settlement of one batched sweep — per
# batch, its size, the states needing the full wire path, and the
# bulk-settled loss count — memoised on everything it is a pure
# function of (space layout, filter, walk parameters, the network's
# live-address signature, middlebox interest, and the loss-draw
# parameters).  Weekly re-scans recompute it only when churn actually
# moved a node; bench repeats and shard workers reuse it outright.
_SWEEP_PLAN_CACHE = {}
# Pacing plans (see repro.scanner.pacing): the full AIMD recurrence
# over every defended target, pure in (space, filter, walk, defense
# configuration, controller config, scanner identity, clock) — shard
# workers and weekly re-scans against an unchanged defense plane reuse
# it outright.
_PACING_PLAN_CACHE = {}
_CACHE_ENTRIES = 8


def _space_signature(target_space):
    """Value-identity of a target space: its exact prefix layout."""
    return tuple((prefix.base, prefix.mask)
                 for prefix in target_space.prefixes)


def _evict(cache):
    if len(cache) >= _CACHE_ENTRIES:
        cache.pop(next(iter(cache)))


def _address_columns(target_space):
    """``(addresses, state_addresses, is_sorted)`` for a space.

    ``addresses`` is the dense index-order address column (an
    ``array('I')``, built per prefix from C-level ``range`` extends —
    never via per-index ``int_at``).  ``state_addresses`` is the same
    column shifted one slot right, so an LFSR *state* (which maps to
    index ``state - 1``) subscripts it directly — batch loops never
    compute ``state - 1`` in Python.  ``is_sorted`` reports whether the
    column is globally ascending, which lets CIDR interest ranges be
    painted with two bisects instead of a per-address pass.
    """
    signature = _space_signature(target_space)
    cached = _COLUMN_CACHE.get(signature)
    if cached is not None:
        return cached
    addresses = array("I")
    for prefix in target_space.prefixes:
        addresses.extend(range(prefix.base,
                               prefix.base + prefix.num_addresses))
    state_addresses = array("I", (0,))
    state_addresses.extend(addresses)
    is_sorted = all(
        left.base + left.num_addresses <= right.base
        for left, right in zip(target_space.prefixes,
                               target_space.prefixes[1:]))
    columns = (addresses, state_addresses, is_sorted)
    _evict(_COLUMN_CACHE)
    _COLUMN_CACHE[signature] = columns
    return columns


def _allowed_column(target_space, target_filter):
    """Index-aligned allow mask: 1 where the filter admits the address.

    Equivalent to :meth:`TargetFilter.allows_slot` over every index —
    clean prefixes are painted with one slice store, only the rare
    dirty prefix walks its addresses.
    """
    blacklist = target_filter.blacklist
    key = (_space_signature(target_space), target_filter.signature())
    cached = _ALLOWED_CACHE.get(key)
    if cached is not None:
        return cached
    allowed = bytearray(target_space.total)
    for slot, prefix in enumerate(target_space.prefixes):
        start = target_space._cumulative[slot]
        count = prefix.num_addresses
        if target_filter.clean[slot]:
            allowed[start:start + count] = b"\x01" * count
        else:
            base = prefix.base
            for offset in range(count):
                value = base + offset
                if is_reserved(value):
                    continue
                if blacklist is not None and value in blacklist:
                    continue
                allowed[start + offset] = 1
    for value in target_filter.blacklist_addresses:
        index = target_space.index_of(value)
        if index is not None:
            allowed[index] = 0
    _evict(_ALLOWED_CACHE)
    _ALLOWED_CACHE[key] = allowed
    return allowed


class ScanResult:
    """Outcome of one Internet-wide scan, stored columnar.

    Observations live in three parallel columns — ``_targets``
    (``array('I')``, 32-bit target address), ``_rcodes`` (``array('B')``)
    and ``_flags`` (``array('B')``, bit 0 = the reply's source address
    differed from the target) — one row per accepted response.  The
    historical set-based API (``responders``, ``by_rcode``,
    ``divergent_sources``, the rcode properties) is preserved as lazy
    views, built once on first access and cached until the next
    mutation, so ``analysis/``, ``reporting``, and the pipeline read
    exactly what they always read.  Merging concatenates columns
    (C-level ``array.extend``); pickling — shard result frames and
    checkpoint snapshots — ships the raw column buffers in canonical
    (target, rcode, flags) sort order, making serialized bytes
    independent of probe completion order and of set-hash iteration.

    ``retransmissions`` counts retry datagrams beyond the first probe of
    each target (zero on the default single-probe path).  ``provenance``
    is filled by the sharded engine: one entry per completed work item,
    recording which shards degraded (worker retried, split, or rescued
    in-process) on the way to this merged result.

    ``suppressed`` maps ``(window_base, defense cause)`` to the number
    of targets the adaptive pacing controller skipped there (graceful
    degradation under hostile defenses): coverage deliberately not
    attempted, recorded instead of silently lost.  It is a dedicated
    mergeable structure — not provenance entries — because the forked
    engine replaces result provenance wholesale with its own
    work-item log; :attr:`degraded_shards` surfaces both.

    ``carried`` is the delta-scanning analogue (see
    :mod:`repro.scanner.delta`): ``(window_base, delta cause)`` -> the
    number of verdicts copied forward from the prior week instead of
    probed, each such row also wearing :attr:`FLAG_CARRIED` in its
    flags column.  Same contract as ``suppressed``: mergeable,
    canonically sorted in pickles, omitted entirely when empty so
    full-sweep results keep their historical bytes.
    """

    FLAG_DIVERGENT = 1
    FLAG_CARRIED = 2

    def __init__(self, timestamp):
        self.timestamp = timestamp
        self.probes_sent = 0
        self.retransmissions = 0
        self.provenance = []
        self.suppressed = {}
        self.carried = {}
        self._targets = array("I")
        self._rcodes = array("B")
        self._flags = array("B")
        self._views = None

    # -- recording ---------------------------------------------------------

    def record(self, target_ip, rcode, source_ip):
        self.record_value(ip_to_int(target_ip), rcode,
                          source_ip != target_ip)

    def record_suppressed(self, window_base, cause, count=1):
        """Count targets skipped under ``cause`` in one /16-style window."""
        key = (window_base, cause)
        self.suppressed[key] = self.suppressed.get(key, 0) + count

    def record_value(self, value, rcode, divergent):
        """Columnar recording: the target as a 32-bit int, the response
        rcode, and whether the reply source diverged from the target."""
        self._targets.append(value)
        self._rcodes.append(rcode & 0x0F)
        self._flags.append(self.FLAG_DIVERGENT if divergent else 0)
        self._views = None

    def record_carried(self, value, rcode, flags, window_base, cause):
        """Copy one prior-week row forward without probing it.

        The row keeps its original rcode and divergence flag, gains
        :attr:`FLAG_CARRIED`, and is tallied under ``(window_base,
        cause)`` in :attr:`carried` — explicit provenance for every
        verdict this result asserts but did not measure."""
        self._targets.append(value)
        self._rcodes.append(rcode)
        self._flags.append(flags | self.FLAG_CARRIED)
        key = (window_base, cause)
        self.carried[key] = self.carried.get(key, 0) + 1
        self._views = None

    def merge(self, other):
        """Fold another (disjoint shard's) result into this one."""
        self.probes_sent += other.probes_sent
        self.retransmissions += other.retransmissions
        self.provenance.extend(other.provenance)
        for key, count in other.suppressed.items():
            self.suppressed[key] = self.suppressed.get(key, 0) + count
        for key, count in other.carried.items():
            self.carried[key] = self.carried.get(key, 0) + count
        self._targets.extend(other._targets)
        self._rcodes.extend(other._rcodes)
        self._flags.extend(other._flags)
        self._views = None
        return self

    # -- streaming chunks --------------------------------------------------
    #
    # A streaming scan never holds a whole shard's columns: it detaches
    # them as raw-buffer chunks (take_chunk) that the engine spills to
    # disk, and the final result carries only the scalar tail plus the
    # last partial columns.  Reassembly (absorb_chunk per spilled chunk,
    # in any order) is exact: __getstate__ canonically row-sorts, so the
    # reassembled result pickles byte-identically to a resident one.

    def row_count(self):
        """Rows currently resident in the columns."""
        return len(self._targets)

    def take_chunk(self):
        """Detach the resident columns as a raw-bytes chunk, leaving
        the scalar fields (and future rows) in place."""
        chunk = (self._targets.tobytes(), self._rcodes.tobytes(),
                 self._flags.tobytes())
        self._targets = array("I")
        self._rcodes = array("B")
        self._flags = array("B")
        self._views = None
        return chunk

    def absorb_chunk(self, chunk):
        """Append a chunk produced by :meth:`take_chunk`."""
        targets, rcodes, flags = chunk
        self._targets.frombytes(targets)
        self._rcodes.frombytes(rcodes)
        self._flags.frombytes(flags)
        self._views = None
        return self

    # -- set views ---------------------------------------------------------

    def _view(self, which):
        views = self._views
        if views is None:
            targets = self._targets
            ips = list(map(int_to_ip, targets))
            by_rcode = {}
            for ip, rcode in zip(ips, self._rcodes):
                bucket = by_rcode.get(rcode)
                if bucket is None:
                    bucket = by_rcode[rcode] = set()
                bucket.add(ip)
            divergent = set(compress(
                ips, (flag & self.FLAG_DIVERGENT for flag in self._flags)))
            views = self._views = (set(ips), by_rcode, divergent)
        return views[which]

    def iter_rows(self):
        """Yield raw ``(target_int, rcode, flags)`` rows — the feed a
        delta scan carries forward (see :mod:`repro.scanner.delta`)."""
        return zip(self._targets, self._rcodes, self._flags)

    def canonical_columns(self):
        """The observation columns as canonically sorted raw bytes.

        Returns ``(targets, rcodes, flags)`` byte strings in (target,
        rcode, flags) row-sort order — the same canonical form
        :meth:`__getstate__` ships — so two results holding the same
        observations in any internal order yield identical buffers.
        The observatory's ingest layer folds and digests week columns
        off this view without paying a full pickle round trip.
        """
        rows = sorted(zip(self._targets, self._rcodes, self._flags))
        return (array("I", (row[0] for row in rows)).tobytes(),
                array("B", (row[1] for row in rows)).tobytes(),
                array("B", (row[2] for row in rows)).tobytes())

    @property
    def responders(self):
        """All target IPs that answered (lazy set view)."""
        return self._view(0)

    @property
    def by_rcode(self):
        """rcode -> set of target IPs (lazy dict-of-sets view)."""
        return self._view(1)

    @property
    def divergent_sources(self):
        """Targets whose reply came from a different source address."""
        return self._view(2)

    @property
    def degraded_shards(self):
        """Provenance entries that did not complete on a first try,
        plus one synthesized ``status: "suppressed"`` entry per
        (window, cause) the pacing controller gave up on — every loss
        of coverage in one place."""
        degraded = [entry for entry in self.provenance
                    if entry.get("status") != "ok"]
        for (window, cause), count in sorted(self.suppressed.items()):
            degraded.append({"status": "suppressed",
                             "window": int_to_ip(window),
                             "cause": cause, "targets": count})
        return degraded

    @property
    def suppressed_targets(self):
        """Total targets skipped under defensive suppression."""
        return sum(self.suppressed.values())

    @property
    def carried_targets(self):
        """Total verdicts carried forward from a prior scan unprobed."""
        return sum(self.carried.values())

    @property
    def noerror(self):
        return self.by_rcode.get(RCODE_NOERROR, set())

    @property
    def refused(self):
        return self.by_rcode.get(RCODE_REFUSED, set())

    @property
    def servfail(self):
        return self.by_rcode.get(RCODE_SERVFAIL, set())

    def counts(self):
        """Summary dict used by the magnitude analysis (Figure 1).

        Computed straight off the integer columns (deduplicated in int
        sets) unless the string views already exist — at million-host
        scale the views cost ~50 bytes per responder in interned
        strings, the int sets a fraction of that, transiently.
        """
        if self._views is not None:
            return {
                "all": len(self.responders),
                "noerror": len(self.noerror),
                "refused": len(self.refused),
                "servfail": len(self.servfail),
            }
        responders = set()
        by_rcode = {}
        for value, rcode in zip(self._targets, self._rcodes):
            responders.add(value)
            bucket = by_rcode.get(rcode)
            if bucket is None:
                bucket = by_rcode[rcode] = set()
            bucket.add(value)
        return {
            "all": len(responders),
            "noerror": len(by_rcode.get(RCODE_NOERROR, ())),
            "refused": len(by_rcode.get(RCODE_REFUSED, ())),
            "servfail": len(by_rcode.get(RCODE_SERVFAIL, ())),
        }

    # -- serialization -----------------------------------------------------
    #
    # Shard workers pickle results back to the supervisor and the
    # checkpoint store pickles them into snapshots; both therefore ship
    # the raw column buffers (a few bytes per responder) instead of
    # per-IP string containers, and both get canonical bytes: rows are
    # emitted sorted, so any completion order serializes identically.

    def __getstate__(self):
        rows = sorted(zip(self._targets, self._rcodes, self._flags))
        targets = array("I", (row[0] for row in rows))
        rcodes = array("B", (row[1] for row in rows))
        flags = array("B", (row[2] for row in rows))

        # Pickle output must depend on *values* only, never on string
        # object identity: the pickler memoizes by id, so a provenance
        # string that happens to share an object with a later key (a
        # compile-time literal) serializes shorter than an equal-but-
        # distinct string from an unpickled checkpoint.  Interning every
        # string routes all equal values through one canonical object.
        def canonical(value):
            return intern(value) if type(value) is str else value

        state = {
            "timestamp": self.timestamp,
            "probes_sent": self.probes_sent,
            "retransmissions": self.retransmissions,
            "provenance": [{intern(key): canonical(value)
                            for key, value in entry.items()}
                           for entry in self.provenance],
            "targets": targets.tobytes(),
            "rcodes": rcodes.tobytes(),
            "flags": flags.tobytes(),
        }
        if self.suppressed:
            # Canonical (sorted) and omitted when empty, so pickles of
            # suppression-free results keep their historical bytes.
            state["suppressed"] = tuple(sorted(
                (window, intern(cause), count)
                for (window, cause), count in self.suppressed.items()))
        if self.carried:
            # Same byte-stability contract as suppressed.
            state["carried"] = tuple(sorted(
                (window, intern(cause), count)
                for (window, cause), count in self.carried.items()))
        return state

    def __setstate__(self, state):
        self.timestamp = state["timestamp"]
        self.probes_sent = state["probes_sent"]
        self.retransmissions = state["retransmissions"]
        self.provenance = state["provenance"]
        self.suppressed = {(window, cause): count for window, cause, count
                           in state.get("suppressed", ())}
        self.carried = {(window, cause): count for window, cause, count
                        in state.get("carried", ())}
        self._targets = array("I")
        self._targets.frombytes(state["targets"])
        self._rcodes = array("B")
        self._rcodes.frombytes(state["rcodes"])
        self._flags = array("B")
        self._flags.frombytes(state["flags"])
        self._views = None

    def __repr__(self):
        return "ScanResult(t=%.0f, %d responders)" % (
            self.timestamp, len(self.responders))


def retry_schedule(probe_timeout, retries, backoff=2.0, rtt_floor=0.0):
    """Effective per-attempt response timeouts for one target.

    Pure function: attempt ``k`` waits ``probe_timeout * backoff**k``
    (exponential backoff), floored at ``rtt_floor`` — the deterministic
    pairwise round-trip estimate, so a far target is never timed out
    faster than its own path latency.  ``None`` entries mean "wait
    indefinitely" (no timeout configured): responses are never discarded
    as late, and a retry happens only when nothing answered at all.

    When the floor dominates even the *last* backed-off attempt, a
    per-attempt ``max()`` would flatten the whole schedule to
    ``[rtt_floor] * n`` — silently defeating exponential backoff for
    far targets with small base timeouts.  That edge re-anchors the
    exponent at the floor instead, so attempt spacing keeps widening.
    """
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if probe_timeout is None:
        return [None] * (retries + 1)
    if retries and probe_timeout * backoff ** retries <= rtt_floor:
        return [rtt_floor * backoff ** attempt
                for attempt in range(retries + 1)]
    return [max(probe_timeout * backoff ** attempt, rtt_floor)
            for attempt in range(retries + 1)]


def merge_scan_results(timestamp, results):
    """Merge disjoint per-shard results into one :class:`ScanResult`.

    Set unions are order-insensitive and the shards partition the index
    space, so the merged result is identical to what one sequential scan
    over the whole space produces.
    """
    merged = ScanResult(timestamp)
    for result in results:
        merged.merge(result)
    return merged


class TargetFilter:
    """Precomputed reserved/blacklist membership for one target space.

    Prefixes that provably cannot intersect a reserved range or a
    blacklisted network are marked clean once, reducing the per-address
    check to (at most) one set lookup.
    """

    def __init__(self, target_space, blacklist=None):
        self.blacklist = blacklist
        blacklist_networks = list(blacklist.networks) if blacklist else []
        self.blacklist_addresses = (frozenset(blacklist.addresses)
                                    if blacklist else frozenset())
        excluded = list(RESERVED_NETWORKS) + blacklist_networks
        # One flag per prefix slot, aligned with ScanTargetSpace.prefixes.
        self.clean = [
            not any(_networks_intersect(prefix, other)
                    for other in excluded)
            for prefix in target_space.prefixes
        ]
        self.all_clean = all(self.clean) and not self.blacklist_addresses

    def allows_slot(self, slot, value):
        """Membership check given the prefix slot and integer address."""
        if self.clean[slot]:
            return value not in self.blacklist_addresses
        if is_reserved(value):
            return False
        if self.blacklist is not None and value in self.blacklist:
            return False
        return True

    def signature(self):
        """Value-identity of the filter (the blacklist's exact content),
        used to key the allow-mask and sweep-plan memos."""
        if self.blacklist is None:
            return None
        return (tuple((net.base, net.mask)
                      for net in self.blacklist.networks),
                tuple(sorted(self.blacklist_addresses)))


class Ipv4Scanner:
    """Sends one DNS A probe per target address and aggregates responses.

    ``retries``/``probe_timeout``/``backoff`` configure the robust probe
    path: up to ``retries`` retransmissions per unanswered target, each
    attempt's timeout growing exponentially from ``probe_timeout`` but
    never below the target's own deterministic round-trip estimate
    (adaptive per-target timeout).  The defaults (``retries=0``,
    ``probe_timeout=None``) keep the single-probe fast path — and the
    existing determinism gates — bit-identical to before.

    ``pacing``/``max_pps`` configure the arms-race side (see
    :mod:`repro.scanner.pacing`): ``pacing="adaptive"`` precomputes an
    AIMD pacing plan against the network's defense plane and declares a
    per-probe rate bucket while scanning; ``max_pps`` caps the declared
    rate (and, with pacing off, is declared as the scan's constant
    rate).  Both default off: scans against defense-free networks are
    bit-identical to before.
    """

    # The engine checks this before passing its heartbeat callback
    # (scanner doubles in tests may not accept ``on_progress``).
    supports_progress = True
    # ... and this before passing a streaming chunk sink (same reason).
    supports_chunks = True

    def __init__(self, network, source_ip, measurement_domain,
                 blacklist=None, source_port=31337, lfsr_seed=0xACE1,
                 perf=None, retries=0, probe_timeout=None, backoff=2.0,
                 timeout_margin=1.25, probe_batch=4096, pacing=None,
                 max_pps=None):
        self.network = network
        self.source_ip = source_ip
        self.measurement_domain = measurement_domain
        self.blacklist = blacklist
        self.source_port = source_port
        self.lfsr_seed = lfsr_seed
        self.perf = perf
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if probe_timeout is not None and not probe_timeout > 0:
            raise ValueError("probe_timeout must be > 0 (or None)")
        if probe_batch < 1:
            raise ValueError("probe batch size must be >= 1")
        self.retries = retries
        self.probe_timeout = probe_timeout
        self.backoff = backoff
        self.timeout_margin = timeout_margin
        self.probe_batch = probe_batch
        self.pacing = normalize_pacing(pacing, max_pps)
        self.max_pps = max_pps
        self._encoder = ProbeBatchEncoder(measurement_domain)
        self._suffix_wire = encode_name(measurement_domain)
        # Pre-encoded query template: everything after the txid plus
        # everything after the variable qname labels.
        self._template_head = _QUERY_HEADER_TAIL
        self._template_tail = self._suffix_wire + _QUESTION_TAIL
        # Scanner identity folded into probe ids: the verification
        # scanner (different source) must not reuse the primary
        # scanner's query names even when probing the same target at the
        # same simulated time.
        self._identity = _mix64(
            (ip_to_int(source_ip) << 17) ^ source_port ^ lfsr_seed)

    # -- probe construction ------------------------------------------------

    def _probe_key(self, epoch, target_int):
        """Deterministic 40-bit probe identity for one (scan, target).

        Independent of probe *order*, so shard workers and a sequential
        scan build byte-identical packets for the same target.
        """
        return _mix64(self._identity ^ (epoch << 32) ^ target_int)

    def _scan_epoch(self):
        """Per-scan component of probe identity (advances with the clock)."""
        return int(self.network.clock.now) & 0xFFFFFFFF

    def _query_wire(self, qname_prefix_labels, txid):
        """Build query bytes directly: header + labels + suffix + A/IN.

        Equivalent to ``Message.query(...).to_wire()`` (covered by tests)
        but ~4x faster, which matters at one probe per address per week.
        """
        parts = [txid.to_bytes(2, "big"), self._template_head]
        for label in qname_prefix_labels:
            raw = label.encode("ascii")
            parts.append(bytes((len(raw),)))
            parts.append(raw)
        parts.append(self._template_tail)
        return b"".join(parts)

    def probe(self, target_ip):
        """Send one scan probe; return parsed (rcode, source_ip) pairs."""
        target_int = ip_to_int(target_ip)
        return self._probe_fast(target_ip, target_int,
                                self._probe_key(self._scan_epoch(),
                                                target_int))

    def _probe_fast(self, target_ip, target_int, key):
        """Hot-path probe: pre-keyed identity, header-peek triage."""
        txid = key & 0xFFFF
        prefix_label = b"r%x" % ((key >> 16) & 0xFFFFFF)
        payload = b"".join((
            txid.to_bytes(2, "big"), self._template_head,
            bytes((len(prefix_label),)), prefix_label,
            b"\x08", b"%08x" % target_int,
            self._template_tail))
        observations = []
        for response in self.network.send_probe(
                self.source_ip, self.source_port, target_ip, 53,
                target_int, payload):
            peeked = peek_header(response.packet.payload)
            if peeked is None:
                continue  # short/truncated garbage (§5 Completeness)
            rtxid, qr, rcode = peeked
            if not qr:
                continue
            if rtxid != txid:
                continue  # mismatched (or corrupted) transaction id
            observations.append((rcode, response.packet.src_ip))
        return observations

    # -- scans -------------------------------------------------------------

    def prewarm(self, target_space):
        """Build this space's memoised scan state in the calling process.

        The sharded engine calls this in the parent before forking so
        every worker inherits the LFSR walk, the target address columns,
        and the allowed-selector column copy-on-write.  The walk is
        force-cached even past the usual memo cap: at a ~38M-address
        space (order 26) it is a ~256 MB array that would otherwise be
        rebuilt inside every forked worker.
        """
        total = len(target_space)
        if total == 0:
            return
        order = LFSR.order_for(total)
        period = (1 << order) - 1
        permutation(order, seed=(self.lfsr_seed % period) or 1,
                    force_cache=True)
        target_filter = TargetFilter(target_space, self.blacklist)
        _address_columns(target_space)
        _allowed_column(target_space, target_filter)

    def scan(self, target_space, index_range=None, on_progress=None,
             chunk_sink=None, chunk_rows=65536):
        """Scan every allowed address in the target space once.

        ``index_range`` restricts the walk to a contiguous ``(start,
        stop)`` index shard; the full LFSR permutation is still walked,
        so probe order within the shard — and every probe's bytes —
        match the sequential scan exactly.

        ``on_progress`` (no arguments) is invoked once per ~1024 probes
        — the engine's worker heartbeat.  ``chunk_sink`` enables
        streaming results: whenever the result's resident columns reach
        ``chunk_rows`` rows they are detached (:meth:`ScanResult.
        take_chunk`) and handed to the sink, so the scan never holds
        more than one chunk of observations; the returned result then
        carries only the scalar tail plus the final partial columns.
        When retries or a probe timeout are configured the scan takes
        the robust per-target path; otherwise targets stream out of the
        LFSR permutation in :attr:`probe_batch`-sized batches and each
        batch is either bulk-settled (see :meth:`_scan_batched`) or
        walked per-probe (:meth:`_scan_per_probe` — the exact wire
        path, used whenever bulk short-cuts cannot be proven safe:
        fault injection or a flight recorder active, a middlebox that
        cannot enumerate its interest, or a flow epoch that has already
        drawn packet fates).
        """
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        if self.retries > 0 or self.probe_timeout is not None:
            return self._scan_robust(target_space, index_range,
                                     on_progress, chunk_sink=chunk_sink,
                                     chunk_rows=chunk_rows)
        result = ScanResult(self.network.clock.now)
        total = len(target_space)
        if total == 0:
            return result
        start, stop = index_range if index_range is not None else (0, total)
        epoch = self._scan_epoch()
        order = LFSR.order_for(total)
        period = (1 << order) - 1
        walk = permutation(order, seed=(self.lfsr_seed % period) or 1)
        target_filter = TargetFilter(target_space, self.blacklist)
        addresses, state_addresses, addresses_sorted = \
            _address_columns(target_space)
        # One selector folds every per-state predicate — in-range,
        # in-shard, reserved/blacklist — into a single subscript, so
        # batch extraction is pure C (see TargetBatchIterator).
        allowed = _allowed_column(target_space, target_filter)
        selector = bytearray(period + 1)
        selector[start + 1:stop + 1] = allowed[start:stop]
        batches = TargetBatchIterator(walk, selector,
                                      batch_size=self.probe_batch)
        network = self.network
        begin_epoch = getattr(network, "begin_flow_epoch", None)
        bulk_ok = (begin_epoch is not None
                   and getattr(network, "recorder", None) is None
                   and getattr(network, "faults", None) is None
                   and begin_epoch())
        interest = None
        if bulk_ok:
            interest = network.scan_interest(
                self.source_ip, 53,
                qname_suffix=self.measurement_domain)
        pacing = self._pacing_plan(target_space, target_filter)
        base_bucket = int(self.max_pps) if self.max_pps is not None \
            else None
        paced = pacing is not None or base_bucket is not None
        if paced:
            # Declare the scan's rate to the defense plane; per-target
            # buckets override it probe by probe under adaptive pacing.
            network.scan_rate_bucket = base_bucket
        try:
            if bulk_ok and interest is not None:
                plan_key = None
                nodes_signature = getattr(network, "nodes_signature", None)
                if nodes_signature is not None:
                    # Everything the cold settlement is a function of; an
                    # unkeyable network double just skips the memo.
                    plan_key = (
                        _space_signature(target_space),
                        target_filter.signature(),
                        self.lfsr_seed, start, stop, self.probe_batch,
                        nodes_signature(), tuple(interest),
                        getattr(network, "_seed_high", None),
                        network.loss_rate, self.source_ip,
                        self.source_port)
                result = self._scan_batched(result, batches, addresses,
                                            state_addresses,
                                            addresses_sorted, interest,
                                            epoch, on_progress,
                                            plan_key=plan_key,
                                            pacing=pacing,
                                            base_bucket=base_bucket,
                                            chunk_sink=chunk_sink,
                                            chunk_rows=chunk_rows)
            else:
                result = self._scan_per_probe(result, batches,
                                              state_addresses, epoch,
                                              on_progress, pacing=pacing,
                                              base_bucket=base_bucket,
                                              chunk_sink=chunk_sink,
                                              chunk_rows=chunk_rows)
        finally:
            if paced:
                network.scan_rate_bucket = None
        self._record_pacing_perf(pacing, index_range, total)
        return result

    def _pacing_plan(self, target_space, target_filter):
        """The (memoised) adaptive pacing plan for this scan, or
        ``None`` when pacing is off or no defense plane is armed.

        Built over the *full* allowed space — never a shard slice — so
        every forked worker replays the identical AIMD recurrence; see
        :mod:`repro.scanner.pacing`.
        """
        config = self.pacing
        if config is None:
            return None
        network = self.network
        plane = defense_plane(network, self.source_ip)
        if not plane:
            return None
        total = len(target_space)
        order = LFSR.order_for(total)
        period = (1 << order) - 1
        plan_key = None
        signatures = [getattr(box, "signature", None)
                      for box, __ in plane]
        if all(signatures):
            plan_key = (_space_signature(target_space),
                        target_filter.signature(), self.lfsr_seed,
                        self.source_ip, self.source_port,
                        network.clock.now,
                        tuple(sig() for sig in signatures),
                        config.signature())
            plan = _PACING_PLAN_CACHE.get(plan_key)
            if plan is not None:
                return plan
        walk = permutation(order, seed=(self.lfsr_seed % period) or 1)
        addresses, state_addresses, addresses_sorted = \
            _address_columns(target_space)
        allowed = _allowed_column(target_space, target_filter)
        defended = bytearray(total)
        for __, ranges in plane:
            for base, mask in ranges:
                last = base | (~mask & 0xFFFFFFFF)
                if addresses_sorted:
                    lo = bisect.bisect_left(addresses, base)
                    hi = bisect.bisect_right(addresses, last)
                    if hi > lo:
                        defended[lo:hi] = b"\x01" * (hi - lo)
                else:
                    for position, value in enumerate(addresses):
                        if value & mask == base:
                            defended[position] = 1
        selector = bytearray(period + 1)
        if total:
            selector[1:total + 1] = (
                int.from_bytes(bytes(allowed), "big")
                & int.from_bytes(bytes(defended), "big")
            ).to_bytes(total, "big")
        plan = build_pacing_plan(plane, ip_to_int(self.source_ip),
                                 self._identity, walk, selector,
                                 state_addresses, config)
        if plan_key is not None:
            _evict(_PACING_PLAN_CACHE)
            _PACING_PLAN_CACHE[plan_key] = plan
        return plan

    def _record_pacing_perf(self, pacing, index_range, total):
        """Plan-level pacing observability (window-rate histogram,
        signal counters).  Recorded only by a full-space scan: the plan
        is global, so per-shard workers re-deriving it must not tally
        it once per shard into the merged registry."""
        if pacing is None or self.perf is None:
            return
        if index_range is not None and index_range != (0, total):
            return
        self.perf.observe_many("pacing_window_pps", pacing.window_rates())
        self.perf.count("pacing_defense_signals", pacing.signals)
        if pacing.suppressed_count:
            self.perf.count("pacing_suppressed_planned",
                            pacing.suppressed_count)
        self.perf.gauge("pacing_windows", float(len(pacing.windows)))

    def _hot_column(self, addresses, addresses_sorted, interest):
        """State-aligned hotness mask: 1 where a probe must take the
        full wire path — the address hosts a node, or some middlebox
        declared interest in it.  Everything else ("cold") provably has
        no observable effect beyond the sent/lost counters and can be
        settled in bulk.
        """
        live = self.network._nodes_by_int
        hot = bytearray(map(live.__contains__, addresses))
        for base, mask in interest:
            last = base | (~mask & 0xFFFFFFFF)
            if addresses_sorted:
                lo = bisect.bisect_left(addresses, base)
                hi = bisect.bisect_right(addresses, last)
                if hi > lo:
                    hot[lo:hi] = b"\x01" * (hi - lo)
            else:
                for position, value in enumerate(addresses):
                    if value & mask == base:
                        hot[position] = 1
        column = bytearray(1)
        column.extend(hot)
        return column

    def _build_sweep_plan(self, batches, addresses, state_addresses,
                          addresses_sorted, interest):
        """The cold settlement of a sweep: per batch, ``(size,
        hot_states, lost)`` — the states needing the full wire path and
        the bulk-settled first-occurrence loss count for the rest.
        """
        network = self.network
        state_loss = None
        loss_selector = network.query_loss_selector(
            self.source_ip, self.source_port, 53, addresses)
        if loss_selector is not None:
            state_loss = bytearray(1)
            state_loss.extend(loss_selector)
        state_hot = self._hot_column(addresses, addresses_sorted, interest)
        hot_of = state_hot.__getitem__
        loss_of = state_loss.__getitem__ if state_loss is not None else None
        plan = []
        for batch in batches:
            hot_states = list(compress(batch, map(hot_of, batch)))
            lost = sum(map(loss_of, batch)) if loss_of is not None else 0
            if hot_states and loss_of is not None:
                # Hot probes draw their own fate inside send_probe;
                # their column bits must not be double-counted.
                lost -= sum(map(loss_of, hot_states))
            plan.append((len(batch), hot_states, lost))
        return plan

    def _scan_batched(self, result, batches, addresses, state_addresses,
                      addresses_sorted, interest, epoch, on_progress,
                      plan_key=None, pacing=None, base_bucket=None,
                      chunk_sink=None, chunk_rows=65536):
        """Bulk sweep: settle cold targets per batch with C-level
        column operations, full wire path for hot ones.

        A cold probe's only observable effects in ``send_probe`` are
        one ``udp_queries_sent`` increment and a first-occurrence
        query-loss draw (no node, no interested middlebox, no faults,
        no recorder — all established by the caller), so a whole
        batch's worth collapses to ``len(batch)`` sends plus a sum over
        the precomputed loss column; fates stay bit-identical because
        the column is the same pure flow hash ``send_probe`` draws.
        The settlement itself (:meth:`_build_sweep_plan`) is memoised
        under ``plan_key``, so re-scans against an unchanged world only
        ever pay for the hot probes.
        """
        network = self.network
        plan = _SWEEP_PLAN_CACHE.get(plan_key) if plan_key is not None \
            else None
        if plan is None:
            plan = self._build_sweep_plan(batches, addresses,
                                          state_addresses,
                                          addresses_sorted, interest)
            if plan_key is not None:
                _evict(_SWEEP_PLAN_CACHE)
                _SWEEP_PLAN_CACHE[plan_key] = plan
        # Inert middleboxes (scan_interest == []) are pruned from the
        # hot probes' path checks; network doubles without the hook
        # keep the stock send_probe signature.
        sweep_checks = None
        path_checks = getattr(network, "scan_path_checks", None)
        if path_checks is not None:
            sweep_checks = path_checks(
                self.source_ip, 53, qname_suffix=self.measurement_domain)
        seed_epoch = self._identity ^ (epoch << 32)
        encode = self._encoder.encode
        send_probe = network.send_probe
        source_ip = self.source_ip
        source_port = self.source_port
        addr_of = state_addresses.__getitem__
        record_value = result.record_value
        probes_sent = 0
        bulk_sent = 0
        bulk_lost = 0
        suppressed = 0
        responses_seen = 0
        rtts = [] if self.perf is not None else None
        heartbeat_due = 0
        # Pacing: defended targets are hot by construction (their boxes
        # declare scan_interest), so the plan's per-target decisions are
        # consulted only here — the cold bulk settlement is untouched.
        paced_causes = pacing.suppressed if pacing is not None else None
        paced_rates = pacing.rates.get if pacing is not None else None
        window_mask = pacing.window_mask if pacing is not None else 0
        record_suppressed = result.record_suppressed
        for size, hot_states, lost in plan:
            for state in hot_states:
                value = addr_of(state)
                if paced_causes is not None:
                    cause = paced_causes.get(value)
                    if cause is not None:
                        suppressed += 1
                        record_suppressed(value & window_mask, cause)
                        continue
                    network.scan_rate_bucket = paced_rates(value,
                                                           base_bucket)
                # splitmix64 finaliser, inlined (== _mix64).
                key = (seed_epoch ^ value) & _M64
                key ^= key >> 30
                key = (key * 0xBF58476D1CE4E5B9) & _M64
                key ^= key >> 27
                key = (key * 0x94D049BB133111EB) & _M64
                key ^= key >> 31
                txid, payload = encode(key, value)
                target_ip = int_to_ip(value)
                if sweep_checks is None:
                    responses = send_probe(source_ip, source_port,
                                           target_ip, 53, value, payload)
                else:
                    responses = send_probe(source_ip, source_port,
                                           target_ip, 53, value, payload,
                                           _checks=sweep_checks)
                for response in responses:
                    raw = response.packet.payload
                    # Inlined peek_header + qr/txid triage.
                    if len(raw) < 12 or not raw[2] & 0x80:
                        continue
                    if (raw[0] << 8) | raw[1] != txid:
                        continue
                    responses_seen += 1
                    if rtts is not None:
                        rtts.append(response.latency)
                    record_value(value, raw[3] & 0x0F,
                                 response.packet.src_ip != target_ip)
            probes_sent += size
            bulk_sent += size - len(hot_states)
            bulk_lost += lost
            if chunk_sink is not None and \
                    result.row_count() >= chunk_rows:
                chunk_sink(result.take_chunk())
            if on_progress is not None:
                heartbeat_due += size
                while heartbeat_due >= 1024:
                    on_progress()
                    heartbeat_due -= 1024
        network.absorb_probe_sweep(bulk_sent, bulk_lost)
        result.probes_sent = probes_sent - suppressed
        if self.perf is not None:
            self.perf.count("probes_sent", probes_sent - suppressed)
            self.perf.count("probes_bulk_settled", bulk_sent)
            self.perf.count("responses_seen", responses_seen)
            self.perf.count("parse_calls_avoided", responses_seen)
            if suppressed:
                self.perf.count("pacing_suppressed_targets", suppressed)
            self.perf.observe_many("probe_rtt_seconds", rtts)
        return result

    def _scan_per_probe(self, result, batches, state_addresses, epoch,
                        on_progress, pacing=None, base_bucket=None,
                        chunk_sink=None, chunk_rows=65536):
        """Per-probe sweep over the batched target stream: every target
        takes the full ``send_probe`` wire path (the reference
        semantics), with target generation and filtering still done in
        C-level batches.
        """
        network = self.network
        seed_epoch = self._identity ^ (epoch << 32)
        encode = self._encoder.encode
        send_probe = network.send_probe
        source_ip = self.source_ip
        source_port = self.source_port
        addr_of = state_addresses.__getitem__
        record_value = result.record_value
        probes_sent = 0
        suppressed = 0
        responses_seen = 0
        rtts = [] if self.perf is not None else None
        paced_causes = pacing.suppressed if pacing is not None else None
        paced_rates = pacing.rates.get if pacing is not None else None
        window_mask = pacing.window_mask if pacing is not None else 0
        record_suppressed = result.record_suppressed
        recorder = getattr(network, "recorder", None)
        for batch in batches:
            for state in batch:
                value = addr_of(state)
                if paced_causes is not None:
                    cause = paced_causes.get(value)
                    if cause is not None:
                        suppressed += 1
                        record_suppressed(value & window_mask, cause)
                        if recorder is not None:
                            recorder.record(network.clock.now,
                                            "suppressed", source_ip,
                                            value, cause)
                        continue
                    network.scan_rate_bucket = paced_rates(value,
                                                           base_bucket)
                probes_sent += 1
                if on_progress is not None and not probes_sent & 1023:
                    on_progress()
                # splitmix64 finaliser, inlined (== _mix64).
                key = (seed_epoch ^ value) & _M64
                key ^= key >> 30
                key = (key * 0xBF58476D1CE4E5B9) & _M64
                key ^= key >> 27
                key = (key * 0x94D049BB133111EB) & _M64
                key ^= key >> 31
                txid, payload = encode(key, value)
                target_ip = int_to_ip(value)
                for response in send_probe(source_ip, source_port,
                                           target_ip, 53, value, payload):
                    raw = response.packet.payload
                    # Inlined peek_header + qr/txid triage.
                    if len(raw) < 12 or not raw[2] & 0x80:
                        continue
                    if (raw[0] << 8) | raw[1] != txid:
                        continue
                    responses_seen += 1
                    if rtts is not None:
                        rtts.append(response.latency)
                    record_value(value, raw[3] & 0x0F,
                                 response.packet.src_ip != target_ip)
            if chunk_sink is not None and \
                    result.row_count() >= chunk_rows:
                chunk_sink(result.take_chunk())
        result.probes_sent = probes_sent
        if self.perf is not None:
            self.perf.count("probes_sent", probes_sent)
            self.perf.count("responses_seen", responses_seen)
            self.perf.count("parse_calls_avoided", responses_seen)
            if suppressed:
                self.perf.count("pacing_suppressed_targets", suppressed)
            self.perf.observe_many("probe_rtt_seconds", rtts)
        return result

    def _scan_robust(self, target_space, index_range, on_progress,
                     chunk_sink=None, chunk_rows=65536):
        """Retry/backoff scan path (``retries > 0`` or a probe timeout).

        Walks the identical LFSR permutation as the fast loop, but each
        unanswered target is retransmitted up to ``retries`` times with
        exponentially growing, latency-floored timeouts.  Every
        retransmission re-sends the *same* flow, so the network's
        flow-keyed fate draws give it a fresh, order-independent loss
        decision — merged shard results stay bit-identical to a
        sequential robust scan.
        """
        result = ScanResult(self.network.clock.now)
        total = len(target_space)
        if total == 0:
            return result
        start, stop = index_range if index_range is not None else (0, total)
        epoch = self._scan_epoch()
        order = LFSR.order_for(total)
        lfsr = LFSR(order, seed=(self.lfsr_seed % ((1 << order) - 1)) or 1)
        target_filter = TargetFilter(target_space, self.blacklist)
        cumulative = target_space._cumulative
        prefixes = target_space.prefixes
        bisect_right = bisect.bisect_right
        allows_slot = target_filter.allows_slot
        all_clean = target_filter.all_clean
        seed_epoch = self._identity ^ (epoch << 32)
        attempts = self.retries + 1
        base_schedule = retry_schedule(self.probe_timeout, self.retries,
                                       self.backoff)
        # Floor-anchored escape (mirrors retry_schedule): when a
        # target's rtt floor dominates even the last backed-off base
        # timeout, re-anchor the exponent at the floor so the schedule
        # never silently flattens.
        last_base = base_schedule[-1]
        backoff_steps = [self.backoff ** attempt
                         for attempt in range(attempts)]
        flat_escapes = 0
        latency_between = self.network.latency_between
        margin = self.timeout_margin
        network = self.network
        pacing = self._pacing_plan(target_space, target_filter)
        base_bucket = int(self.max_pps) if self.max_pps is not None \
            else None
        paced = pacing is not None or base_bucket is not None
        paced_causes = pacing.suppressed if pacing is not None else None
        paced_rates = pacing.rates.get if pacing is not None else None
        window_mask = pacing.window_mask if pacing is not None else 0
        recorder = getattr(network, "recorder", None)
        record_suppressed = result.record_suppressed
        suppressed = 0
        taps = lfsr.taps
        state = first = lfsr.state
        probes_sent = 0
        targets_probed = 0
        retransmissions = 0
        late_responses = 0
        responses_seen = 0
        rtts = [] if self.perf is not None else None
        if paced:
            network.scan_rate_bucket = base_bucket
        try:
            while True:
                index = state - 1
                if index < total and start <= index < stop:
                    slot = bisect_right(cumulative, index) - 1
                    value = prefixes[slot].base + (index - cumulative[slot])
                    allowed_here = all_clean or allows_slot(slot, value)
                    cause = (paced_causes.get(value)
                             if allowed_here and paced_causes is not None
                             else None)
                    if cause is not None:
                        suppressed += 1
                        record_suppressed(value & window_mask, cause)
                        if recorder is not None:
                            recorder.record(network.clock.now,
                                            "suppressed", self.source_ip,
                                            value, cause)
                    elif allowed_here:
                        targets_probed += 1
                        if on_progress is not None and \
                                not targets_probed & 1023:
                            on_progress()
                        if paced_rates is not None:
                            network.scan_rate_bucket = paced_rates(
                                value, base_bucket)
                        key = _mix64(seed_epoch ^ value)
                        txid = key & 0xFFFF
                        prefix_label = b"r%x" % ((key >> 16) & 0xFFFFFF)
                        payload = b"".join((
                            txid.to_bytes(2, "big"), self._template_head,
                            _LABEL_LEN[len(prefix_label)], prefix_label,
                            b"\x08", b"%08x" % value, self._template_tail))
                        target_ip = int_to_ip(value)
                        # Adaptive floor: never time a target out faster
                        # than its own deterministic round trip.
                        rtt_floor = None
                        floor_anchored = False
                        for attempt in range(attempts):
                            timeout = base_schedule[attempt]
                            if timeout is not None:
                                if rtt_floor is None:
                                    rtt_floor = 2 * latency_between(
                                        self.source_ip, target_ip) * margin
                                    floor_anchored = (
                                        attempts > 1
                                        and last_base <= rtt_floor)
                                    if floor_anchored:
                                        flat_escapes += 1
                                if floor_anchored:
                                    timeout = rtt_floor * \
                                        backoff_steps[attempt]
                                elif timeout < rtt_floor:
                                    timeout = rtt_floor
                            probes_sent += 1
                            if attempt:
                                retransmissions += 1
                            answered = False
                            for response in network.send_probe(
                                    self.source_ip, self.source_port,
                                    target_ip, 53, value, payload):
                                raw = response.packet.payload
                                if len(raw) < 12 or not raw[2] & 0x80:
                                    continue
                                if (raw[0] << 8) | raw[1] != txid:
                                    continue
                                if timeout is not None and \
                                        response.latency > timeout:
                                    late_responses += 1
                                    continue
                                answered = True
                                responses_seen += 1
                                if rtts is not None:
                                    rtts.append(response.latency)
                                result.record(target_ip, raw[3] & 0x0F,
                                              response.packet.src_ip)
                            if answered:
                                break
                        if chunk_sink is not None and \
                                result.row_count() >= chunk_rows:
                            chunk_sink(result.take_chunk())
                lsb = state & 1
                state >>= 1
                if lsb:
                    state ^= taps
                if state == first:
                    break
        finally:
            if paced:
                network.scan_rate_bucket = None
        result.probes_sent = probes_sent
        result.retransmissions = retransmissions
        if self.perf is not None:
            self.perf.count("probes_sent", probes_sent)
            self.perf.count("responses_seen", responses_seen)
            self.perf.count("parse_calls_avoided", responses_seen)
            self.perf.count("probe_retransmissions", retransmissions)
            if late_responses:
                self.perf.count("probe_responses_late", late_responses)
            if suppressed:
                self.perf.count("pacing_suppressed_targets", suppressed)
            if flat_escapes:
                self.perf.count("rtt_floor_flat_schedules", flat_escapes)
            self.perf.observe_many("probe_rtt_seconds", rtts)
        self._record_pacing_perf(pacing, index_range, total)
        return result

    def scan_addresses(self, addresses):
        """Probe an explicit address list (re-probing known resolvers)."""
        result = ScanResult(self.network.clock.now)
        epoch = self._scan_epoch()
        for target_ip in addresses:
            if self.blacklist is not None and target_ip in self.blacklist:
                continue
            result.probes_sent += 1
            target_int = ip_to_int(target_ip)
            key = self._probe_key(epoch, target_int)
            for rcode, source_ip in self._probe_fast(target_ip, target_int,
                                                     key):
                result.record(target_ip, rcode, source_ip)
        if self.perf is not None:
            self.perf.count("probes_sent", result.probes_sent)
        return result
