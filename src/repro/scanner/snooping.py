"""DNS cache snooping for the utilization study (paper §2.6).

Every 60 minutes for 36 hours, the prober sends non-recursive NS queries
for 15 TLDs to each resolver and records the returned TTLs.  The analysis
layer turns the per-resolver TTL traces into the paper's usage classes:
a TLD whose entry expires and later reappears at full TTL was re-added by
a real client, so the resolver is in use.
"""

from repro.dnswire.constants import QTYPE_NS
from repro.dnswire.message import Message
from repro.netsim.clock import HOUR
from repro.netsim.network import UdpPacket


class SnoopingTrace:
    """TTL observations for one resolver: {tld: [(time, ttl|None|"empty")]}.

    ``None`` records a probe that went unanswered, the string ``"empty"``
    an empty NOERROR response, and an integer the observed NS TTL.
    """

    def __init__(self, resolver_ip):
        self.resolver_ip = resolver_ip
        self.observations = {}

    def record(self, tld, timestamp, value):
        self.observations.setdefault(tld, []).append((timestamp, value))

    def values_for(self, tld):
        return [value for __, value in self.observations.get(tld, [])]

    def answered_any(self):
        return any(value is not None
                   for series in self.observations.values()
                   for __, value in series)

    def __repr__(self):
        return "SnoopingTrace(%s, %d TLDs)" % (
            self.resolver_ip, len(self.observations))


class CacheSnoopingProber:
    """Runs the periodic snooping probes against a resolver sample."""

    def __init__(self, network, source_ip, tlds, interval_minutes=60,
                 duration_hours=36, source_port=31500):
        self.network = network
        self.source_ip = source_ip
        self.tlds = tuple(tlds)
        self.interval_minutes = interval_minutes
        self.duration_hours = duration_hours
        self.source_port = source_port
        self._txid = 0

    def _ask(self, resolver_ip, tld):
        self._txid = (self._txid + 1) & 0xFFFF
        # rd=False: cache snooping must not trigger recursion itself.
        query = Message.query(tld, qtype=QTYPE_NS, txid=self._txid, rd=False)
        packet = UdpPacket(self.source_ip, self.source_port,
                           resolver_ip, 53, query.to_wire())
        for response in self.network.send_udp(packet):
            try:
                message = Message.from_wire(response.packet.payload)
            except ValueError:
                continue
            if not message.header.qr or message.header.txid != self._txid:
                continue
            ns_ttls = [record.ttl for record in message.answers
                       if record.rtype == QTYPE_NS]
            if ns_ttls:
                return max(ns_ttls)
            return "empty"
        return None

    def run(self, resolver_ips):
        """Probe all resolvers for the configured duration.

        Advances the simulated clock by ``duration_hours``.  Returns a
        list of :class:`SnoopingTrace`, one per resolver.
        """
        traces = {ip: SnoopingTrace(ip) for ip in resolver_ips}
        rounds = int(self.duration_hours * 60 / self.interval_minutes) + 1
        for round_index in range(rounds):
            if round_index:
                self.network.clock.advance(self.interval_minutes * 60)
            now = self.network.clock.now
            for resolver_ip in resolver_ips:
                for tld in self.tlds:
                    value = self._ask(resolver_ip, tld)
                    traces[resolver_ip].record(tld, now, value)
        return list(traces.values())
