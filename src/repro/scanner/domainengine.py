"""Sharded domain scanning: step 2 of Figure 3 across worker processes.

Splits the resolver list into N contiguous index shards and drives each
through the shared fork/COW supervision machinery
(:class:`repro.scanner.engine.ShardSupervisor`), the same pattern the
IPv4 scan engine uses for step 1.  Each worker runs
``DomainScanner.scan`` over its index slice of the *same* resolver
list, so the resolver id encoded into every query (txid + source port +
0x20 case pattern) is the global list index — a shard worker emits
byte-identical queries to the ones the sequential scan would emit for
those resolvers.

Determinism contract (verified by ``tests/scanner/test_domainengine.py``
and re-checked by ``benchmarks/perf/bench_pipeline.py``): the
concatenated observation list is **bit-identical** to a sequential
:meth:`DomainScanner.scan` of the same inputs for any shard count.
This holds for the same reasons as the IPv4 engine: query bytes are a
pure function of (resolver index, domain), packet fates are keyed per
flow + occurrence rather than drawn from a shared RNG, and one
resolver's queries — which share a flow 4-tuple — always run in domain
order inside a single worker because shards are contiguous resolver
ranges.  Shard observation lists are concatenated in range-start order,
which is exactly sequential order.

As with the IPv4 engine, worker-side traffic/fault counter deltas and
the scanner's ``queries_sent`` are reconciled into the parent, while
worker-local resolver-cache warm-ups are deliberately dropped (replays
from the identical pre-fork state produce identical answers).
"""

import os
import time

from repro.scanner.engine import ShardSupervisor, _plan_checkpointed_shards


class DomainScanEngine:
    """Runs the per-resolver domain scan, optionally sharded."""

    def __init__(self, scanner, shards=1, perf=None,
                 heartbeat_timeout=None):
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        self.scanner = scanner
        self.shards = shards
        self.perf = perf
        self.heartbeat_timeout = heartbeat_timeout
        # Provenance of the last sharded scan (one entry per work item).
        self.provenance = []

    @property
    def can_fork(self):
        return hasattr(os, "fork")

    def shard_ranges(self, total):
        """Split ``[0, total)`` resolver indexes into contiguous ranges
        (same balanced split as ``ScanTargetSpace.shard_ranges``)."""
        size, remainder = divmod(total, self.shards)
        ranges = []
        start = 0
        for shard in range(self.shards):
            stop = start + size + (1 if shard < remainder else 0)
            if stop > start:
                ranges.append((start, stop))
            start = stop
        return ranges

    def scan(self, resolver_ips, domains, checkpoint=None):
        """Query every domain at every resolver; returns the flat
        observation list, identical to ``DomainScanner.scan``.

        ``checkpoint``, when given, is a :class:`repro.checkpoint`
        scope: completed resolver-range shards are committed as they
        merge and restored on resume instead of re-queried.
        """
        start = time.perf_counter()
        resolver_ips = list(resolver_ips)
        domains = list(domains)
        ranges = self.shard_ranges(len(resolver_ips))
        self.provenance = []
        tracer = getattr(getattr(self.scanner, "network", None),
                         "tracer", None)
        if tracer is not None:
            with tracer.span("domain_scan_engine",
                             resolvers=len(resolver_ips),
                             domains=len(domains), shards=len(ranges)):
                observations = self._scan_inner(resolver_ips, domains,
                                                ranges, checkpoint)
        else:
            observations = self._scan_inner(resolver_ips, domains,
                                            ranges, checkpoint)
        if self.perf is not None:
            self.perf.record_seconds("domain_scan_wall",
                                     time.perf_counter() - start)
            self.perf.count("domain_scans_run")
        return observations

    def _scan_inner(self, resolver_ips, domains, ranges, checkpoint):
        if len(ranges) <= 1 or not self.can_fork:
            return self.scanner.scan(resolver_ips, domains)
        return self._scan_forked(resolver_ips, domains, ranges,
                                 checkpoint=checkpoint)

    def _scan_forked(self, resolver_ips, domains, ranges, checkpoint=None):
        scanner = self.scanner

        def run_range(index_range, on_progress):
            # Returns (observations, queries delta) so the parent can
            # reconcile ``scanner.queries_sent`` for worker shards,
            # whose increments die with the forked process.
            before = scanner.queries_sent
            if on_progress is not None:
                observations = scanner.scan(resolver_ips, domains,
                                            index_range=index_range,
                                            on_progress=on_progress)
            else:
                observations = scanner.scan(resolver_ips, domains,
                                            index_range=index_range)
            return observations, scanner.queries_sent - before

        live_ranges, live_origins, on_item_done, restored, \
            restored_provenance = _plan_checkpointed_shards(
                scanner.network, self.perf, ranges, checkpoint)
        supervisor = ShardSupervisor(
            scanner.network, run_range, perf=self.perf,
            heartbeat_timeout=self.heartbeat_timeout,
            supports_progress=getattr(scanner, "supports_progress", False),
            perf_host=scanner)
        shard_results, provenance = supervisor.run(
            live_ranges, origins=live_origins, on_item_done=on_item_done)
        combined = [(start, result, "restored")
                    for start, result in restored]
        combined.extend(shard_results)
        combined.sort(key=lambda entry: entry[0])
        all_provenance = restored_provenance + provenance
        all_provenance.sort(key=lambda e: (e["start"], e["stop"],
                                           e["attempt"]))
        self.provenance = all_provenance
        observations = []
        for __, (shard_observations, queries), mode in combined:
            observations.extend(shard_observations)
            if mode != "in-process":
                # In-process rescues already advanced the live counter;
                # worker shards (and restored shards, whose run never
                # happened in this process) reconcile here.
                scanner.queries_sent += queries
        return observations

    def __repr__(self):
        return "DomainScanEngine(shards=%d, fork=%s)" % (
            self.shards, self.can_fork)
