"""Sharded domain scanning: step 2 of Figure 3 across worker processes.

Splits the resolver list into N contiguous index shards and drives each
through the shared fork/COW supervision machinery
(:class:`repro.scanner.engine.ShardSupervisor`), the same pattern the
IPv4 scan engine uses for step 1.  Each worker runs
``DomainScanner.scan`` over its index slice of the *same* resolver
list, so the resolver id encoded into every query (txid + source port +
0x20 case pattern) is the global list index — a shard worker emits
byte-identical queries to the ones the sequential scan would emit for
those resolvers.

Determinism contract (verified by ``tests/scanner/test_domainengine.py``
and re-checked by ``benchmarks/perf/bench_pipeline.py``): the
concatenated observation list is **bit-identical** to a sequential
:meth:`DomainScanner.scan` of the same inputs for any shard count.
This holds for the same reasons as the IPv4 engine: query bytes are a
pure function of (resolver index, domain), packet fates are keyed per
flow + occurrence rather than drawn from a shared RNG, and one
resolver's queries — which share a flow 4-tuple — always run in domain
order inside a single worker because shards are contiguous resolver
ranges.  Shard observation lists are concatenated in range-start order,
which is exactly sequential order.

As with the IPv4 engine, worker-side traffic/fault counter deltas and
the scanner's ``queries_sent`` are reconciled into the parent, while
worker-local resolver-cache warm-ups are deliberately dropped (replays
from the identical pre-fork state produce identical answers).
"""

import os
import shutil
import tempfile
import time

from repro.checkpoint.store import SnapshotStore
from repro.scanner.engine import ShardSupervisor, _plan_checkpointed_shards


def _absorb_observation_chunks(tail, chunks):
    """Reassemble a streamed ``(observations, queries)`` shard result.

    Chunks were flushed before the tail, in scan order, so prepending
    them (in emission order) to the tail list reproduces the sequential
    observation order exactly.
    """
    observations, queries = tail
    merged = []
    for chunk in chunks:
        merged.extend(chunk)
    merged.extend(observations)
    return merged, queries


class _OrderedDelivery:
    """Re-sequences out-of-order shard completions for a consumer.

    Shards complete in arbitrary order (and a recovered shard may
    complete as several split work items), but the pipeline must see
    observations in exact sequential resolver order.  Completed items
    are buffered per origin shard; once an origin's items cover its
    whole range, and every earlier origin has been delivered, its
    observations flush to ``consume`` in range order.  At most the
    out-of-order window is ever buffered — a fully in-order run buffers
    nothing beyond the completing shard.
    """

    def __init__(self, ranges, consume, scanner):
        self.ranges = [tuple(r) for r in ranges]
        self.origin_of_start = {r[0]: i for i, r in enumerate(self.ranges)}
        self.consume = consume
        self.scanner = scanner
        self.parts = {}           # origin -> [(start, observations)]
        self.covered = {}         # origin -> indexes covered so far
        self.complete = set()
        self.cursor = 0
        self.delivered = 0

    def add_restored(self, start, result):
        origin = self.origin_of_start[start]
        observations, queries = result
        self.scanner.queries_sent += queries
        self.parts.setdefault(origin, []).append((start, observations))
        self.complete.add(origin)
        self._flush()

    def add_item(self, item, result, mode):
        start, stop, origin, __attempt = item
        observations, queries = result
        if mode != "in-process":
            # In-process rescues already advanced the live counter;
            # worker shards reconcile here.
            self.scanner.queries_sent += queries
        self.parts.setdefault(origin, []).append((start, observations))
        span = self.covered.get(origin, 0) + (stop - start)
        self.covered[origin] = span
        origin_start, origin_stop = self.ranges[origin]
        if span == origin_stop - origin_start:
            self.complete.add(origin)
        self._flush()

    def _flush(self):
        while self.cursor < len(self.ranges) and \
                self.cursor in self.complete:
            parts = self.parts.pop(self.cursor)
            parts.sort(key=lambda entry: entry[0])
            for __, observations in parts:
                if observations:
                    self.delivered += len(observations)
                    self.consume(observations)
            self.cursor += 1


class DomainScanEngine:
    """Runs the per-resolver domain scan, optionally sharded.

    ``stream_results`` bounds worker memory the same way the IPv4
    engine does: workers flush observation chunks of ``chunk_rows``
    through the pipe, the parent spills them via a
    :class:`SnapshotStore`, and each shard's observations are folded
    back together on completion.  Independently, :meth:`scan` accepts a
    ``consume`` callback that delivers observations incrementally (in
    exact sequential order) instead of returning them as one list — the
    classification pipeline's streaming entry point.
    """

    def __init__(self, scanner, shards=1, perf=None,
                 heartbeat_timeout=None, stream_results=False,
                 chunk_rows=65536, spill_dir=None):
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        self.scanner = scanner
        self.shards = shards
        self.perf = perf
        self.heartbeat_timeout = heartbeat_timeout
        self.stream_results = stream_results
        self.chunk_rows = chunk_rows
        self.spill_dir = spill_dir
        # Provenance of the last sharded scan (one entry per work item).
        self.provenance = []

    @property
    def can_fork(self):
        return hasattr(os, "fork")

    def shard_ranges(self, total):
        """Split ``[0, total)`` resolver indexes into contiguous ranges
        (same balanced split as ``ScanTargetSpace.shard_ranges``)."""
        size, remainder = divmod(total, self.shards)
        ranges = []
        start = 0
        for shard in range(self.shards):
            stop = start + size + (1 if shard < remainder else 0)
            if stop > start:
                ranges.append((start, stop))
            start = stop
        return ranges

    def scan(self, resolver_ips, domains, checkpoint=None, consume=None):
        """Query every domain at every resolver; returns the flat
        observation list, identical to ``DomainScanner.scan``.

        ``checkpoint``, when given, is a :class:`repro.checkpoint`
        scope: completed resolver-range shards are committed as they
        merge and restored on resume instead of re-queried.

        ``consume``, when given, is called with successive observation
        batches — delivered in exact sequential (resolver-index) order
        as shards complete — and :meth:`scan` returns the *count* of
        observations delivered instead of a list, so the engine never
        accumulates the full observation set.
        """
        start = time.perf_counter()
        resolver_ips = list(resolver_ips)
        domains = list(domains)
        ranges = self.shard_ranges(len(resolver_ips))
        self.provenance = []
        tracer = getattr(getattr(self.scanner, "network", None),
                         "tracer", None)
        if tracer is not None:
            with tracer.span("domain_scan_engine",
                             resolvers=len(resolver_ips),
                             domains=len(domains), shards=len(ranges)):
                observations = self._scan_inner(resolver_ips, domains,
                                                ranges, checkpoint,
                                                consume)
        else:
            observations = self._scan_inner(resolver_ips, domains,
                                            ranges, checkpoint, consume)
        if self.perf is not None:
            self.perf.record_seconds("domain_scan_wall",
                                     time.perf_counter() - start)
            self.perf.count("domain_scans_run")
        return observations

    def _scan_inner(self, resolver_ips, domains, ranges, checkpoint,
                    consume=None):
        if len(ranges) <= 1 or not self.can_fork:
            observations = self.scanner.scan(resolver_ips, domains)
            if consume is None:
                return observations
            if observations:
                consume(observations)
            return len(observations)
        return self._scan_forked(resolver_ips, domains, ranges,
                                 checkpoint=checkpoint, consume=consume)

    def _open_spill_store(self):
        """The chunk spill store for a streamed scan, or ``(None, None)``
        (see :meth:`ScanEngine._open_spill_store`)."""
        if not self.stream_results or \
                not getattr(self.scanner, "supports_chunks", False):
            return None, None
        if self.spill_dir is not None:
            return SnapshotStore(self.spill_dir, self.perf), None
        temp = tempfile.mkdtemp(prefix="domainscan-spill-")
        return SnapshotStore(temp, self.perf), temp

    def _scan_forked(self, resolver_ips, domains, ranges, checkpoint=None,
                     consume=None):
        scanner = self.scanner
        chunk_rows = self.chunk_rows

        def run_range(index_range, on_progress, chunk_sink=None):
            # Returns (observations, queries delta) so the parent can
            # reconcile ``scanner.queries_sent`` for worker shards,
            # whose increments die with the forked process.
            before = scanner.queries_sent
            kwargs = {"index_range": index_range}
            if on_progress is not None:
                kwargs["on_progress"] = on_progress
            if chunk_sink is not None:
                kwargs["chunk_sink"] = chunk_sink
                kwargs["chunk_rows"] = chunk_rows
            observations = scanner.scan(resolver_ips, domains, **kwargs)
            return observations, scanner.queries_sent - before

        live_ranges, live_origins, on_item_done, restored, \
            restored_provenance = _plan_checkpointed_shards(
                scanner.network, self.perf, ranges, checkpoint)
        streamer = None
        item_hook = on_item_done
        if consume is not None:
            streamer = _OrderedDelivery(ranges, consume, scanner)
            for start, result in restored:
                streamer.add_restored(start, result)
            restored = []               # delivered; do not re-collect

            def item_hook(item, payload, entry):
                if on_item_done is not None:
                    on_item_done(item, payload, entry)
                streamer.add_item(item, payload["result"], entry["mode"])

        spill_store, spill_temp = self._open_spill_store()
        try:
            supervisor = ShardSupervisor(
                scanner.network, run_range, perf=self.perf,
                heartbeat_timeout=self.heartbeat_timeout,
                supports_progress=getattr(scanner, "supports_progress",
                                          False),
                perf_host=scanner, chunk_store=spill_store,
                reassemble=_absorb_observation_chunks,
                retain_results=consume is None)
            shard_results, provenance = supervisor.run(
                live_ranges, origins=live_origins,
                on_item_done=item_hook)
        finally:
            if spill_temp is not None:
                shutil.rmtree(spill_temp, ignore_errors=True)
        all_provenance = restored_provenance + provenance
        all_provenance.sort(key=lambda e: (e["start"], e["stop"],
                                           e["attempt"]))
        self.provenance = all_provenance
        if streamer is not None:
            return streamer.delivered
        combined = [(start, result, "restored")
                    for start, result in restored]
        combined.extend(shard_results)
        combined.sort(key=lambda entry: entry[0])
        observations = []
        for __, (shard_observations, queries), mode in combined:
            observations.extend(shard_observations)
            if mode != "in-process":
                # In-process rescues already advanced the live counter;
                # worker shards (and restored shards, whose run never
                # happened in this process) reconcile here.
                scanner.queries_sent += queries
        return observations

    def __repr__(self):
        return "DomainScanEngine(shards=%d, fork=%s)" % (
            self.shards, self.can_fork)
