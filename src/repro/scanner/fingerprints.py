"""The device-fingerprint database: regex rules over banner text.

The paper's authors manually compiled more than 2,245 regular expressions
over aggregated banner responses, attributing hardware and OS details via
vendor manuals (e.g. the token ``dm500plus login`` identifies a DVR
running Linux on PowerPC).  This is the same mechanism at smaller scale:
an ordered rule list where the first (most specific) match wins.
"""

import re

from repro.resolvers.devices import (
    HW_CAMERA,
    HW_DSLAM,
    HW_DVR,
    HW_EMBEDDED,
    HW_FIREWALL,
    HW_NAS,
    HW_ROUTER,
    HW_SERVER,
    HW_UNKNOWN,
    OS_CENTOS,
    OS_LINUX,
    OS_OTHER,
    OS_ROUTEROS,
    OS_SMARTWARE,
    OS_UNIX,
    OS_UNKNOWN,
    OS_WINDOWS,
    OS_ZYNOS,
)


class FingerprintRule:
    """One regex rule: pattern -> (hardware, os, vendor)."""

    def __init__(self, pattern, hardware, os, vendor=None, notes=None):
        self.regex = re.compile(pattern, re.IGNORECASE | re.DOTALL)
        self.hardware = hardware
        self.os = os
        self.vendor = vendor
        self.notes = notes

    def matches(self, text):
        return self.regex.search(text) is not None

    def __repr__(self):
        return "FingerprintRule(%r -> %s/%s)" % (
            self.regex.pattern, self.hardware, self.os)


FINGERPRINT_RULES = (
    # -- routers / modems / gateways -----------------------------------------
    FingerprintRule(r"zyxel|zynos|rompager/6", HW_ROUTER, OS_ZYNOS, "ZyXEL",
                    "ZyNOS runs on ZyXEL CPE"),
    FingerprintRule(r"tp-?link.*router|router webserver", HW_ROUTER,
                    OS_LINUX, "TP-LINK"),
    FingerprintRule(r"dsl-26\d\d|micro_httpd.*dsl|bcm96338", HW_ROUTER,
                    OS_LINUX, "D-Link"),
    FingerprintRule(r"mikrotik|rosssh", HW_ROUTER, OS_ROUTEROS, "MikroTik"),
    FingerprintRule(r"draytek|vigor", HW_ROUTER, OS_OTHER, "DrayTek"),
    FingerprintRule(r"ssh-1\.99-cisco|user access verification", HW_ROUTER,
                    OS_OTHER, "Cisco"),
    FingerprintRule(r"netgear\s+dg\d+", HW_ROUTER, OS_LINUX, "NETGEAR"),
    FingerprintRule(r"smartware|smartnode", HW_ROUTER, OS_SMARTWARE,
                    "Patton"),
    # -- firewalls ------------------------------------------------------------
    FingerprintRule(r"fortissh|fgtserver|fortigate", HW_FIREWALL, OS_OTHER,
                    "Fortinet"),
    FingerprintRule(r"sonicwall", HW_FIREWALL, OS_OTHER, "SonicWall"),
    # -- cameras / DVRs -------------------------------------------------------
    FingerprintRule(r"netwave ip camera", HW_CAMERA, OS_LINUX, "Netwave"),
    FingerprintRule(r"hikvision", HW_CAMERA, OS_LINUX, "Hikvision"),
    FingerprintRule(r"dm500plus login|dm500\+", HW_DVR, OS_LINUX,
                    "Dream Multimedia",
                    "DVR running Linux on PowerPC (paper's example token)"),
    FingerprintRule(r"dvrdvs", HW_DVR, OS_LINUX, None),
    # -- NAS / DSLAM ----------------------------------------------------------
    FingerprintRule(r"synology", HW_NAS, OS_LINUX, "Synology"),
    FingerprintRule(r"nasftpd|qnap", HW_NAS, OS_LINUX, "QNAP"),
    FingerprintRule(r"zhone|malc", HW_DSLAM, OS_OTHER, "Zhone"),
    # -- embedded -------------------------------------------------------------
    FingerprintRule(r"goahead-webs", HW_EMBEDDED, OS_OTHER, None,
                    "GoAhead embedded web server (VxWorks/eCos family)"),
    FingerprintRule(r"rompager", HW_EMBEDDED, OS_OTHER, None,
                    "RomPager embedded web server"),
    FingerprintRule(r"busybox", HW_EMBEDDED, OS_LINUX, None,
                    "BusyBox shell banner"),
    FingerprintRule(r"lantronix", HW_EMBEDDED, OS_OTHER, "Lantronix",
                    "serial-to-LAN converter"),
    FingerprintRule(r"raspberrypi", HW_EMBEDDED, OS_LINUX, "Raspberry Pi"),
    FingerprintRule(r"server: arduino", HW_EMBEDDED, OS_OTHER, "Arduino"),
    # -- servers (generic OS identification; keep after device rules) ---------
    FingerprintRule(r"centos", HW_SERVER, OS_CENTOS, None),
    FingerprintRule(r"microsoft-iis|microsoft ftp", HW_SERVER, OS_WINDOWS,
                    "Microsoft"),
    FingerprintRule(r"freebsd|openbsd|netbsd|sunos", HW_SERVER, OS_UNIX,
                    None),
    FingerprintRule(r"ubuntu|debian|vsftpd|openssh.*linux", HW_SERVER,
                    OS_LINUX, None),
)


class FingerprintMatcher:
    """Applies the rule list to grabbed banners; first match wins."""

    def __init__(self, rules=FINGERPRINT_RULES):
        self.rules = tuple(rules)

    def classify(self, host_banners):
        """Classify one :class:`HostBanners`; returns (hardware, os,
        vendor) with ``Unknown`` components when nothing matches."""
        text = host_banners.all_text()
        for rule in self.rules:
            if rule.matches(text):
                return rule.hardware, rule.os, rule.vendor
        return HW_UNKNOWN, OS_UNKNOWN, None

    def classify_all(self, banner_list):
        """Classify many hosts; returns {ip: (hardware, os, vendor)}."""
        return {banners.ip: self.classify(banners)
                for banners in banner_list}
