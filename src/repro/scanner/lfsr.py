"""Linear feedback shift registers for scan-order permutation.

The paper's scanner "applies a linear feedback shift register of order
2^32 - 1 to distribute the sequence of target IP addresses", so scanned
networks see only a thin trickle of probes at any moment.  A maximal-length
LFSR of order *n* visits every value in [1, 2^n - 1] exactly once in a
pseudo-random order; the scanner picks the smallest order covering its
target space and skips out-of-range states.

The batched scan pipeline consumes the register through
:func:`permutation` (the full period materialised once into an
``array('I')`` and memoised — the walk is a pure function of ``(order,
seed, taps)``, so weekly re-scans and bench repeats pay nothing) and
:class:`TargetBatchIterator` (fixed-size batches of selected states,
extracted with C-level ``compress``/``islice`` instead of a per-state
Python loop).
"""

from array import array
from itertools import compress, islice

# Maximal-length Fibonacci LFSR tap masks (taps as a bitmask of the
# polynomial, excluding the x^n term), one per register width.
MAXIMAL_TAPS = {
    3: 0b110,
    4: 0b1100,
    5: 0b10100,
    6: 0b110000,
    7: 0b1100000,
    8: 0b10111000,
    9: 0b100010000,
    10: 0b1001000000,
    11: 0b10100000000,
    12: 0b111000001000,
    13: 0b1110010000000,
    14: 0b11100000000010,
    15: 0b110000000000000,
    16: 0b1101000000001000,
    17: 0b10010000000000000,
    18: 0b100000010000000000,
    19: 0b1110010000000000000,
    20: 0b10010000000000000000,
    21: 0b101000000000000000000,
    22: 0b1100000000000000000000,
    23: 0b10000100000000000000000,
    24: 0b111000010000000000000000,
    25: 0b1001000000000000000000000,
    26: 0b10000000000000000000100011,
    27: 0b100000000000000000000010011,
    28: 0b1001000000000000000000000000,
    29: 0b10100000000000000000000000000,
    30: 0b100000000000000000000000101001,
    31: 0b1001000000000000000000000000000,
    32: 0b10000000001000000000000000000011,
}


class LFSR:
    """A Fibonacci LFSR over ``order`` bits with maximal-length taps.

    Iterating yields every integer in ``[1, 2**order - 1]`` exactly once,
    starting from ``seed`` (which must be non-zero and fit the register).
    """

    def __init__(self, order, seed=1, taps=None):
        if order not in MAXIMAL_TAPS and taps is None:
            raise ValueError("no known maximal taps for order %d" % order)
        self.order = order
        self.taps = taps if taps is not None else MAXIMAL_TAPS[order]
        self.mask = (1 << order) - 1
        seed &= self.mask
        if seed == 0:
            raise ValueError("LFSR seed must be non-zero")
        self.seed = seed
        self.state = seed

    def step(self):
        """Advance one state and return it."""
        lsb = self.state & 1
        self.state >>= 1
        if lsb:
            self.state ^= self.taps
        return self.state

    def sequence(self):
        """Yield the full period: every non-zero state exactly once."""
        yield self.state
        first = self.state
        while True:
            value = self.step()
            if value == first:
                return
            yield value

    @property
    def period(self):
        return self.mask

    @staticmethod
    def order_for(count):
        """Smallest register order whose period covers ``count`` values."""
        order = 3
        while (1 << order) - 1 < count:
            order += 1
        return order


# The permutation memo: (order, seed, taps) -> array('I') of the full
# period.  Periods above the cap (16 MiB of states) are still built on
# demand but not retained.
_PERMUTATION_CACHE = {}
_PERMUTATION_CACHE_MAX_PERIOD = 1 << 22
_PERMUTATION_CACHE_ENTRIES = 8


def permutation(order, seed=1, taps=None, force_cache=False):
    """The full LFSR walk as a reusable ``array('I')`` of states.

    Element ``i`` is the register state after ``i`` steps from ``seed``
    (element 0 is the seed itself): exactly the visit order
    :meth:`LFSR.sequence` yields, in random-access, C-iterable form.

    ``force_cache`` memoises the walk even past the size cap: the
    sharded engine's pre-fork prewarm uses it so million-address scans
    build their (hundreds of MB) walk once and share it copy-on-write
    across every worker, instead of paying the build per process.
    """
    lfsr = LFSR(order, seed=seed, taps=taps)
    key = (order, lfsr.seed, lfsr.taps)
    cached = _PERMUTATION_CACHE.get(key)
    if cached is not None:
        return cached
    walk = array("I", lfsr.sequence())
    if force_cache or lfsr.period <= _PERMUTATION_CACHE_MAX_PERIOD:
        if len(_PERMUTATION_CACHE) >= _PERMUTATION_CACHE_ENTRIES:
            _PERMUTATION_CACHE.pop(next(iter(_PERMUTATION_CACHE)))
        _PERMUTATION_CACHE[key] = walk
    return walk


class TargetBatchIterator:
    """Fixed-size batches of permuted LFSR states passing a selector.

    ``selector`` is an integer-indexable mask (a ``bytearray`` of
    length ``period + 1``, indexed by state value) folding every
    per-state predicate — in-range, in-shard, not filtered — into one
    subscript.  Extraction runs entirely in C: ``compress`` pairs the
    permutation with ``map(selector.__getitem__, ...)`` and ``islice``
    chops the survivors into lists of at most ``batch_size`` states, in
    exact permutation order.  Iterating is single-shot (the underlying
    stream is consumed).
    """

    def __init__(self, walk, selector, batch_size=4096):
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        self.batch_size = batch_size
        self._stream = compress(walk, map(selector.__getitem__, walk))

    def __iter__(self):
        stream = self._stream
        size = self.batch_size
        while True:
            batch = list(islice(stream, size))
            if not batch:
                return
            yield batch
