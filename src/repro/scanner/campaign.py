"""Weekly scan campaigns (the 13-month monitoring of §2.2–§2.5).

Runs an Internet-wide scan every simulated week, advancing the clock and
the churn model in between, and optionally runs a verification scan from a
second source in a different /8 to estimate how many networks block the
primary scanner (§2.2 Scan Verification).
"""

from repro.netsim.clock import WEEK
from repro.scanner.engine import ScanEngine
from repro.scanner.ipv4scan import Ipv4Scanner


class WeeklySnapshot:
    """One week's scan result plus its campaign metadata."""

    def __init__(self, week, result, verification=None):
        self.week = week
        self.result = result
        self.verification = verification

    def __repr__(self):
        return "WeeklySnapshot(week=%d, %d responders)" % (
            self.week, len(self.result.responders))


class ScanCampaign:
    """Drives weekly scans over a target space for a number of weeks."""

    def __init__(self, network, churn_model, target_space, source_ip,
                 measurement_domain, blacklist=None,
                 verification_source_ip=None, shards=1, perf=None,
                 retries=0, probe_timeout=None, heartbeat_timeout=None):
        self.network = network
        self.churn = churn_model
        self.target_space = target_space
        self.perf = perf
        self.scanner = Ipv4Scanner(network, source_ip, measurement_domain,
                                   blacklist=blacklist, perf=perf,
                                   retries=retries,
                                   probe_timeout=probe_timeout)
        self.engine = ScanEngine(self.scanner, shards=shards, perf=perf,
                                 heartbeat_timeout=heartbeat_timeout)
        self.verification_scanner = None
        self.verification_engine = None
        if verification_source_ip is not None:
            self.verification_scanner = Ipv4Scanner(
                network, verification_source_ip, measurement_domain,
                blacklist=blacklist, source_port=31338, perf=perf,
                retries=retries, probe_timeout=probe_timeout)
            self.verification_engine = ScanEngine(
                self.verification_scanner, shards=shards, perf=perf,
                heartbeat_timeout=heartbeat_timeout)
        self.snapshots = []

    def run_week(self, verify=False):
        """Advance churn, run this week's scan (plus verification scan)."""
        self.churn.step()
        week = len(self.snapshots)
        result = self.engine.scan(self.target_space)
        verification = None
        if verify and self.verification_engine is not None:
            verification = self.verification_engine.scan(self.target_space)
        snapshot = WeeklySnapshot(week, result, verification)
        self.snapshots.append(snapshot)
        if self.perf is not None:
            self.perf.count("weeks_scanned")
        self.network.clock.advance(WEEK)
        return snapshot

    def run(self, weeks, verify_last=False):
        """Run a full campaign of ``weeks`` weekly scans."""
        for week in range(weeks):
            self.run_week(verify=verify_last and week == weeks - 1)
        return self.snapshots

    def first(self):
        return self.snapshots[0]

    def last(self):
        return self.snapshots[-1]
