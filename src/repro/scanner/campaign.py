"""Weekly scan campaigns (the 13-month monitoring of §2.2–§2.5).

Runs an Internet-wide scan every simulated week, advancing the clock and
the churn model in between, and optionally runs a verification scan from a
second source in a different /8 to estimate how many networks block the
primary scanner (§2.2 Scan Verification).

With a checkpoint attached (see :mod:`repro.checkpoint`), every
completed week is committed durably — snapshot plus the world state a
resume needs (clock, traffic counters, perf, a churn digest) — and a
resumed campaign *fast-forwards* through committed weeks: it replays the
churn model's deterministic ``step()`` draws, restores the recorded
snapshot and counters, and validates via the churn digest that the
rebuilt world converged on the one the checkpoint came from, before
scanning the first incomplete week for real.
"""

from repro.netsim.clock import WEEK
from repro.scanner import delta as delta_mod
from repro.scanner.delta import normalize_delta
from repro.scanner.engine import ScanEngine
from repro.scanner.ipv4scan import Ipv4Scanner


class CampaignError(RuntimeError):
    """A campaign was asked for state it does not have (or cannot trust)."""


class WeeklySnapshot:
    """One week's scan result plus its campaign metadata."""

    def __init__(self, week, result, verification=None):
        self.week = week
        self.result = result
        self.verification = verification

    def __repr__(self):
        return "WeeklySnapshot(week=%d, %d responders)" % (
            self.week, len(self.result.responders))


class ScanCampaign:
    """Drives weekly scans over a target space for a number of weeks."""

    def __init__(self, network, churn_model, target_space, source_ip,
                 measurement_domain, blacklist=None,
                 verification_source_ip=None, shards=1, perf=None,
                 retries=0, probe_timeout=None, backoff=2.0,
                 heartbeat_timeout=None, probe_batch=4096, pacing=None,
                 max_pps=None, stream_results=False, chunk_rows=65536,
                 delta=None):
        self.network = network
        self.churn = churn_model
        self.target_space = target_space
        self.perf = perf
        self.delta = normalize_delta(delta)
        self.scanner = Ipv4Scanner(network, source_ip, measurement_domain,
                                   blacklist=blacklist, perf=perf,
                                   retries=retries,
                                   probe_timeout=probe_timeout,
                                   backoff=backoff,
                                   probe_batch=probe_batch,
                                   pacing=pacing, max_pps=max_pps)
        self.engine = ScanEngine(self.scanner, shards=shards, perf=perf,
                                 heartbeat_timeout=heartbeat_timeout,
                                 stream_results=stream_results,
                                 chunk_rows=chunk_rows)
        self.verification_scanner = None
        self.verification_engine = None
        if verification_source_ip is not None:
            self.verification_scanner = Ipv4Scanner(
                network, verification_source_ip, measurement_domain,
                blacklist=blacklist, source_port=31338, perf=perf,
                retries=retries, probe_timeout=probe_timeout,
                backoff=backoff, probe_batch=probe_batch,
                pacing=pacing, max_pps=max_pps)
            self.verification_engine = ScanEngine(
                self.verification_scanner, shards=shards, perf=perf,
                heartbeat_timeout=heartbeat_timeout,
                stream_results=stream_results, chunk_rows=chunk_rows)
        self.snapshots = []

    def run_week(self, verify=False, checkpoint=None, force_full=False):
        """Advance churn, run this week's scan (plus verification scan).

        With :attr:`delta` configured, non-scheduled weeks after the
        first run as delta weeks (see :mod:`repro.scanner.delta`): the
        churn model is asked for its forecast *before* it steps, prior
        verdicts in stable prefixes are carried forward with audit
        probes and drift escalation, and only churned prefixes are
        re-probed.  ``force_full`` pins a full sweep regardless (the
        closing week of :meth:`run` re-baselines this way).
        """
        week = len(self.snapshots)
        forecast = None
        if self.delta is not None and not force_full and week > 0 \
                and week % self.delta.full_sweep_every != 0 \
                and self.snapshots:
            forecast = self.churn.pending_churn()
        self.churn.step()
        tracer = getattr(self.network, "tracer", None)
        if tracer is not None:
            with tracer.span("week", week=week, verify=bool(verify),
                             delta=forecast is not None):
                result, verification = self._scan_week(week, verify,
                                                       checkpoint,
                                                       forecast)
        else:
            result, verification = self._scan_week(week, verify,
                                                   checkpoint, forecast)
        snapshot = WeeklySnapshot(week, result, verification)
        self.snapshots.append(snapshot)
        if self.perf is not None:
            self.perf.count("weeks_scanned")
        self.network.clock.advance(WEEK)
        return snapshot

    def _scan_week(self, week, verify, checkpoint, forecast=None):
        if forecast is not None:
            result = delta_mod.run_delta_week(self, week, forecast,
                                              checkpoint=checkpoint)
        else:
            scan_scope = (checkpoint.scope("week", week, "scan")
                          if checkpoint is not None else None)
            result = self.engine.scan(self.target_space,
                                      checkpoint=scan_scope)
            if self.delta is not None:
                delta_mod.mark_full_sweep(result, week,
                                          delta_mod.CAUSE_FULL_SWEEP,
                                          self)
        verification = None
        if verify and self.verification_engine is not None:
            verify_scope = (checkpoint.scope("week", week, "verify")
                            if checkpoint is not None else None)
            verification = self.verification_engine.scan(
                self.target_space, checkpoint=verify_scope)
        return result, verification

    def run(self, weeks, verify_last=False, checkpoint=None):
        """Run a full campaign of ``weeks`` weekly scans.

        With a ``checkpoint`` (a :class:`repro.checkpoint` run or
        scope), committed weeks are restored via deterministic
        fast-forward instead of re-scanned, and each newly completed
        week is committed before the next begins.
        """
        # With delta scanning on, the closing week always re-baselines
        # with a full sweep: the last snapshot feeds the Table 1/2
        # rankings, which must read measured reality, not carried data.
        def closing(week):
            return self.delta is not None and week == weeks - 1

        if checkpoint is None:
            for week in range(weeks):
                self.run_week(verify=verify_last and week == weeks - 1,
                              force_full=closing(week))
            return self.snapshots

        from repro.checkpoint import (capture_world_state, churn_digest,
                                      restore_world_state)
        resume_noted = False
        for week in range(weeks):
            verify = verify_last and week == weeks - 1
            record = checkpoint.restore(("week", week))
            if record is not None:
                # Fast-forward: replay the churn draw this week made,
                # install its committed result, and restore the world
                # state its commit captured.
                self.churn.step()
                snapshot = record["payload"]
                self.snapshots.append(snapshot)
                state = record["state"] or {}
                restore_world_state(self.network, self.perf, state)
                recorded_digest = state.get("churn_digest")
                if recorded_digest is not None and \
                        recorded_digest != churn_digest(self.churn):
                    raise CampaignError(
                        "resume diverged at week %d: the rebuilt churn "
                        "model does not match the checkpointed one "
                        "(different seed/scale?)" % week)
                tracer = getattr(self.network, "tracer", None)
                if tracer is not None:
                    tracer.emit("week", week=week, restored=True)
                continue
            if not resume_noted:
                resume_noted = True
                checkpoint.note("resumed_from_week", week)
            self.run_week(verify=verify, checkpoint=checkpoint,
                          force_full=closing(week))
            state = capture_world_state(self.network, self.perf)
            state["churn_digest"] = churn_digest(self.churn)
            checkpoint.commit(("week", week), self.snapshots[-1],
                              state=state)
            checkpoint.maybe_crash("week", (week,))
        return self.snapshots

    def first(self):
        if not self.snapshots:
            raise CampaignError(
                "campaign has no snapshots yet: run at least one week "
                "before asking for first()")
        return self.snapshots[0]

    def last(self):
        if not self.snapshots:
            raise CampaignError(
                "campaign has no snapshots yet: run at least one week "
                "before asking for last()")
        return self.snapshots[-1]
