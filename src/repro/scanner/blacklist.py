"""Scan blacklist: opt-out networks and addresses (paper §2.2).

Networks could opt out of the measurements via the scanner's rDNS/web
contact; the study blacklisted 208 network ranges and 50 individual IPs
(20.8M addresses).  Blacklisted addresses are never probed, and are also
ignored in all scan results so weekly scans stay comparable.
"""

from repro.netsim.address import Ipv4Network, ip_to_int


class Blacklist:
    """A set of excluded networks and individual addresses."""

    def __init__(self, networks=(), addresses=()):
        self.networks = [net if isinstance(net, Ipv4Network)
                         else Ipv4Network(net) for net in networks]
        self.addresses = {ip_to_int(a) if isinstance(a, str) else a
                          for a in addresses}

    def add_network(self, network):
        if not isinstance(network, Ipv4Network):
            network = Ipv4Network(network)
        self.networks.append(network)

    def add_address(self, address):
        self.addresses.add(ip_to_int(address)
                           if isinstance(address, str) else address)

    def __contains__(self, address):
        value = ip_to_int(address) if isinstance(address, str) else address
        if value in self.addresses:
            return True
        return any(net.contains_int(value) for net in self.networks)

    @property
    def blacklisted_address_count(self):
        """Total addresses covered (networks may overlap; upper bound)."""
        return (sum(net.num_addresses for net in self.networks)
                + len(self.addresses))

    def __repr__(self):
        return "Blacklist(%d networks, %d addresses)" % (
            len(self.networks), len(self.addresses))
