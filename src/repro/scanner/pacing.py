"""Adaptive probe pacing: the scanner side of the arms race.

Hostile networks (:mod:`repro.netsim.defense`) rate-limit, blocklist,
and tarpit sources that probe too fast.  This module is the counter:
an AIMD controller that maintains a probes-per-second window per
(/16 destination prefix, defense domain) pair, backs off
multiplicatively on each defense admonishment, ramps additively while
clean, trips a circuit breaker
into a "cool-off" after consecutive signals (re-entering at the floor
rate after a jittered number of targets), and — when a prefix keeps
signalling past the error budget — stops probing it entirely, recording
the skipped targets as ``suppressed`` coverage instead of silently
losing them.

Real scanners drive this loop from observed signals — timeouts, REFUSED
bursts, ICMP admonishments ("Ten Years of ZMap", PAPERS.md).  Bare
timeouts are useless as a signal here: ~97% of the space is legitimately
dark, so silence cannot distinguish "empty" from "throttled".  The
simulator's defenses therefore emit *deterministic* admonishments — pure
hash draws keyed on (box seed, source, destination, declared rate) —
and the controller replays exactly those draws without sending a packet,
the same way the batched sweep replays ``query_loss_selector`` loss
draws.  The result is a **pacing plan**: a precomputed map from defended
target to declared rate bucket (or to a suppression cause), pure in

    (target space, LFSR walk, defense configuration, controller config,
     scanner identity)

and — critically — computed over the *full* target space in canonical
global LFSR order, never over a shard slice.  Every forked shard worker
replays the identical per-window recurrence (evaluating fates for
targets outside its slice without sending them), so rate buckets and
suppression cut-points are shard-invariant by construction and sharded
scans stay bit-identical to sequential ones under defense.
"""

from itertools import compress

from repro.netsim.defense import CAUSE_BLOCKLISTED

_M64 = (1 << 64) - 1
_SALT_REENTRY = 0x76


def _mix64(value):
    """splitmix64 finaliser (see :mod:`repro.netsim.network`)."""
    value &= _M64
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _M64
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _M64
    value ^= value >> 31
    return value


class PacingConfig:
    """Tuning of the AIMD pacing controller.

    ``initial_pps`` seeds each window's rate; clean probes add
    ``additive_pps`` up to ``max_pps``; each admonishment multiplies by
    ``decrease`` down to ``min_pps`` and ratchets a learned ceiling just
    below the rate that drew the signal, so the window converges under a
    fixed defense threshold instead of oscillating across it.  ``breaker_threshold`` consecutive
    signals trip the circuit breaker: the window holds at the floor for
    ``cooloff_targets`` probes plus a scanner-seeded jitter of up to
    ``cooloff_jitter`` (jittered re-entry).  A window accumulating
    ``error_budget`` signals is suppressed for the rest of the scan.
    Windows are /``window_bits`` destination prefixes.
    """

    __slots__ = ("initial_pps", "min_pps", "max_pps", "additive_pps",
                 "decrease", "breaker_threshold", "cooloff_targets",
                 "cooloff_jitter", "error_budget", "window_bits")

    def __init__(self, initial_pps=100.0, min_pps=8.0, max_pps=2000.0,
                 additive_pps=4.0, decrease=0.5, breaker_threshold=4,
                 cooloff_targets=64, cooloff_jitter=32, error_budget=24,
                 window_bits=16):
        if min_pps <= 0 or initial_pps <= 0 or max_pps <= 0:
            raise ValueError("pacing rates must be > 0")
        if not 0 < decrease < 1:
            raise ValueError("decrease must be in (0, 1)")
        self.initial_pps = float(initial_pps)
        self.min_pps = float(min_pps)
        self.max_pps = float(max_pps)
        self.additive_pps = float(additive_pps)
        self.decrease = float(decrease)
        self.breaker_threshold = int(breaker_threshold)
        self.cooloff_targets = int(cooloff_targets)
        self.cooloff_jitter = int(cooloff_jitter)
        self.error_budget = int(error_budget)
        self.window_bits = int(window_bits)

    @property
    def window_mask(self):
        return (~((1 << (32 - self.window_bits)) - 1)) & 0xFFFFFFFF

    def signature(self):
        return (self.initial_pps, self.min_pps, self.max_pps,
                self.additive_pps, self.decrease, self.breaker_threshold,
                self.cooloff_targets, self.cooloff_jitter,
                self.error_budget, self.window_bits)


def normalize_pacing(pacing, max_pps=None):
    """Canonical pacing setting: ``None`` (off) or a PacingConfig.

    Accepts the CLI spellings (``"off"``/``"adaptive"``), booleans, or a
    ready config; ``max_pps`` overrides the config ceiling when given.
    """
    if pacing is None or pacing is False or pacing == "off":
        return None
    if pacing is True or pacing == "adaptive":
        config = PacingConfig()
    elif isinstance(pacing, PacingConfig):
        config = pacing
    else:
        raise ValueError("unknown pacing setting: %r (expected 'off', "
                         "'adaptive', or a PacingConfig)" % (pacing,))
    if max_pps is not None:
        if max_pps <= 0:
            raise ValueError("max_pps must be > 0")
        config = PacingConfig(
            initial_pps=min(config.initial_pps, float(max_pps)),
            min_pps=min(config.min_pps, float(max_pps)),
            max_pps=float(max_pps),
            additive_pps=config.additive_pps, decrease=config.decrease,
            breaker_threshold=config.breaker_threshold,
            cooloff_targets=config.cooloff_targets,
            cooloff_jitter=config.cooloff_jitter,
            error_budget=config.error_budget,
            window_bits=config.window_bits)
    return config


def defense_plane(network, source_ip, dst_port=53):
    """Armed defense boxes and their ranges: ``[(box, ranges), ...]``.

    A box is part of the plane when it exposes the pure ``probe_fate``
    verdict and currently defends at least one range for this source.
    Independent of ``scan_interest`` (tests may disable sweep
    enumeration without changing the pacing plan).
    """
    plane = []
    for box in getattr(network, "middleboxes", []):
        if getattr(box, "probe_fate", None) is None:
            continue
        ranges_fn = getattr(box, "defense_ranges", None)
        ranges = (ranges_fn(source_ip, dst_port, network)
                  if ranges_fn is not None else None)
        if ranges:
            plane.append((box, list(ranges)))
    return plane


class _Window:
    """Mutable AIMD state of one destination window during plan build."""

    __slots__ = ("base", "pps", "ceiling", "consec", "hold", "skip",
                 "skip_cause", "dark_cause", "signals", "sent",
                 "suppressed", "trips")

    def __init__(self, base, initial_pps):
        self.base = base
        self.pps = initial_pps
        self.ceiling = None      # learned safe-rate ceiling (ratchets down)
        self.consec = 0          # consecutive admonishments
        self.hold = 0            # cool-off targets left at the floor
        self.skip = 0            # ban-decay targets left to suppress
        self.skip_cause = None
        self.dark_cause = None   # error budget exhausted: stays dark
        self.signals = 0
        self.sent = 0
        self.suppressed = 0
        self.trips = 0


class PacingPlan:
    """Precomputed pacing decisions for every defended target.

    ``rates`` maps target int -> declared rate bucket (int pps);
    ``suppressed`` maps target int -> ``defense:*`` cause for targets
    the scan must skip (graceful degradation).  ``windows`` holds one
    summary dict per destination window for observability.
    """

    __slots__ = ("config", "rates", "suppressed", "windows", "signals",
                 "suppressed_count")

    def __init__(self, config, rates, suppressed, windows, signals):
        self.config = config
        self.rates = rates
        self.suppressed = suppressed
        self.windows = windows
        self.signals = signals
        self.suppressed_count = len(suppressed)

    @property
    def window_mask(self):
        return self.config.window_mask

    def window_rates(self):
        """Final per-window rates (the pacing-window histogram feed)."""
        return [entry["pps"] for entry in self.windows]


def build_pacing_plan(plane, src_int, identity, walk, selector,
                      state_addresses, config):
    """Run the per-window AIMD recurrence over the defended targets.

    ``walk`` is the scan's LFSR permutation and ``selector`` the
    state-aligned mask of defended+allowed targets over the *full*
    space; iterating their compression visits defended targets in
    exactly the order the sequential scan probes them, which is what
    makes the recurrence — and therefore every declared rate bucket and
    suppression cut-point — identical in every shard worker.
    """
    rates = {}
    suppressed = {}
    windows = {}
    signals_total = 0
    window_mask = config.window_mask
    min_pps = config.min_pps
    max_pps = config.max_pps
    additive = config.additive_pps
    decrease = config.decrease
    breaker = config.breaker_threshold
    budget = config.error_budget
    checks = [(ranges, box.probe_fate, getattr(box, "ban_span", None))
              for box, ranges in plane]
    addr_of = state_addresses.__getitem__
    for state in compress(walk, map(selector.__getitem__, walk)):
        value = addr_of(state)
        # Resolve the governing defense domain first: windows are keyed
        # by (/window_bits prefix, defense range) so one blocklister's
        # ban spans or exhausted error budget never suppress targets of
        # an unrelated defense sharing the same destination prefix.
        fate_fn = None
        span_fn = None
        range_key = None
        for ranges, box_fate, ban_span in checks:
            for range_base, range_mask in ranges:
                if value & range_mask == range_base:
                    fate_fn = box_fate
                    span_fn = ban_span
                    range_key = (range_base, range_mask)
                    break
            if fate_fn is not None:
                break
        if fate_fn is None:
            continue
        base = value & window_mask
        key = (base, range_key[0], range_key[1])
        window = windows.get(key)
        if window is None:
            window = windows[key] = _Window(base, config.initial_pps)
        if window.dark_cause is not None:
            suppressed[value] = window.dark_cause
            window.suppressed += 1
            continue
        if window.skip > 0:
            window.skip -= 1
            suppressed[value] = window.skip_cause
            window.suppressed += 1
            continue
        bucket = int(window.pps)
        if bucket < 1:
            bucket = 1
        rates[value] = bucket
        window.sent += 1
        fate = fate_fn(src_int, value, bucket)
        if fate is None:
            window.consec = 0
            cap = window.ceiling if window.ceiling is not None else max_pps
            if window.hold > 0:
                window.hold -= 1
            elif window.pps < cap:
                pps = window.pps + additive
                window.pps = pps if pps < cap else cap
            continue
        window.signals += 1
        signals_total += 1
        # Ratchet the ceiling just below the rate that drew the signal:
        # pure additive-increase/multiplicative-decrease oscillates
        # around a defense threshold forever (each cycle burning more of
        # the error budget); remembering the failure point makes the
        # window *converge* into the clean region and stay there.
        ceiling = window.pps - additive
        if ceiling < min_pps:
            ceiling = min_pps
        if window.ceiling is None or ceiling < window.ceiling:
            window.ceiling = ceiling
        if window.signals >= budget:
            # Error budget exhausted: the window stays dark for the
            # rest of this scan — recorded, never silently lost.
            window.dark_cause = fate
            continue
        window.trips += 1
        jitter = _mix64((_SALT_REENTRY << 56) ^ identity
                        ^ base * 0x9E3779B1
                        ^ range_key[0] * 0x85EBCA77
                        ^ window.trips) % (config.cooloff_jitter or 1)
        if fate == CAUSE_BLOCKLISTED:
            # The blocklist entry decays after a seeded span (the box's
            # ban_span); suppress exactly that many targets, then
            # re-enter at the floor rate.
            span = (span_fn(src_int, base) if span_fn is not None
                    else config.cooloff_targets)
            window.skip = span + jitter
            window.skip_cause = fate
            window.pps = min_pps
            window.consec = 0
            continue
        window.consec += 1
        pps = window.pps * decrease
        window.pps = pps if pps > min_pps else min_pps
        if window.consec >= breaker:
            # Circuit breaker: hold at the floor for a jittered
            # cool-off before probing the window normally again.
            window.hold = config.cooloff_targets + jitter
            window.pps = min_pps
            window.consec = 0
    summaries = [
        {"window": key[0], "range": key[1], "pps": window.pps,
         "ceiling": window.ceiling, "signals": window.signals,
         "sent": window.sent, "suppressed": window.suppressed,
         "trips": window.trips, "dark": window.dark_cause}
        for key, window in windows.items()]
    summaries.sort(key=lambda entry: (entry["window"], entry["range"]))
    return PacingPlan(config, rates, suppressed, summaries, signals_total)
