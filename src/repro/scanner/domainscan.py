"""Domain scanning: querying the 155-domain set at every open resolver
(paper §3.3).

Unlike the IPv4 scans, the query names are fixed, so the target resolver's
identity is encoded in the transaction ID (16 bits), UDP source port
(9 bits), and redundantly in the 0x20 case pattern of the query name.
Each scan records every response — including multiple responses for one
query, which is how the Great Firewall's injected-then-genuine double
answers are detected (§4.2).
"""

from repro.dnswire.constants import QTYPE_NS, RCODE_NOERROR
from repro.dnswire.message import Message
from repro.netsim.network import UdpPacket
from repro.scanner.encoding import ResolverIdCodec


class DnsObservation:
    """One resolver's answer(s) for one scanned domain."""

    def __init__(self, domain, resolver_ip, rcode, addresses,
                 source_ip=None, all_responses=None, injected_suspect=False,
                 ns_record_count=0):
        self.domain = domain
        self.resolver_ip = resolver_ip       # target (decoded identity)
        self.rcode = rcode                   # of the first response
        self.addresses = list(addresses)     # of the first response
        self.source_ip = source_ip           # UDP source of first response
        self.ns_record_count = ns_record_count  # NS-only answers (§4.1)
        # All responses observed: list of (rcode, [addresses]) in arrival
        # order.  More than one entry with disagreeing answers is the GFW
        # signature.
        self.all_responses = list(all_responses or [])
        self.injected_suspect = injected_suspect

    @property
    def empty(self):
        return self.rcode == RCODE_NOERROR and not self.addresses

    @property
    def multiple_disagreeing(self):
        if len(self.all_responses) < 2:
            return False
        # Compare (rcode, addresses): an injected NXDOMAIN followed by a
        # genuine empty NOERROR disagrees even though both address lists
        # are empty (the GFW's NXDOMAIN-injection signature).
        first = self.all_responses[0]
        return any(other[0] != first[0] or other[1] != first[1]
                   for other in self.all_responses[1:])

    def __repr__(self):
        return "DnsObservation(%s @ %s, rcode=%d, %r)" % (
            self.domain, self.resolver_ip, self.rcode, self.addresses)


class DomainScanner:
    """Sends A queries for a domain list to a resolver list."""

    # The scan loop can report progress per resolver, so the shard
    # engine's heartbeat supervision works (see scanner.engine).
    supports_progress = True
    # ... and can flush observation chunks mid-scan, so the engine's
    # result streaming bounds worker memory (see DomainScanEngine).
    supports_chunks = True

    def __init__(self, network, source_ip, codec=None):
        self.network = network
        self.source_ip = source_ip
        self.codec = codec or ResolverIdCodec()
        self.queries_sent = 0

    def query_domain(self, resolver_ip, resolver_id, domain):
        """Query one domain at one resolver; returns a
        :class:`DnsObservation` or ``None`` when no response arrived."""
        txid, src_port, cased_qname = self.codec.encode(resolver_id, domain)
        query = Message.query(cased_qname, txid=txid)
        packet = UdpPacket(self.source_ip, src_port, resolver_ip, 53,
                           query.to_wire())
        self.queries_sent += 1
        responses = []
        injected = False
        for response in self.network.send_udp(packet):
            try:
                message = Message.from_wire(response.packet.payload)
            except ValueError:
                continue
            if not message.header.qr:
                continue
            echoed = (message.question.name if message.question
                      else cased_qname)
            decoded_id = self.codec.decode(
                message.header.txid, response.packet.dst_port, echoed)
            if decoded_id != resolver_id:
                continue
            ns_count = sum(1 for record in message.answers
                           if record.rtype == QTYPE_NS)
            responses.append((message.rcode, message.a_addresses(),
                              response.packet.src_ip, ns_count))
            injected = injected or response.injected
        if not responses:
            return None
        rcode, addresses, source_ip, ns_count = responses[0]
        return DnsObservation(
            domain, resolver_ip, rcode, addresses, source_ip=source_ip,
            all_responses=[(r, a) for r, a, __, __n in responses],
            injected_suspect=injected, ns_record_count=ns_count)

    def scan(self, resolver_ips, domains, index_range=None,
             on_progress=None, chunk_sink=None, chunk_rows=65536):
        """Query every domain at every resolver.

        ``domains`` is an iterable of domain-name strings.  Returns a flat
        list of observations (resolvers that never answered are absent).

        ``index_range`` restricts the scan to resolvers with positions in
        the contiguous ``(start, stop)`` slice of ``resolver_ips``.  The
        resolver id encoded into each query stays the *global* list
        index, so a shard worker emits byte-identical queries to the ones
        a sequential scan would emit for those resolvers.  ``on_progress``
        (no arguments) is invoked once per resolver — the heartbeat hook
        for worker supervision.

        ``chunk_sink`` streams results: whenever at least ``chunk_rows``
        observations have accumulated they are handed off (as a list, at
        a resolver boundary so chunk + tail concatenation reproduces
        sequential order exactly) and dropped from the resident list;
        only the final partial chunk is returned.
        """
        resolver_ips = list(resolver_ips)
        start, stop = (index_range if index_range is not None
                       else (0, len(resolver_ips)))
        observations = []
        for resolver_id in range(start, stop):
            resolver_ip = resolver_ips[resolver_id]
            for domain in domains:
                observation = self.query_domain(resolver_ip, resolver_id,
                                                domain)
                if observation is not None:
                    observations.append(observation)
            if on_progress is not None:
                on_progress()
            if chunk_sink is not None and len(observations) >= chunk_rows:
                chunk_sink(observations)
                observations = []
        return observations
