"""Sharded parallel scan engine with worker supervision.

Splits a :class:`~repro.scanner.ipv4scan.ScanTargetSpace` into N
contiguous index shards and drives each through a fork-based worker
process.  ``os.fork`` gives every worker a copy-on-write view of the
fully built scenario — no scenario rebuild, no pickling of the world,
just the per-shard :class:`ScanResult` coming back over a pipe.

Determinism contract (verified by ``tests/scanner/test_engine.py``):
the merged result is **identical** to a sequential single-process scan
of the same space — same ``counts()``, same ``responders``, same
``divergent_sources``, same ``probes_sent`` — for any shard count.
Three properties make this hold:

* probe identity is a pure hash of (scanner, scan epoch, target), so a
  worker scanning indexes [k, m) emits byte-identical packets to the
  ones a full scan would emit for those targets;
* packet fates (loss/corruption/injected faults) are keyed per flow +
  occurrence, not drawn from a shared sequential RNG, so fates cannot
  depend on how workers interleave sends
  (:meth:`repro.netsim.network.Network._packet_fate`);
* shard results are merged with set unions over disjoint target sets,
  which is order-insensitive.

Because those properties also make a *repeated* shard scan reproduce
the exact bytes and fates of the first attempt, worker failure recovery
is cheap and safe.  The fork/pipe/recovery machinery lives in
:class:`ShardSupervisor`, which is scanner-agnostic: it drives any
``run_range((start, stop), on_progress)`` callable over contiguous
index ranges, so the IPv4 scan (:class:`ScanEngine`) and the per-domain
scan (:class:`repro.scanner.domainengine.DomainScanEngine`) share one
supervision implementation.  The supervisor watches its workers over
the result pipe — workers stream single-byte heartbeats while scanning
and ship their result as one length-prefixed frame — and reacts to
failures with escalating, narrow recovery:

1. a worker that dies on its first attempt is retried once (fresh fork
   of the same shard);
2. a second death splits the shard in half and retries both halves;
3. a death after splitting falls back to scanning just that index range
   in-process — never the whole space.

A worker that stops heartbeating for ``heartbeat_timeout`` seconds is
killed and treated as dead (hang recovery; requires a scanner with
``supports_progress``).  Every completed work item is recorded in the
merged result's ``provenance`` so degraded shards are visible to the
analysis layer, and all recovery events increment ``repro.perf``
counters (``worker_deaths``, ``shard_retries``, ``shard_splits``,
``shard_failures``, ``workers_hung``).

Workers cannot write back into the parent (fork semantics), so parent-
side state the scan would have advanced — network traffic and fault
counters, warm resolver caches — is reconciled explicitly: counter
deltas ride back in the result frame, while cache warm-ups are
deliberately dropped (the next scan replays the identical resolutions
from the identical pre-fork state, so dropped warm-ups cannot change
any later result).  One observable consequence: every worker re-warms
the resolution suffix cache in its own copy, so the *traffic* counters
report a few more queries than a sequential scan (one warm-up per extra
worker) even though the scan results are identical.

When ``shards <= 1`` or the platform lacks ``os.fork`` (non-POSIX), the
engines transparently scan in-process.
"""

import os
import pickle
import select
import shutil
import signal
import tempfile
import time
from collections import deque

from repro.checkpoint.store import SnapshotStore
from repro.perf import PerfRegistry, sample_ru_maxrss_kb
from repro.scanner.ipv4scan import merge_scan_results

# Network traffic counters reconciled from workers back into the parent.
_NET_COUNTERS = ("udp_queries_sent", "udp_queries_lost",
                 "udp_responses_corrupted")

# Pipe protocol: workers stream _HEARTBEAT bytes while scanning, zero
# or more _CHUNK frames (streamed column chunks, spilled by the parent
# as they arrive), then one _RESULT frame.  Frames are tag + 4-byte
# big-endian length + pickled payload; heartbeats are single bytes that
# may appear between (never inside) frames.
_HEARTBEAT = b"\x01"
_RESULT = b"\x02"
_CHUNK = b"\x03"
_HEARTBEAT_BYTE = _HEARTBEAT[0]
_RESULT_BYTE = _RESULT[0]
_CHUNK_BYTE = _CHUNK[0]

# Exit code of a worker killed by an injected fault (worker_dies).
_FAULT_EXIT = 23


def _absorb_result_chunks(result, chunks):
    """Reassemble a streamed :class:`ScanResult` from its tail + chunks."""
    for chunk in chunks:
        result.absorb_chunk(chunk)
    return result


def _write_all(fd, data):
    view = memoryview(data)
    while view:
        view = view[os.write(fd, view):]


def _restore_shard_record(network, perf, payload, origin=None):
    """Re-apply a checkpointed shard's side effects to a rebuilt world.

    A restored shard contributed traffic/fault counter deltas, perf
    numbers, and trace spans/flight events when it originally ran;
    replaying those (instead of re-scanning) keeps a resumed run's
    counters — and its trace — identical to an uninterrupted one.
    """
    for name, delta in (payload.get("net_counters") or {}).items():
        setattr(network, name, getattr(network, name, 0) + delta)
    fault_counters = getattr(network, "fault_counters", None)
    if fault_counters is not None:
        for name, delta in (payload.get("fault_counters") or {}).items():
            fault_counters[name] = fault_counters.get(name, 0) + delta
    tracer = getattr(network, "tracer", None)
    if tracer is not None and payload.get("spans"):
        tracer.absorb(payload["spans"])
    recorder = getattr(network, "recorder", None)
    if recorder is not None and payload.get("flight"):
        recorder.absorb_state(payload["flight"])
    if perf is None:
        return
    wall = payload.get("wall_seconds")
    if wall is not None:
        perf.record_seconds("shard_wall", wall)
        perf.observe("shard_wall_seconds", wall)
    shard_perf = payload.get("perf")
    if shard_perf is not None:
        perf.merge(shard_perf, rank=origin)
    for name, amount in (payload.get("perf_counters") or {}).items():
        perf.count(name, amount)


def _plan_checkpointed_shards(network, perf, ranges, checkpoint):
    """Split a sharded run into restored vs. still-to-run work.

    Returns ``(live_ranges, live_origins, on_item_done, restored,
    restored_provenance)``: committed shards come back as
    ``(start, result)`` pairs with their side effects re-applied, and
    ``on_item_done`` commits each newly completed shard — but only items
    covering a *full* original range (a split half or narrowed rescue is
    not independently restorable; its origin reruns whole on resume,
    reproducing the identical escalation path from the same fault
    draws).  After each commit the crash plane gets its shot at the
    ``shard`` boundary.
    """
    if checkpoint is None:
        return list(ranges), None, None, [], []
    restored = []
    restored_provenance = []
    live_ranges = []
    live_origins = []
    for origin, (start, stop) in enumerate(ranges):
        record = checkpoint.restore(("shard", origin, start, stop))
        if record is not None:
            payload = record["payload"]
            _restore_shard_record(network, perf, payload, origin=origin)
            restored.append((start, payload["result"]))
            restored_provenance.extend(payload.get("provenance") or [])
        else:
            live_ranges.append((start, stop))
            live_origins.append(origin)
    full_ranges = {origin: tuple(ranges[origin]) for origin in live_origins}

    def on_item_done(item, payload, entry):
        start, stop, origin, __attempt = item
        if (start, stop) == full_ranges[origin]:
            checkpoint.commit(("shard", origin, start, stop), payload)
        checkpoint.maybe_crash("shard", (origin,))

    return live_ranges, live_origins, on_item_done, restored, \
        restored_provenance


class _Worker:
    """Parent-side state of one live worker process.

    ``feed`` is an incremental frame parser, not a byte scan: chunk and
    result payloads are arbitrary pickle bytes and may contain the tag
    values, so frames must be walked by their length prefixes.  Complete
    ``_CHUNK`` frames are handed to ``on_chunk`` (the supervisor's spill
    hook) as they arrive and never buffered beyond one read, which is
    what keeps the parent's per-worker memory O(chunk) while streaming.
    """

    __slots__ = ("pid", "fd", "item", "heartbeats", "last_beat",
                 "buffer", "payload", "on_chunk", "chunk_keys")

    def __init__(self, pid, fd, item, now, on_chunk=None):
        self.pid = pid
        self.fd = fd
        self.item = item              # (start, stop, origin, attempt)
        self.heartbeats = 0
        self.last_beat = now
        self.buffer = bytearray()     # unparsed pipe bytes
        self.payload = None           # _RESULT payload bytes, once seen
        self.on_chunk = on_chunk      # callable(payload_bytes) or None
        self.chunk_keys = []          # spill keys written for this item

    def feed(self, data, now):
        """Consume pipe bytes: heartbeats, chunk frames, result frame."""
        self.last_beat = now
        buffer = self.buffer
        buffer.extend(data)
        pos = 0
        end = len(buffer)
        while pos < end:
            tag = buffer[pos]
            if tag == _HEARTBEAT_BYTE:
                self.heartbeats += 1
                pos += 1
                continue
            if tag not in (_RESULT_BYTE, _CHUNK_BYTE):
                # Corrupt stream (torn write); stop parsing — the frame
                # never completes and the worker takes the death path.
                break
            if pos + 5 > end:
                break                 # header not yet complete
            need = int.from_bytes(buffer[pos + 1:pos + 5], "big")
            if pos + 5 + need > end:
                break                 # payload not yet complete
            payload = bytes(buffer[pos + 5:pos + 5 + need])
            if tag == _CHUNK_BYTE:
                if self.on_chunk is not None:
                    self.on_chunk(payload)
            else:
                self.payload = payload
            pos += 5 + need
        del buffer[:pos]

    def shard_payload(self):
        """The unpickled result dict, or ``None`` if the result frame
        never completed (worker died mid-write)."""
        if self.payload is None:
            return None
        try:
            return pickle.loads(self.payload)
        except Exception:
            return None


class ShardSupervisor:
    """Fork/COW worker supervision over contiguous index ranges.

    ``run_range((start, stop), on_progress)`` is the unit of work: it is
    executed inside a forked worker (with a heartbeat callback when the
    scanner ``supports_progress``) or in-process for a last-resort
    rescue, and must return a picklable per-shard result.  The
    supervisor owns spawning, the heartbeat/result pipe protocol, hang
    detection, escalating death recovery, and the reconciliation of
    worker-side network/fault counter deltas back into the parent.

    ``perf_host``, when given, is the object whose ``perf`` registry is
    swapped for a fresh one inside each worker so only shard-local
    numbers ride back (merging the inherited copy-on-write registry
    would double-count pre-fork totals).

    ``chunk_store`` (a :class:`repro.checkpoint.store.SnapshotStore`)
    enables result streaming: ``run_range`` is then called with a third
    ``chunk_sink`` argument the worker may invoke with fixed-size result
    chunks, which ride the pipe as ``_CHUNK`` frames and are spilled to
    the store as they arrive — so neither the worker nor the parent ever
    holds a whole shard's rows.  When the worker's final frame lands,
    ``reassemble(tail_result, chunks_iter)`` folds the spilled chunks
    back into the shard result *before* it enters the success path, so
    checkpoint commits, provenance, and merging see exactly the result a
    non-streaming worker would have shipped.  A worker death discards
    its spilled chunks (the retry re-emits them), and in-process rescues
    stay resident — they never stream.

    ``retain_results=False`` drops each completed item's result after
    the ``on_item_done`` hook has seen it (``shard_results`` carries
    ``None`` placeholders): the mode for callers that consume results
    incrementally through the hook and must not accumulate them.
    """

    def __init__(self, network, run_range, perf=None,
                 heartbeat_timeout=None, supports_progress=False,
                 perf_host=None, chunk_store=None, reassemble=None,
                 retain_results=True):
        self.network = network
        self.run_range = run_range
        self.perf = perf
        self.supports_progress = supports_progress
        self.heartbeat_timeout = (heartbeat_timeout
                                  if supports_progress else None)
        self.perf_host = perf_host
        self.chunk_store = chunk_store
        self.reassemble = reassemble
        self.retain_results = retain_results

    def _count(self, name, amount=1):
        if self.perf is not None:
            self.perf.count(name, amount)

    def run(self, ranges, origins=None, on_item_done=None):
        """Supervise workers over ``ranges``; returns
        ``(shard_results, provenance)``.

        ``shard_results`` is ``[(start, result, mode), ...]`` sorted by
        range start (``mode`` is ``"worker"`` or ``"in-process"``), so
        callers can concatenate or merge per-shard results in index
        order and know which of them already mutated parent state.
        ``provenance`` carries one sorted entry per completed work item.

        ``origins`` optionally names each range's global shard index —
        a checkpointed resume runs only the not-yet-committed ranges but
        must keep their original indices so per-origin fault draws
        (``worker_dies``) and provenance stay identical to a full run.
        ``on_item_done(item, payload, entry)`` fires after each completed
        work item with a self-contained, picklable payload (result +
        counter deltas + perf); it is the checkpoint commit hook and may
        raise to abort the run — active workers are reaped first.
        """
        plan = getattr(self.network, "faults", None)
        heartbeat_timeout = self.heartbeat_timeout
        if origins is None:
            origins = range(len(ranges))
        pending = deque((start, stop, origin, 0)
                        for origin, (start, stop) in zip(origins, ranges))
        active = {}                     # read fd -> _Worker
        shard_results = []              # (start, result, mode)
        provenance = []
        rescues = []                    # items for in-process fallback
        rescued_origins = set()
        counter_deltas = {name: 0 for name in _NET_COUNTERS}
        fault_deltas = {}
        # Per-item observability batches (worker spans + flight events),
        # flushed into the parent instruments in sorted item order after
        # the run — completion order varies, the trace must not.
        obs_items = []

        try:
            while pending or active:
                while pending:
                    worker = self._spawn(pending.popleft(), plan)
                    active[worker.fd] = worker
                wait = 0.05 if heartbeat_timeout is not None else None
                ready, __, __unused = select.select(list(active), [], [],
                                                    wait)
                now = time.monotonic()
                for fd in ready:
                    worker = active[fd]
                    data = os.read(fd, 1 << 16)
                    if data:
                        worker.feed(data, now)
                        continue
                    # EOF: the worker finished or died.
                    del active[fd]
                    os.close(fd)
                    os.waitpid(worker.pid, 0)
                    if worker.heartbeats:
                        self._count("heartbeats_seen", worker.heartbeats)
                    shard = worker.shard_payload()
                    if shard is None:
                        self._discard_chunks(worker)
                        self._on_death(worker.item, pending, rescues,
                                       rescued_origins)
                    else:
                        if worker.chunk_keys:
                            shard["result"] = self._reassemble_result(
                                shard["result"], worker.chunk_keys)
                        self._on_success(worker.item, shard, shard_results,
                                         provenance, counter_deltas,
                                         fault_deltas, obs_items,
                                         on_item_done)
                if heartbeat_timeout is not None:
                    for worker in list(active.values()):
                        if now - worker.last_beat > heartbeat_timeout:
                            # Hung worker: no heartbeat within budget.
                            # Kill it; the pipe EOF routes it through
                            # _on_death.
                            self._count("workers_hung")
                            worker.last_beat = now
                            try:
                                os.kill(worker.pid, signal.SIGKILL)
                            except ProcessLookupError:
                                pass

            # In-process fallback, narrowed to just the failed index
            # ranges: probe identity and packet fates are position-
            # independent, so the late retry still produces exactly the
            # bytes and fates the worker would have.
            for start, stop, origin, attempt in sorted(rescues):
                self._rescue((start, stop, origin, attempt),
                             shard_results, provenance, on_item_done)
        except BaseException:
            # Abort (an injected crash from the commit hook, ^C, ...):
            # reap every live worker so no zombies outlive the run.
            for worker in active.values():
                try:
                    os.kill(worker.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                try:
                    os.close(worker.fd)
                except OSError:
                    pass
                try:
                    os.waitpid(worker.pid, 0)
                except ChildProcessError:
                    pass
                self._discard_chunks(worker)
            raise

        network = self.network
        for name, delta in counter_deltas.items():
            setattr(network, name, getattr(network, name) + delta)
        fault_counters = getattr(network, "fault_counters", None)
        if fault_counters is not None:
            for name, delta in fault_deltas.items():
                fault_counters[name] = fault_counters.get(name, 0) + delta
        shard_results.sort(key=lambda entry: entry[0])
        # Completion order varies run to run; sorted provenance keeps
        # same-seed runs bit-identical.
        provenance.sort(key=lambda e: (e["start"], e["stop"],
                                       e["attempt"]))
        if obs_items:
            tracer = getattr(network, "tracer", None)
            recorder = getattr(network, "recorder", None)
            obs_items.sort(key=lambda entry: entry[0])
            for __key, spans, flight in obs_items:
                if tracer is not None and spans:
                    tracer.absorb(spans)
                if recorder is not None and flight:
                    recorder.absorb_state(flight)
        return shard_results, provenance

    def _spawn(self, item, plan):
        """Fork one worker for a work item; returns its parent-side state."""
        start, stop, origin, attempt = item
        streaming = self.chunk_store is not None
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            # Worker: run one shard of the COW-shared scenario and
            # ship the result back; never return into the caller.
            os.close(read_fd)
            status = 0
            try:
                if plan is not None and plan.worker_dies(origin, attempt):
                    # Injected worker death (chaos testing): die before
                    # any work, as a crashed process would.
                    os._exit(_FAULT_EXIT)
                on_progress = None
                if self.supports_progress:
                    def on_progress():
                        os.write(write_fd, _HEARTBEAT)
                chunk_sink = None
                if streaming:
                    def chunk_sink(chunk):
                        data = pickle.dumps(
                            chunk, protocol=pickle.HIGHEST_PROTOCOL)
                        _write_all(write_fd, _CHUNK
                                   + len(data).to_bytes(4, "big") + data)
                payload = pickle.dumps(
                    self._run_shard((start, stop), on_progress,
                                    origin=origin, attempt=attempt,
                                    chunk_sink=chunk_sink),
                    protocol=pickle.HIGHEST_PROTOCOL)
                _write_all(write_fd, _RESULT
                           + len(payload).to_bytes(4, "big") + payload)
            except BaseException:
                status = 1
            finally:
                # Skip atexit/buffer teardown of the forked
                # interpreter; only the pipe payload matters.
                os._exit(status)
        os.close(write_fd)
        worker = _Worker(pid, read_fd, item, time.monotonic())
        if streaming:
            store = self.chunk_store

            def on_chunk(payload, worker=worker):
                # Spill keyed by the full work-item identity: a retried
                # or split item must never collide with stale chunks
                # from an earlier attempt of the same range.
                key = ("chunk", origin, attempt, start,
                       len(worker.chunk_keys))
                store.save(key, payload)
                worker.chunk_keys.append(key)

            worker.on_chunk = on_chunk
        return worker

    def _discard_chunks(self, worker):
        """Drop a dead/aborted worker's spilled chunks (retries re-emit)."""
        if self.chunk_store is None or not worker.chunk_keys:
            return
        for key in worker.chunk_keys:
            self.chunk_store.discard(key)
        worker.chunk_keys = []

    def _reassemble_result(self, tail, keys):
        """Fold spilled chunks back into a shard's tail result.

        Chunks are loaded lazily in emission order and discarded as they
        are consumed, so reassembly holds at most one chunk beyond the
        growing result.  The reassembled result is canonically equal to
        what a non-streaming worker would have shipped (column results
        sort rows on serialisation, so chunk boundaries leave no trace).
        """
        store = self.chunk_store

        def chunks():
            for key in keys:
                yield pickle.loads(store.load(key))
                store.discard(key)

        return self.reassemble(tail, chunks())

    def _on_death(self, item, pending, rescues, rescued_origins):
        """Escalating recovery: retry, then split, then in-process."""
        start, stop, origin, attempt = item
        self._count("worker_deaths")
        if attempt == 0:
            self._count("shard_retries")
            pending.append((start, stop, origin, 1))
        elif attempt == 1 and stop - start > 1:
            self._count("shard_splits")
            middle = (start + stop) // 2
            pending.append((start, middle, origin, 2))
            pending.append((middle, stop, origin, 2))
        else:
            # Repeated deaths: rescue this narrow range in-process.
            # ``shard_failures`` counts once per original shard needing
            # rescue (the pre-supervision contract).
            if origin not in rescued_origins:
                rescued_origins.add(origin)
                self._count("shard_failures")
            rescues.append(item)

    def _on_success(self, item, shard, shard_results, provenance,
                    counter_deltas, fault_deltas, obs_items,
                    on_item_done=None):
        start, stop, origin, attempt = item
        shard_results.append((start, shard["result"]
                              if self.retain_results else None, "worker"))
        status = ("ok" if attempt == 0
                  else "retried" if attempt == 1 else "split")
        entry = {"shard": origin, "start": start, "stop": stop,
                 "mode": "worker", "attempt": attempt, "status": status}
        provenance.append(entry)
        for name in _NET_COUNTERS:
            counter_deltas[name] += shard["net_counters"][name]
        for name, delta in shard.get("fault_counters", {}).items():
            fault_deltas[name] = fault_deltas.get(name, 0) + delta
        spans = shard.get("spans")
        flight = shard.get("flight")
        if spans or flight:
            obs_items.append(((start, stop, attempt), spans, flight))
        if self.perf is not None:
            self.perf.record_seconds("shard_wall", shard["wall_seconds"])
            self.perf.observe("shard_wall_seconds", shard["wall_seconds"])
            if shard["perf"] is not None:
                self.perf.merge(shard["perf"], rank=origin)
        if on_item_done is not None:
            on_item_done(item, {
                "result": shard["result"],
                "net_counters": dict(shard["net_counters"]),
                "fault_counters": dict(shard.get("fault_counters") or {}),
                "perf": shard["perf"],
                "wall_seconds": shard["wall_seconds"],
                "spans": spans,
                "flight": flight,
                "provenance": [dict(entry)],
            }, entry)

    def _rescue(self, item, shard_results, provenance, on_item_done=None):
        """Run one failed range in-process, with checkpoint bookkeeping.

        Unlike a worker, an in-process rescue mutates parent state
        directly, so the commit payload captures its counter/perf deltas
        by differencing around the call.
        """
        start, stop, origin, attempt = item
        network = self.network
        before = {name: getattr(network, name) for name in _NET_COUNTERS}
        fault_before = dict(getattr(network, "fault_counters", None) or {})
        perf_before = (dict(self.perf.counters)
                       if self.perf is not None else {})
        tracer = getattr(network, "tracer", None)
        spans_before = len(tracer.spans) if tracer is not None else 0
        if tracer is not None:
            # Rescues trace live into the parent's instruments (they
            # mutate parent state directly, unlike worker shards).
            with tracer.span("shard", origin=origin, attempt=attempt,
                             start=start, stop=stop, mode="in-process"):
                result = self.run_range((start, stop), None)
        else:
            result = self.run_range((start, stop), None)
        shard_results.append((start, result
                              if self.retain_results else None,
                              "in-process"))
        entry = {"shard": origin, "start": start, "stop": stop,
                 "mode": "in-process", "attempt": attempt,
                 "status": "rescued"}
        provenance.append(entry)
        if on_item_done is None:
            return
        fault_after = getattr(network, "fault_counters", None) or {}
        perf_after = (dict(self.perf.counters)
                      if self.perf is not None else {})
        on_item_done(item, {
            "result": result,
            "net_counters": {name: getattr(network, name) - before[name]
                             for name in _NET_COUNTERS},
            "fault_counters": {
                name: value - fault_before.get(name, 0)
                for name, value in fault_after.items()
                if value - fault_before.get(name, 0)},
            "perf_counters": {
                name: value - perf_before.get(name, 0)
                for name, value in perf_after.items()
                if value - perf_before.get(name, 0)},
            "spans": (tracer.spans[spans_before:]
                      if tracer is not None else None),
            "provenance": [dict(entry)],
        }, entry)

    def _run_shard(self, index_range, on_progress=None, origin=0,
                   attempt=0, chunk_sink=None):
        """Executed inside a worker: one shard run plus bookkeeping."""
        network = self.network
        host = self.perf_host
        # The worker inherits the parent's registry copy-on-write; swap
        # in a fresh one so only shard-local numbers ride back (merging
        # the inherited copy would double-count pre-fork totals).
        if host is not None and getattr(host, "perf", None) is not None:
            host.perf = PerfRegistry()
        # Same treatment for the observability instruments: re-namespace
        # the inherited tracer (span ids stay unique across every worker
        # of every supervised scan in the process — the prefix carries
        # the parent's active span id, which is unique per scan, plus
        # origin, attempt, *and* range start, because both halves of a
        # split shard share origin and attempt) and clear the inherited
        # flight ring, so only shard-local spans and events ride back
        # over the result pipe.
        tracer = getattr(network, "tracer", None)
        recorder = getattr(network, "recorder", None)
        if tracer is not None:
            tracer.rebase("%s.w%d.%d.%d:" % (tracer.active_span_id or "",
                                             origin, attempt,
                                             index_range[0]))
        if recorder is not None:
            recorder.reset()
        before = {name: getattr(network, name) for name in _NET_COUNTERS}
        fault_before = dict(getattr(network, "fault_counters", None) or {})
        rss_before = sample_ru_maxrss_kb()
        shard_start = time.perf_counter()
        if chunk_sink is not None:
            def run():
                return self.run_range(index_range, on_progress, chunk_sink)
        else:
            def run():
                return self.run_range(index_range, on_progress)
        if tracer is not None:
            with tracer.span("shard", origin=origin, attempt=attempt,
                             start=index_range[0], stop=index_range[1],
                             mode="worker"):
                result = run()
        else:
            result = run()
        wall = time.perf_counter() - shard_start
        worker_perf = (getattr(host, "perf", None)
                       if host is not None else None)
        if worker_perf is not None:
            # Kernel high-water marks, merged with "max" policy so the
            # parent registry reports the worst worker of the scan.  A
            # forked child *inherits* the parent's ru_maxrss high-water
            # mark, so the absolute peak mostly restates the pre-fork
            # footprint (world + walk + columns, all shared
            # copy-on-write); the growth delta is the worker's own
            # private allocation — the number bench_scale gates on.
            worker_perf.declare_gauge("worker_peak_rss_kb", "max")
            worker_perf.gauge("worker_peak_rss_kb", sample_ru_maxrss_kb())
            worker_perf.declare_gauge("worker_rss_growth_kb", "max")
            worker_perf.gauge("worker_rss_growth_kb",
                              max(0, sample_ru_maxrss_kb() - rss_before))
        fault_after = getattr(network, "fault_counters", None) or {}
        return {
            "result": result,
            "wall_seconds": wall,
            "net_counters": {
                name: getattr(network, name) - before[name]
                for name in _NET_COUNTERS},
            "fault_counters": {
                name: value - fault_before.get(name, 0)
                for name, value in fault_after.items()
                if value - fault_before.get(name, 0)},
            "perf": host.perf if host is not None else None,
            "spans": tracer.spans if tracer is not None else None,
            "flight": (recorder.export_state()
                       if recorder is not None else None),
        }


class ScanEngine:
    """Runs Internet-wide scans, optionally sharded across processes.

    ``stream_results`` bounds worker memory: workers flush their result
    columns every ``chunk_rows`` rows as pipe frames which the parent
    spills through a :class:`SnapshotStore` (in ``spill_dir``, or a
    private temporary directory) and folds back per shard on completion.
    The merged result is byte-identical to a resident run — streaming
    changes *where* rows live during the scan, never what they are.
    Requires a scanner advertising ``supports_chunks``; silently runs
    resident otherwise (and for in-process rescues).
    """

    def __init__(self, scanner, shards=1, perf=None,
                 heartbeat_timeout=None, stream_results=False,
                 chunk_rows=65536, spill_dir=None):
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        self.scanner = scanner
        self.shards = shards
        self.perf = perf
        # Kill workers silent for this many wall-clock seconds (needs a
        # scanner with ``supports_progress``); ``None`` disables.
        self.heartbeat_timeout = heartbeat_timeout
        self.stream_results = stream_results
        self.chunk_rows = chunk_rows
        self.spill_dir = spill_dir
        if perf is not None and scanner.perf is None:
            scanner.perf = perf

    @property
    def can_fork(self):
        return hasattr(os, "fork")

    def scan(self, target_space, checkpoint=None):
        """Scan the whole target space; returns one merged ScanResult.

        ``checkpoint``, when given, is a :class:`repro.checkpoint`
        scope: completed shards are committed as they merge and a
        resumed scan restores them instead of re-scanning.  (A
        single-process scan has no sub-scan units; its enclosing
        campaign week is the unit of durability.)
        """
        start = time.perf_counter()
        network = self.scanner.network
        fault_before = dict(getattr(network, "fault_counters", None) or {})
        ranges = target_space.shard_ranges(self.shards)
        tracer = getattr(network, "tracer", None)
        if tracer is not None:
            with tracer.span("scan", shards=len(ranges)):
                if len(ranges) <= 1 or not self.can_fork:
                    result = self.scanner.scan(target_space)
                else:
                    result = self._scan_forked(target_space, ranges,
                                               checkpoint=checkpoint)
        elif len(ranges) <= 1 or not self.can_fork:
            result = self.scanner.scan(target_space)
        else:
            result = self._scan_forked(target_space, ranges,
                                       checkpoint=checkpoint)
        if self.perf is not None:
            self.perf.record_seconds("scan_wall",
                                     time.perf_counter() - start)
            self.perf.count("scans_run")
            # Flush this scan's injected/absorbed fault deltas.
            fault_after = getattr(network, "fault_counters", None)
            if fault_after:
                for name, value in fault_after.items():
                    delta = value - fault_before.get(name, 0)
                    if delta:
                        self.perf.count("fault_" + name, delta)
        return result

    # -- forked path -------------------------------------------------------

    def _open_spill_store(self):
        """The chunk spill store for a streamed scan, or ``(None, None)``.

        Returns ``(store, temp_dir)``; ``temp_dir`` is non-``None`` only
        when a private directory was created and must be removed after
        the run."""
        if not self.stream_results or \
                not getattr(self.scanner, "supports_chunks", False):
            return None, None
        if self.spill_dir is not None:
            return SnapshotStore(self.spill_dir, self.perf), None
        temp = tempfile.mkdtemp(prefix="scan-spill-")
        return SnapshotStore(temp, self.perf), temp

    def _scan_forked(self, target_space, ranges, checkpoint=None):
        scanner = self.scanner
        chunk_rows = self.chunk_rows

        def run_range(index_range, on_progress, chunk_sink=None):
            kwargs = {"index_range": index_range}
            if on_progress is not None:
                kwargs["on_progress"] = on_progress
            if chunk_sink is not None:
                kwargs["chunk_sink"] = chunk_sink
                kwargs["chunk_rows"] = chunk_rows
            return scanner.scan(target_space, **kwargs)

        prewarm = getattr(scanner, "prewarm", None)
        if prewarm is not None:
            # Build the memoised target columns and LFSR walk *before*
            # forking so every worker inherits them copy-on-write
            # instead of paying an O(targets) build per process.
            prewarm(target_space)
        live_ranges, live_origins, on_item_done, restored, \
            restored_provenance = _plan_checkpointed_shards(
                scanner.network, self.perf, ranges, checkpoint)
        spill_store, spill_temp = self._open_spill_store()
        try:
            supervisor = ShardSupervisor(
                scanner.network, run_range, perf=self.perf,
                heartbeat_timeout=self.heartbeat_timeout,
                supports_progress=getattr(scanner, "supports_progress",
                                          False),
                perf_host=scanner, chunk_store=spill_store,
                reassemble=_absorb_result_chunks)
            shard_results, provenance = supervisor.run(
                live_ranges, origins=live_origins,
                on_item_done=on_item_done)
        finally:
            if spill_temp is not None:
                shutil.rmtree(spill_temp, ignore_errors=True)
        combined = restored + [(start, result)
                               for start, result, __mode in shard_results]
        combined.sort(key=lambda entry: entry[0])
        merged = merge_scan_results(
            scanner.network.clock.now,
            [result for __, result in combined])
        all_provenance = restored_provenance + provenance
        all_provenance.sort(key=lambda e: (e["start"], e["stop"],
                                           e["attempt"]))
        merged.provenance = all_provenance
        return merged

    def __repr__(self):
        return "ScanEngine(shards=%d, fork=%s)" % (
            self.shards, self.can_fork)
