"""Sharded parallel scan engine.

Splits a :class:`~repro.scanner.ipv4scan.ScanTargetSpace` into N
contiguous index shards and drives each through a fork-based worker
process.  ``os.fork`` gives every worker a copy-on-write view of the
fully built scenario — no scenario rebuild, no pickling of the world,
just the per-shard :class:`ScanResult` coming back over a pipe.

Determinism contract (verified by ``tests/scanner/test_engine.py``):
the merged result is **identical** to a sequential single-process scan
of the same space — same ``counts()``, same ``responders``, same
``divergent_sources``, same ``probes_sent`` — for any shard count.
Three properties make this hold:

* probe identity is a pure hash of (scanner, scan epoch, target), so a
  worker scanning indexes [k, m) emits byte-identical packets to the
  ones a full scan would emit for those targets;
* packet fates (loss/corruption) are keyed per flow + occurrence, not
  drawn from a shared sequential RNG, so fates cannot depend on how
  workers interleave sends (:meth:`repro.netsim.network.Network._packet_fate`);
* shard results are merged with set unions over disjoint target sets,
  which is order-insensitive.

Workers cannot write back into the parent (fork semantics), so parent-
side state the scan would have advanced — network traffic counters,
warm resolver caches — is reconciled explicitly: counter deltas ride
back over the pipe, while cache warm-ups are deliberately dropped (the
next scan replays the identical resolutions from the identical pre-fork
state, so dropped warm-ups cannot change any later result).  One
observable consequence: every worker re-warms the resolution suffix
cache in its own copy, so the *traffic* counters report a few more
queries than a sequential scan (one warm-up per extra worker) even
though the scan results are identical.

When ``shards <= 1``, the platform lacks ``os.fork`` (non-POSIX), or a
worker dies, the engine transparently falls back to scanning in-process.
"""

import os
import pickle
import time

from repro.perf import PerfRegistry
from repro.scanner.ipv4scan import merge_scan_results

# Network traffic counters reconciled from workers back into the parent.
_NET_COUNTERS = ("udp_queries_sent", "udp_queries_lost",
                 "udp_responses_corrupted")


class ScanEngine:
    """Runs Internet-wide scans, optionally sharded across processes."""

    def __init__(self, scanner, shards=1, perf=None):
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        self.scanner = scanner
        self.shards = shards
        self.perf = perf
        if perf is not None and scanner.perf is None:
            scanner.perf = perf

    @property
    def can_fork(self):
        return hasattr(os, "fork")

    def scan(self, target_space):
        """Scan the whole target space; returns one merged ScanResult."""
        start = time.perf_counter()
        ranges = target_space.shard_ranges(self.shards)
        if len(ranges) <= 1 or not self.can_fork:
            result = self.scanner.scan(target_space)
        else:
            result = self._scan_forked(target_space, ranges)
        if self.perf is not None:
            self.perf.record_seconds("scan_wall",
                                     time.perf_counter() - start)
            self.perf.count("scans_run")
        return result

    # -- forked path -------------------------------------------------------

    def _scan_forked(self, target_space, ranges):
        network = self.scanner.network
        children = []
        for index_range in ranges:
            read_fd, write_fd = os.pipe()
            pid = os.fork()
            if pid == 0:
                # Worker: scan one shard of the COW-shared scenario and
                # ship the result back; never return into the caller.
                os.close(read_fd)
                status = 0
                try:
                    payload = pickle.dumps(
                        self._run_shard(target_space, index_range),
                        protocol=pickle.HIGHEST_PROTOCOL)
                    with os.fdopen(write_fd, "wb") as pipe:
                        pipe.write(payload)
                except BaseException:
                    status = 1
                finally:
                    # Skip atexit/buffer teardown of the forked
                    # interpreter; only the pipe payload matters.
                    os._exit(status)
            os.close(write_fd)
            children.append((pid, read_fd, index_range))

        shard_results = []
        failed_ranges = []
        counter_deltas = {name: 0 for name in _NET_COUNTERS}
        for pid, read_fd, index_range in children:
            with os.fdopen(read_fd, "rb") as pipe:
                payload = pipe.read()
            __, status = os.waitpid(pid, 0)
            shard = None
            if status == 0 and payload:
                try:
                    shard = pickle.loads(payload)
                except Exception:
                    shard = None
            if shard is None:
                failed_ranges.append(index_range)
                continue
            shard_results.append(shard["result"])
            for name in _NET_COUNTERS:
                counter_deltas[name] += shard["net_counters"][name]
            if self.perf is not None:
                self.perf.record_seconds("shard_wall",
                                         shard["wall_seconds"])
                if shard["perf"] is not None:
                    self.perf.merge(shard["perf"])

        # A dead worker's shard is re-scanned in-process: probe identity
        # and packet fates are position-independent, so the late retry
        # still produces exactly the bytes and fates the worker would
        # have.
        for index_range in failed_ranges:
            if self.perf is not None:
                self.perf.count("shard_failures")
            shard_results.append(
                self.scanner.scan(target_space, index_range=index_range))

        for name, delta in counter_deltas.items():
            setattr(network, name, getattr(network, name) + delta)
        return merge_scan_results(network.clock.now, shard_results)

    def _run_shard(self, target_space, index_range):
        """Executed inside a worker: one shard scan plus bookkeeping."""
        network = self.scanner.network
        # The worker inherits the parent's registry copy-on-write; swap
        # in a fresh one so only shard-local numbers ride back (merging
        # the inherited copy would double-count pre-fork totals).
        if self.scanner.perf is not None:
            self.scanner.perf = PerfRegistry()
        before = {name: getattr(network, name) for name in _NET_COUNTERS}
        shard_start = time.perf_counter()
        result = self.scanner.scan(target_space, index_range=index_range)
        wall = time.perf_counter() - shard_start
        return {
            "result": result,
            "wall_seconds": wall,
            "net_counters": {
                name: getattr(network, name) - before[name]
                for name in _NET_COUNTERS},
            "perf": self.scanner.perf,
        }

    def __repr__(self):
        return "ScanEngine(shards=%d, fork=%s)" % (
            self.shards, self.can_fork)
