"""Fine-grained cache snooping: resolver popularity estimation.

The paper closes §2.6 suggesting "a more fine-grained DNS cache snooping
technique to evaluate the time gap between recaching entries, aiming to
approximate the popularity of open resolvers, as suggested by Rajab et
al." — this module implements that follow-up.

The idea: the time between a cache entry expiring and a client lookup
re-adding it is (approximately) an inter-arrival gap of the resolver's
client request process.  Hourly probes cannot resolve sub-minute gaps,
so the prober tracks an entry's TTL coarsely, switches to high-frequency
probing just before expiry, timestamps the re-add precisely, and repeats
over several cycles.  The mean observed gap estimates the per-TLD
request rate; aggregated over TLDs it ranks resolvers by client load.
"""

from repro.dnswire.constants import QTYPE_NS
from repro.dnswire.message import Message
from repro.netsim.network import UdpPacket

CLASS_HEAVY = "heavy"        # re-adds within seconds: busy resolver
CLASS_MODERATE = "moderate"  # re-adds within minutes
CLASS_LIGHT = "light"        # re-adds within hours
CLASS_IDLE = "idle"          # never re-added while watched

HEAVY_GAP_SECONDS = 10.0
MODERATE_GAP_SECONDS = 600.0


class PopularityEstimate:
    """Result of fine-grained snooping against one resolver."""

    def __init__(self, resolver_ip, gaps, watched_tlds, cycles_observed):
        self.resolver_ip = resolver_ip
        self.gaps = list(gaps)
        self.watched_tlds = list(watched_tlds)
        self.cycles_observed = cycles_observed

    @property
    def mean_gap(self):
        return sum(self.gaps) / len(self.gaps) if self.gaps else None

    @property
    def request_rate_hz(self):
        """Estimated client-lookup rate for the watched names."""
        mean = self.mean_gap
        return (1.0 / mean) if mean else 0.0

    @property
    def popularity_class(self):
        mean = self.mean_gap
        if mean is None:
            return CLASS_IDLE
        if mean <= HEAVY_GAP_SECONDS:
            return CLASS_HEAVY
        if mean <= MODERATE_GAP_SECONDS:
            return CLASS_MODERATE
        return CLASS_LIGHT

    def __repr__(self):
        return "PopularityEstimate(%s, %s, %d gaps)" % (
            self.resolver_ip, self.popularity_class, len(self.gaps))


class PopularityProber:
    """Adaptive-rate snooper measuring expiry-to-re-add gaps precisely.

    Unlike :class:`CacheSnoopingProber`, which probes every resolver at a
    fixed hourly cadence, this prober follows ONE resolver at a time and
    modulates its probe rate: coarse while the entry's TTL is high, fine
    (sub-second) around the expected expiry, so the re-add timestamp —
    and therefore the gap — is measured to ``fine_interval`` precision.
    """

    def __init__(self, network, source_ip, tlds, fine_interval=0.5,
                 coarse_interval=600.0, fine_window=30.0,
                 max_fine_probes=4000, source_port=31700):
        self.network = network
        self.source_ip = source_ip
        self.tlds = tuple(tlds)
        self.fine_interval = fine_interval
        self.coarse_interval = coarse_interval
        self.fine_window = fine_window
        self.max_fine_probes = max_fine_probes
        self.source_port = source_port
        self._txid = 0
        self.probes_sent = 0

    def _observe_ttl(self, resolver_ip, tld):
        """One NS probe; returns the observed TTL, ``None`` when silent
        or uncached, ``"empty"`` for empty answers."""
        self._txid = (self._txid + 1) & 0xFFFF
        query = Message.query(tld, qtype=QTYPE_NS, txid=self._txid,
                              rd=False)
        packet = UdpPacket(self.source_ip, self.source_port, resolver_ip,
                           53, query.to_wire())
        self.probes_sent += 1
        for response in self.network.send_udp(packet):
            try:
                message = Message.from_wire(response.packet.payload)
            except ValueError:
                continue
            if not message.header.qr or message.header.txid != self._txid:
                continue
            ttls = [record.ttl for record in message.answers
                    if record.rtype == QTYPE_NS]
            return max(ttls) if ttls else "empty"
        return None

    def _measure_one_gap(self, resolver_ip, tld):
        """Track one expiry/re-add cycle; returns the gap or ``None``.

        Advances the simulated clock.
        """
        clock = self.network.clock
        # Coarse phase: wait for the TTL to run low.  An "empty" answer
        # means we landed inside a gap — keep waiting for the re-add and
        # the next decay cycle.
        for __ in range(int(14 * 86400 / self.coarse_interval)):
            ttl = self._observe_ttl(resolver_ip, tld)
            if ttl is None:
                return None  # resolver silent: nothing to measure
            if isinstance(ttl, (int, float)) and 0 < ttl <= \
                    self.fine_window:
                break
            if isinstance(ttl, (int, float)) and ttl > self.fine_window:
                # Sleep to just before the expected expiry, but never
                # past the coarse cadence (the entry may be refreshed
                # under us).
                clock.advance(min(ttl - self.fine_window / 2,
                                  self.coarse_interval))
            else:
                clock.advance(self.coarse_interval)
        else:
            return None
        # Fine phase: catch the expiry, then the re-add.  Long gaps are
        # covered by exponential backoff after the expiry: precision
        # degrades to half the current probe interval, which is plenty
        # to separate the popularity classes.
        expiry_time = None
        last_empty = None
        interval = self.fine_interval
        misses_since_expiry = 0
        for __ in range(self.max_fine_probes):
            ttl = self._observe_ttl(resolver_ip, tld)
            now = clock.now
            if isinstance(ttl, (int, float)) and ttl > 0:
                if expiry_time is not None:
                    # Re-added between the last empty probe and now:
                    # take the midpoint as the re-add estimate.
                    readd = ((last_empty + now) / 2.0
                             if last_empty is not None else now)
                    return max(0.0, readd - expiry_time)
                if ttl <= self.fine_interval:
                    expiry_time = now + ttl  # expires within this step
            elif expiry_time is None:
                expiry_time = now  # entry already gone: it expired
                last_empty = now
            else:
                last_empty = now
                misses_since_expiry += 1
                if misses_since_expiry % 40 == 0:
                    interval = min(interval * 2, self.coarse_interval)
            clock.advance(interval)
        return None

    def estimate(self, resolver_ip, cycles=2):
        """Estimate one resolver's popularity over ``cycles`` re-adds per
        TLD; returns a :class:`PopularityEstimate`."""
        gaps = []
        observed = 0
        for tld in self.tlds:
            for __ in range(cycles):
                gap = self._measure_one_gap(resolver_ip, tld)
                if gap is not None:
                    gaps.append(gap)
                    observed += 1
        return PopularityEstimate(resolver_ip, gaps, self.tlds, observed)
