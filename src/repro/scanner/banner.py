"""TCP banner grabbing for device fingerprinting (paper §2.4, Table 4).

Connects to FTP, SSH, Telnet, HTTP, and HTTPS on each resolver, recording
greeting banners and — for web ports — the body of the device's default
page, which often names the hardware ("dm500plus login", router model
strings, …).
"""

from repro.netsim.network import Node  # noqa: F401  (documented interface)
from repro.websim.http import HttpRequest

GRAB_PORTS = (21, 22, 23, 80, 443)
PORT_NAMES = {21: "ftp", 22: "ssh", 23: "telnet", 80: "http", 443: "https"}


class HostBanners:
    """Everything grabbed from one host's TCP surface."""

    def __init__(self, ip):
        self.ip = ip
        self.banners = {}     # port -> banner text
        self.http_body = None

    @property
    def responded(self):
        return bool(self.banners) or self.http_body is not None

    def all_text(self):
        """Concatenated banner + body text the fingerprint regexes see."""
        parts = [self.banners[port] for port in sorted(self.banners)]
        if self.http_body:
            parts.append(self.http_body)
        return "\n".join(parts)

    def __repr__(self):
        return "HostBanners(%s, ports=%s)" % (
            self.ip, sorted(self.banners))


class BannerGrabber:
    """Grabs banners and default pages from a list of hosts."""

    def __init__(self, network, source_ip, ports=GRAB_PORTS,
                 fetch_http_body=True):
        self.network = network
        self.source_ip = source_ip
        self.ports = tuple(ports)
        self.fetch_http_body = fetch_http_body

    def grab(self, ip):
        """Collect all banners from one host."""
        result = HostBanners(ip)
        for port in self.ports:
            banner = self.network.tcp_banner(self.source_ip, ip, port)
            if banner:
                result.banners[port] = banner
        if self.fetch_http_body and (80 in result.banners
                                     or 443 in result.banners
                                     or self._has_web(ip)):
            response = self.network.http_request(
                self.source_ip, ip, HttpRequest(host=ip, path="/"))
            if response is not None and response.body:
                result.http_body = response.body
        return result

    def _has_web(self, ip):
        node = self.network.node_at(ip)
        return node is not None and (80 in node.tcp_ports()
                                     or 443 in node.tcp_ports())

    def grab_all(self, ips):
        """Grab from every host; returns only hosts that answered."""
        results = []
        for ip in ips:
            banners = self.grab(ip)
            if banners.responded:
                results.append(banners)
        return results
