"""Differential campaigns: carry last week's verdicts, probe the churn.

"Hidden Treasures" (PAPERS.md) showed that recycling prior scans
recovers most of a fresh scan's signal at a fraction of the probes.
This module is that recycling plane for the weekly campaign, built
around the trust-but-verify posture the rest of the repo applies to
degraded work: carried-forward data is *stale by construction*, so
every unprobed verdict is explicitly attributed, a seeded audit sample
re-measures a slice of it each week, and measured drift beyond an
error budget escalates back to real probing automatically.

A delta week decomposes the target space using the churn model's own
forecast (:meth:`repro.inetmodel.churn.ChurnModel.pending_churn`,
asked *before* the model steps, so the prediction precedes reality):

* **churned prefixes** — pools with a lease expiry, decommission, or
  arrival due this week — get a *refresh*: every prior responder there
  is re-probed (:meth:`Ipv4Scanner.scan_addresses`), so deaths and
  rebinds-away are observed exactly.  Only a scheduled full sweep
  re-acquires hosts that rebound to brand-new addresses.
* **stable prefixes** — no forecast events — have their prior rows
  copied forward unprobed, each row flagged ``FLAG_CARRIED`` and
  tallied in ``ScanResult.carried`` under a ``delta:*`` cause.
* an **audit sample** of the carried responders — a pure hash of
  (scanner identity, scan epoch, address) against ``audit_fraction``,
  so the sampled set is identical at any shard count and in any probe
  order — is probed for real.  Audited verdicts replace their carried
  rows.
* the **drift detector** compares audited reality against the model's
  prediction (a stable prefix's responders should still answer) per
  /``window_bits`` destination window.  A window whose failure share
  exceeds ``drift_budget`` (with at least ``min_audit_failures``
  failures, so one unlucky loss draw cannot trip it) escalates: its
  prefixes are fully swept this week and their carried rows discarded.
  When the *aggregate* audit failure share blows the budget the whole
  campaign escalates to a full sweep — the fallback ladder's last rung.

Every rung is reported, never silent: escalations append
``status: "delta_escalated"``/``"delta_full_sweep"`` provenance
entries (surfaced by ``ScanResult.degraded_shards``), carried windows
and escalations emit ``delta``-kind flight-recorder events carrying
``delta:*`` causes, and the scheduled re-baselining sweeps are marked
too.

Determinism: probe identity is already independent of order, space
slicing, and shard count (``_probe_key`` mixes identity, epoch, and
target), the audit sample is a pure per-address hash, and the drift
decisions are pure functions of audit outcomes — so a delta week is
bit-identical at any ``--shards`` and across kill/resume incarnations
(the campaign's committed world state replays the same audit and
refresh probes before re-entering an interrupted escalation sweep).
"""

from repro.netsim.address import int_to_ip
from repro.scanner.ipv4scan import ScanResult, ScanTargetSpace, _mix64

# Attribution causes (flight recorder + provenance + carried tallies).
DELTA_CAUSE_PREFIX = "delta:"
CAUSE_CARRIED = "delta:carried"           # verdict copied forward unprobed
CAUSE_AUDIT = "delta:audit"               # carried verdict re-verified
CAUSE_REFRESH = "delta:churn-forecast"    # churned prefix re-probed
CAUSE_DRIFT = "delta:drift"               # window escalated to a sweep
CAUSE_GLOBAL_DRIFT = "delta:global-drift"  # campaign-wide escalation
CAUSE_FULL_SWEEP = "delta:full-sweep"     # scheduled re-baselining sweep

_SALT_AUDIT = 0xA7
_M64 = (1 << 64) - 1


class DeltaConfig:
    """Tuning of the delta-scanning plane.

    ``audit_fraction`` of carried-forward responders are re-probed each
    week; a /``window_bits`` window whose audited failure share exceeds
    ``drift_budget`` — with at least ``min_audit_failures`` actual
    failures, so a single lost audit probe in a tiny window cannot
    trigger a sweep — escalates to a full sweep of its prefixes, and an
    aggregate failure share over the budget escalates the whole
    campaign.  Every ``full_sweep_every``-th week (and the first and
    last of a :meth:`ScanCampaign.run`) is a scheduled full sweep that
    re-acquires hosts which rebound to new addresses.
    """

    __slots__ = ("audit_fraction", "drift_budget", "full_sweep_every",
                 "min_audit_failures", "window_bits")

    def __init__(self, audit_fraction=0.05, drift_budget=0.1,
                 full_sweep_every=4, min_audit_failures=2,
                 window_bits=16):
        if not 0.0 < audit_fraction <= 1.0:
            raise ValueError("audit_fraction must be in (0, 1]")
        if not 0.0 < drift_budget < 1.0:
            raise ValueError("drift_budget must be in (0, 1)")
        if full_sweep_every < 1:
            raise ValueError("full_sweep_every must be >= 1")
        if min_audit_failures < 1:
            raise ValueError("min_audit_failures must be >= 1")
        if not 0 < window_bits <= 32:
            raise ValueError("window_bits must be in (0, 32]")
        self.audit_fraction = float(audit_fraction)
        self.drift_budget = float(drift_budget)
        self.full_sweep_every = int(full_sweep_every)
        self.min_audit_failures = int(min_audit_failures)
        self.window_bits = int(window_bits)

    @property
    def window_mask(self):
        return (~((1 << (32 - self.window_bits)) - 1)) & 0xFFFFFFFF

    def signature(self):
        return (self.audit_fraction, self.drift_budget,
                self.full_sweep_every, self.min_audit_failures,
                self.window_bits)


def normalize_delta(delta, audit_fraction=None, drift_budget=None,
                    full_sweep_every=None):
    """Canonical delta setting: ``None`` (off) or a DeltaConfig.

    Accepts the CLI spellings (``"off"``/``"on"``), booleans, or a
    ready config; the keyword knobs override the config's fields when
    given (the ``--audit-fraction``/``--drift-budget``/
    ``--full-sweep-every`` flags).
    """
    if delta is None or delta is False or delta == "off":
        return None
    if delta is True or delta == "on":
        config = DeltaConfig()
    elif isinstance(delta, DeltaConfig):
        config = delta
    else:
        raise ValueError("unknown delta setting: %r (expected 'off', "
                         "'on', or a DeltaConfig)" % (delta,))
    if (audit_fraction is not None or drift_budget is not None
            or full_sweep_every is not None):
        config = DeltaConfig(
            audit_fraction=(config.audit_fraction if audit_fraction
                            is None else audit_fraction),
            drift_budget=(config.drift_budget if drift_budget is None
                          else drift_budget),
            full_sweep_every=(config.full_sweep_every if full_sweep_every
                              is None else full_sweep_every),
            min_audit_failures=config.min_audit_failures,
            window_bits=config.window_bits)
    return config


def audit_sample(identity, epoch, values, fraction):
    """The seeded audit subset of ``values`` (32-bit address ints).

    A value is audited iff a pure splitmix64 hash of (scanner identity,
    scan epoch, value) falls below ``fraction`` of the hash space:
    order-independent, shard-invariant, and re-drawn each scan epoch so
    successive weeks audit different slices of the carried set.
    """
    threshold = int(fraction * float(1 << 64))
    salt = (_SALT_AUDIT << 56) ^ (identity & _M64) ^ ((epoch & _M64) << 8)
    return {value for value in values
            if _mix64(salt ^ (value * 0x9E3779B1)) < threshold}


def _record_delta_event(network, source_ip, dst, cause):
    recorder = getattr(network, "recorder", None)
    if recorder is not None:
        recorder.record(network.clock.now, "delta", source_ip, dst,
                        cause=cause)


def mark_full_sweep(result, week, cause, campaign):
    """Stamp a full-sweep week of a delta campaign with its reason."""
    result.provenance.append({"status": "ok", "kind": "delta",
                              "mode": "full", "week": week,
                              "cause": cause})
    _record_delta_event(campaign.network, campaign.scanner.source_ip,
                        0, cause)
    if campaign.perf is not None:
        campaign.perf.count("delta_full_sweeps")


def _rows_by_prefix(prior_result, prefixes):
    """Partition the prior result's rows by covering prefix slot.

    Returns ``{prefix_index: [(value, rcode, flags), ...]}`` preserving
    the prior result's row order within each prefix.
    """
    ordered = sorted(range(len(prefixes)),
                     key=lambda slot: prefixes[slot].base)
    bases = [prefixes[slot].base for slot in ordered]
    from bisect import bisect_right
    rows = {}
    for value, rcode, flags in prior_result.iter_rows():
        position = bisect_right(bases, value) - 1
        if position < 0:
            continue
        slot = ordered[position]
        if not prefixes[slot].contains_int(value):
            continue
        rows.setdefault(slot, []).append((value, rcode, flags))
    return rows


def run_delta_week(campaign, week, forecast, checkpoint=None):
    """Execute one delta week; returns the assembled :class:`ScanResult`.

    ``forecast`` is the churn model's pre-step
    :meth:`~repro.inetmodel.churn.ChurnModel.pending_churn` map.  The
    fallback ladder runs in deterministic order — audit probes, drift
    verdicts, then either the global full sweep or (refresh probes +
    escalated-window sweeps + carry) — so a resumed incarnation replays
    the identical probe sequence before re-entering an interrupted
    engine sweep.
    """
    config = campaign.delta
    scanner = campaign.scanner
    space = campaign.target_space
    network = campaign.network
    perf = campaign.perf
    prior = campaign.snapshots[-1].result
    prefixes = space.prefixes
    window_mask = config.window_mask

    churned_slots = {slot for slot, prefix in enumerate(prefixes)
                     if forecast.get(prefix.cidr)}
    rows = _rows_by_prefix(prior, prefixes)

    # -- audit the stable carried set (trust, but verify) ------------------
    stable_values = set()
    for slot, slot_rows in rows.items():
        if slot not in churned_slots:
            stable_values.update(value for value, _, _ in slot_rows)
    epoch = scanner._scan_epoch()
    audited = audit_sample(scanner._identity, epoch, stable_values,
                           config.audit_fraction)
    audit_result = scanner.scan_addresses(
        [int_to_ip(value) for value in sorted(audited)])
    alive = {value for value, _, _ in audit_result.iter_rows()}

    # -- drift detection per destination window ----------------------------
    window_audits = {}
    for value in audited:
        window = value & window_mask
        counts = window_audits.setdefault(window, [0, 0])
        counts[0] += 1
        if value not in alive:
            counts[1] += 1
    escalated_windows = []
    for window, (count, failures) in sorted(window_audits.items()):
        if failures >= config.min_audit_failures \
                and failures / count > config.drift_budget:
            escalated_windows.append((window, count, failures))
    total_audited = len(audited)
    total_failures = sum(1 for value in audited if value not in alive)
    global_drift = (total_failures >= config.min_audit_failures
                    and total_audited > 0
                    and total_failures / total_audited
                    > config.drift_budget)

    result = ScanResult(network.clock.now)
    result.probes_sent += audit_result.probes_sent
    summary = {"status": "ok", "kind": "delta", "mode": "delta",
               "week": week, "audited": total_audited,
               "audit_failures": total_failures,
               "carried": 0, "refreshed": 0,
               "escalated_windows": len(escalated_windows)}
    if perf is not None:
        perf.count("delta_audit_probes", audit_result.probes_sent)
        perf.count("delta_audit_failures", total_failures)

    if global_drift:
        # -- last rung: reality no longer matches the model anywhere.
        # Discard every carried verdict and sweep the full space (the
        # audit probes already sent stay accounted; their rows are
        # superseded by the sweep's fresh ones).
        summary["mode"] = "full"
        summary["cause"] = CAUSE_GLOBAL_DRIFT
        scan_scope = (checkpoint.scope("week", week, "scan")
                      if checkpoint is not None else None)
        swept = campaign.engine.scan(space, checkpoint=scan_scope)
        result.merge(swept)
        result.provenance.append(summary)
        result.provenance.append(
            {"status": "delta_full_sweep", "cause": CAUSE_GLOBAL_DRIFT,
             "week": week, "audited": total_audited,
             "failures": total_failures})
        _record_delta_event(network, scanner.source_ip, 0,
                            CAUSE_GLOBAL_DRIFT)
        if perf is not None:
            perf.count("delta_global_escalations")
            perf.count("delta_full_sweeps")
        return result

    escalated_slots = set()
    for window, _, _ in escalated_windows:
        window_stop = window + (~window_mask & 0xFFFFFFFF) + 1
        for slot, prefix in enumerate(prefixes):
            if slot in churned_slots or slot in escalated_slots:
                continue
            if prefix.base < window_stop \
                    and window < prefix.base + prefix.num_addresses:
                escalated_slots.add(slot)

    # -- keep audited verdicts for prefixes the sweep won't revisit;
    # audit rows inside escalated prefixes are dropped (the sweep below
    # re-measures them, and a target must not contribute twice).
    escalated_prefixes = [prefixes[slot] for slot in sorted(escalated_slots)]
    for value, rcode, flags in audit_result.iter_rows():
        if any(prefix.contains_int(value)
               for prefix in escalated_prefixes):
            continue
        result.record_value(value, rcode,
                            bool(flags & ScanResult.FLAG_DIVERGENT))

    # -- refresh churned prefixes: re-probe their prior responders ---------
    refresh_values = sorted({value for slot in sorted(churned_slots)
                             for value, _, _ in rows.get(slot, ())})
    refresh_result = scanner.scan_addresses(
        [int_to_ip(value) for value in refresh_values])
    summary["refreshed"] = len(refresh_values)
    result.merge(refresh_result)
    if perf is not None:
        perf.count("delta_refresh_probes", refresh_result.probes_sent)
    for slot in sorted(churned_slots):
        if rows.get(slot):
            _record_delta_event(network, scanner.source_ip,
                                prefixes[slot].base, CAUSE_REFRESH)

    # -- escalated windows: full sweep of their prefixes -------------------
    if escalated_slots:
        sweep_space = ScanTargetSpace(
            [prefixes[slot] for slot in range(len(prefixes))
             if slot in escalated_slots])
        sweep_scope = (checkpoint.scope("week", week, "delta")
                       if checkpoint is not None else None)
        result.merge(campaign.engine.scan(sweep_space,
                                          checkpoint=sweep_scope))
    for window, count, failures in escalated_windows:
        result.provenance.append(
            {"status": "delta_escalated", "window": int_to_ip(window),
             "cause": CAUSE_DRIFT, "week": week, "audited": count,
             "failures": failures})
        _record_delta_event(network, scanner.source_ip, window,
                            CAUSE_DRIFT)
    if perf is not None and escalated_windows:
        perf.count("delta_escalated_windows", len(escalated_windows))

    # -- carry the rest forward, attributed --------------------------------
    carried_windows = set()
    for slot in sorted(set(rows) - churned_slots - escalated_slots):
        for value, rcode, flags in rows[slot]:
            if value in audited:
                continue  # the audit verdict replaced this row
            window = value & window_mask
            result.record_carried(value, rcode, flags, window,
                                  CAUSE_CARRIED)
            carried_windows.add(window)
    summary["carried"] = result.carried_targets
    for window in sorted(carried_windows):
        _record_delta_event(network, scanner.source_ip, window,
                            CAUSE_CARRIED)
    if perf is not None:
        perf.count("delta_carried_targets", result.carried_targets)
        perf.count("delta_weeks")
    result.provenance.append(summary)
    return result


def delta_summary(snapshots):
    """Aggregate delta bookkeeping across a campaign's snapshots."""
    totals = {"delta_weeks": 0, "full_weeks": 0, "carried": 0,
              "audited": 0, "audit_failures": 0, "refreshed": 0,
              "escalated_windows": 0, "global_escalations": 0}
    for snapshot in snapshots:
        for entry in snapshot.result.provenance:
            if entry.get("kind") == "delta" and entry.get("status") == "ok":
                if entry["mode"] == "delta":
                    totals["delta_weeks"] += 1
                else:
                    totals["full_weeks"] += 1
                    if entry.get("cause") == CAUSE_GLOBAL_DRIFT:
                        totals["global_escalations"] += 1
                for key in ("carried", "audited", "audit_failures",
                            "refreshed", "escalated_windows"):
                    totals[key] += entry.get(key, 0)
    return totals
