"""Internet-wide scanning machinery (paper §2.2, §3.3).

Implements the measurement side: LFSR-permuted IPv4 scans with the target
address encoded in the query name, weekly scan campaigns with blacklisting
and verification scans, CHAOS software fingerprinting, TCP banner grabbing
with a regex fingerprint database, DNS cache snooping, and the domain
scans whose responses feed the classification pipeline (resolver identity
encoded in txid bits + UDP source port + 0x20 case pattern).
"""

from repro.scanner.lfsr import LFSR, MAXIMAL_TAPS
from repro.scanner.blacklist import Blacklist
from repro.scanner.encoding import (
    ResolverIdCodec,
    decode_target_ip,
    encode_target_qname,
)
from repro.scanner.ipv4scan import (
    Ipv4Scanner,
    ScanResult,
    ScanTargetSpace,
    merge_scan_results,
)
from repro.scanner.pacing import PacingConfig, PacingPlan, normalize_pacing
from repro.scanner.delta import DeltaConfig, normalize_delta
from repro.scanner.engine import ScanEngine, ShardSupervisor
from repro.scanner.domainengine import DomainScanEngine
from repro.scanner.campaign import CampaignError, ScanCampaign, WeeklySnapshot
from repro.scanner.chaos import ChaosScanner, ChaosObservation
from repro.scanner.banner import BannerGrabber, HostBanners
from repro.scanner.fingerprints import FINGERPRINT_RULES, FingerprintMatcher
from repro.scanner.snooping import CacheSnoopingProber, SnoopingTrace
from repro.scanner.domainscan import DnsObservation, DomainScanner

__all__ = [
    "Blacklist",
    "BannerGrabber",
    "CacheSnoopingProber",
    "CampaignError",
    "ChaosObservation",
    "ChaosScanner",
    "DeltaConfig",
    "DnsObservation",
    "DomainScanEngine",
    "DomainScanner",
    "FINGERPRINT_RULES",
    "FingerprintMatcher",
    "HostBanners",
    "Ipv4Scanner",
    "LFSR",
    "MAXIMAL_TAPS",
    "PacingConfig",
    "PacingPlan",
    "ResolverIdCodec",
    "ScanCampaign",
    "ScanEngine",
    "ScanResult",
    "ScanTargetSpace",
    "ShardSupervisor",
    "SnoopingTrace",
    "WeeklySnapshot",
    "decode_target_ip",
    "encode_target_qname",
    "merge_scan_results",
    "normalize_delta",
    "normalize_pacing",
]
