"""CHAOS-class software fingerprinting scan (paper §2.4, Table 3).

Sends ``version.bind`` and ``version.server`` TXT queries in class CH to
every resolver and classifies the response pair: error codes for both,
NOERROR without version data, administrator-hidden strings, or a usable
software/version string.
"""

from repro.dnswire.constants import (
    CLASS_CH,
    QTYPE_TXT,
    RCODE_NOERROR,
)
from repro.dnswire.message import Message
from repro.netsim.network import UdpPacket

# Response-pair classification outcomes.
OUTCOME_ERROR = "error"            # REFUSED/SERVFAIL for both queries
OUTCOME_NO_VERSION = "no_version"  # NOERROR but no version specified
OUTCOME_HIDDEN = "hidden"          # arbitrary admin-configured string
OUTCOME_VERSION = "version"        # usable software/version string
OUTCOME_SILENT = "silent"          # no response at all


class ChaosObservation:
    """The CHAOS scan result for one resolver."""

    def __init__(self, resolver_ip, outcome, version_string=None):
        self.resolver_ip = resolver_ip
        self.outcome = outcome
        self.version_string = version_string

    def __repr__(self):
        return "ChaosObservation(%s, %s, %r)" % (
            self.resolver_ip, self.outcome, self.version_string)


class ChaosScanner:
    """Runs the version.bind/version.server scan over a resolver list."""

    QUERY_NAMES = ("version.bind", "version.server")

    def __init__(self, network, source_ip, version_matcher=None,
                 source_port=31400):
        self.network = network
        self.source_ip = source_ip
        self.source_port = source_port
        self.version_matcher = version_matcher
        self._txid = 0

    def _ask(self, resolver_ip, qname):
        self._txid = (self._txid + 1) & 0xFFFF
        query = Message.query(qname, qtype=QTYPE_TXT, qclass=CLASS_CH,
                              txid=self._txid)
        packet = UdpPacket(self.source_ip, self.source_port,
                           resolver_ip, 53, query.to_wire())
        for response in self.network.send_udp(packet):
            try:
                message = Message.from_wire(response.packet.payload)
            except ValueError:
                continue
            if message.header.qr and message.header.txid == self._txid:
                return message
        return None

    def _txt_value(self, message):
        if message is None or message.rcode != RCODE_NOERROR:
            return None
        for record in message.answers:
            if record.rtype == QTYPE_TXT:
                text = record.data.text.strip()
                if text:
                    return text
        return None

    def _looks_like_version(self, text):
        """Heuristic + catalog: does the string identify real software?"""
        if self.version_matcher is not None:
            return self.version_matcher(text) is not None
        lowered = text.lower()
        has_digit = any(ch.isdigit() for ch in lowered)
        known = any(token in lowered for token in (
            "bind", "unbound", "dnsmasq", "powerdns", "microsoft",
            "nominum", "9.", "4."))
        return has_digit and known

    def probe(self, resolver_ip):
        """Scan one resolver; returns a :class:`ChaosObservation`."""
        responses = [self._ask(resolver_ip, name)
                     for name in self.QUERY_NAMES]
        if all(response is None for response in responses):
            return ChaosObservation(resolver_ip, OUTCOME_SILENT)
        if all(response is None or response.rcode != RCODE_NOERROR
               for response in responses):
            return ChaosObservation(resolver_ip, OUTCOME_ERROR)
        values = [self._txt_value(response) for response in responses]
        texts = [value for value in values if value]
        if not texts:
            return ChaosObservation(resolver_ip, OUTCOME_NO_VERSION)
        for text in texts:
            if self._looks_like_version(text):
                return ChaosObservation(resolver_ip, OUTCOME_VERSION, text)
        return ChaosObservation(resolver_ip, OUTCOME_HIDDEN, texts[0])

    def scan(self, resolver_ips):
        """Scan a set of resolvers; returns observations for responders."""
        observations = []
        for resolver_ip in resolver_ips:
            observation = self.probe(resolver_ip)
            if observation.outcome != OUTCOME_SILENT:
                observations.append(observation)
        return observations
