"""Deterministic, seed-keyed fault injection (chaos plane).

The paper's 13-month campaign ran against an Internet full of burst
loss, ICMP rate limiting, flapping resolvers, and hung web servers.
This module injects those conditions into the simulator *reproducibly*:
every fault draw is a pure splitmix64 hash of (plan seed, fault salt,
flow key, occurrence) — the same scheme :meth:`Network._packet_fate`
uses for baseline loss — so an injected fault plan yields bit-identical
scan and pipeline results for any shard count, worker interleaving, or
rerun with the same seed.

A :class:`FaultPlan` is installed on the network via
``network.install_faults(plan)``; the network, resolvers, and scan
engine then consult it at well-defined decision points:

* ``query_fate`` — drop a UDP query (uniform extra loss, spatial burst
  windows, ICMP-style per-flow rate limiting of repeated sends);
* ``truncates_response`` — damage a delivered response below
  parseability (the paper's "invalid UDP checksum" completeness bucket);
* ``tcp_stall_seconds`` — stall a TCP connect (hung web/mail servers);
* ``resolver_offline`` — flap a resolver through offline episodes;
* ``worker_dies`` — kill a scan worker process (supervision testing).

Faults absorbed or injected anywhere increment
``network.fault_counters``; the scan engine flushes those into its
:class:`repro.perf.PerfRegistry` as ``fault_*`` counters.

The crash plane (``crashes`` / ``torn_write``) is consulted by the
checkpoint supervisor rather than the network: a crash draw raises
:class:`InjectedCrash` at a unit-of-work boundary, and a torn-write draw
truncates the write-ahead journal mid-record, so chaos tests can kill a
campaign anywhere and assert a resumed run converges bit-identically.
"""

import zlib

_M64 = (1 << 64) - 1

# Exit code for a run terminated by an injected crash (BSD EX_SOFTWARE).
CRASH_EXIT_CODE = 70


class InjectedCrash(BaseException):
    """A fault-plane-ordered process death at a checkpoint boundary.

    Derives from ``BaseException`` so the pipeline's per-stage
    ``except Exception`` degradation guards cannot absorb it — an
    injected crash must kill the run, exactly like SIGKILL would, and
    only the top-level CLI handler may observe it.
    """

    def __init__(self, kind, point):
        super().__init__("injected %s crash at %s" % (kind, point))
        self.kind = kind
        self.point = point


def _mix64(value):
    """splitmix64 finaliser (see :mod:`repro.netsim.network`)."""
    value &= _M64
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _M64
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _M64
    value ^= value >> 31
    return value


# Fault-plane salts: disjoint from the network's packet-fate salts
# (0x51..0x53) so a fault draw never correlates with a baseline loss
# draw on the same flow.
_SALT_EXTRA_LOSS = 0x61
_SALT_BURST_WINDOW = 0x62
_SALT_BURST_LOSS = 0x63
_SALT_RATE_LIMIT = 0x64
_SALT_TRUNCATION = 0x65
_SALT_TCP_HANG = 0x66
_SALT_FLAP = 0x67
_SALT_WORKER_DEATH = 0x68
_SALT_CRASH = 0x69
_SALT_TORN = 0x6A

_WEEK = 7 * 24 * 3600.0

_PROFILE_FIELDS = (
    "loss_rate", "burst_share", "burst_loss_rate", "rate_limit_share",
    "rate_limit_step", "truncation_rate", "tcp_hang_rate",
    "tcp_stall_seconds", "flap_share", "flap_period", "flap_duty",
    "worker_death_rate", "crash_rate", "torn_write_rate",
)


class FaultProfile:
    """One named bundle of fault intensities (all default to inert).

    ``kill_shards`` maps a shard index to the number of consecutive
    worker attempts that die for it (``{0: 2}`` = shard 0's first two
    workers are killed); it forces deterministic worker deaths for
    supervision tests and chaos smoke runs.

    ``crash_points`` lists canonical checkpoint-boundary names (see
    :meth:`FaultPlan.crash_point`, e.g. ``"week:3"``) at which the first
    arrival is killed; ``torn_points`` lists journal sequence numbers
    whose append is torn mid-record.  Both force deterministic deaths
    for kill-anywhere resume tests, alongside the corresponding
    ``crash_rate`` / ``torn_write_rate`` probabilistic draws.
    """

    def __init__(self, loss_rate=0.0, burst_share=0.0, burst_loss_rate=0.0,
                 rate_limit_share=0.0, rate_limit_step=0,
                 truncation_rate=0.0, tcp_hang_rate=0.0,
                 tcp_stall_seconds=30.0, flap_share=0.0, flap_period=4,
                 flap_duty=0.25, worker_death_rate=0.0, kill_shards=None,
                 crash_rate=0.0, torn_write_rate=0.0, crash_points=(),
                 torn_points=()):
        self.loss_rate = loss_rate
        # Spatial burst windows: a share of /16-sized destination windows
        # suffers elevated loss for the whole scan epoch (lightning-storm
        # loss localized in address space, since the simulated clock is
        # frozen within one scan).
        self.burst_share = burst_share
        self.burst_loss_rate = burst_loss_rate
        # ICMP-style rate limiting: a share of destinations drop every
        # send on a flow beyond the first ``rate_limit_step`` occurrences
        # within one scan epoch — retransmissions hit this first.
        self.rate_limit_share = rate_limit_share
        self.rate_limit_step = rate_limit_step
        self.truncation_rate = truncation_rate
        # Hung TCP connects: a share of connection attempts stall for
        # ``tcp_stall_seconds`` of simulated time before completing.
        self.tcp_hang_rate = tcp_hang_rate
        self.tcp_stall_seconds = tcp_stall_seconds
        # Resolver flapping: a share of resolvers cycle through offline
        # episodes, ``flap_duty`` of every ``flap_period`` weeks, with a
        # per-resolver phase so episodes do not synchronise.
        self.flap_share = flap_share
        self.flap_period = flap_period
        self.flap_duty = flap_duty
        self.worker_death_rate = worker_death_rate
        self.kill_shards = dict(kill_shards or {})
        self.crash_rate = crash_rate
        self.torn_write_rate = torn_write_rate
        self.crash_points = tuple(crash_points)
        self.torn_points = tuple(int(seq) for seq in torn_points)

    def replace(self, **overrides):
        """A copy of this profile with the given fields replaced."""
        fields = {name: getattr(self, name) for name in _PROFILE_FIELDS}
        fields["kill_shards"] = dict(self.kill_shards)
        fields["crash_points"] = self.crash_points
        fields["torn_points"] = self.torn_points
        fields.update(overrides)
        return FaultProfile(**fields)

    def __repr__(self):
        active = ["%s=%r" % (name, getattr(self, name))
                  for name in _PROFILE_FIELDS
                  if getattr(self, name) not in (0, 0.0)]
        if self.kill_shards:
            active.append("kill_shards=%r" % self.kill_shards)
        if self.crash_points:
            active.append("crash_points=%r" % (self.crash_points,))
        if self.torn_points:
            active.append("torn_points=%r" % (self.torn_points,))
        return "FaultProfile(%s)" % ", ".join(active)


PROFILES = {
    "none": FaultProfile(),
    "mild": FaultProfile(
        loss_rate=0.01, burst_share=0.05, burst_loss_rate=0.30,
        rate_limit_share=0.05, rate_limit_step=2,
        truncation_rate=0.005, tcp_hang_rate=0.02,
        flap_share=0.02),
    "aggressive": FaultProfile(
        loss_rate=0.10, burst_share=0.15, burst_loss_rate=0.60,
        rate_limit_share=0.20, rate_limit_step=1,
        truncation_rate=0.03, tcp_hang_rate=0.10,
        flap_share=0.08, flap_period=3, flap_duty=0.34),
}


def parse_fault_spec(spec):
    """Parse a ``--faults`` CLI spec into a :class:`FaultProfile`.

    Grammar: ``[profile][,key=value]...`` — a base profile name
    (default ``mild``) followed by field overrides, e.g.
    ``aggressive,loss_rate=0.2,kill=0:2,kill=1``.  ``kill=N[:M]`` adds a
    forced worker death entry (shard ``N`` dies ``M`` times, default 1).
    ``crash=POINT`` adds a forced checkpoint-boundary crash (e.g.
    ``crash=week:3``, using ``/`` for key separators: ``crash=week:3/scan``)
    and ``torn=SEQ`` adds a forced torn journal append at that sequence
    number; both fire only on their first arrival so a resumed run
    proceeds past them.
    """
    profile = None
    overrides = {}
    kills = {}
    crash_points = []
    torn_points = []
    for token in str(spec).split(","):
        token = token.strip()
        if not token:
            continue
        if "=" not in token:
            if profile is not None:
                raise ValueError("duplicate profile name %r in fault "
                                 "spec %r" % (token, spec))
            try:
                profile = PROFILES[token]
            except KeyError:
                raise ValueError(
                    "unknown fault profile %r (choose from: %s)"
                    % (token, ", ".join(sorted(PROFILES))))
            continue
        key, __, raw = token.partition("=")
        key = key.strip()
        raw = raw.strip()
        if key == "kill":
            shard, __, times = raw.partition(":")
            kills[int(shard)] = int(times) if times else 1
            continue
        if key == "crash":
            crash_points.append(raw)
            continue
        if key == "torn":
            torn_points.append(int(raw))
            continue
        if key not in _PROFILE_FIELDS:
            raise ValueError("unknown fault field %r (choose from: %s)"
                             % (key, ", ".join(_PROFILE_FIELDS)))
        value = float(raw)
        if key in ("rate_limit_step", "flap_period"):
            value = int(value)
        overrides[key] = value
    if profile is None:
        profile = PROFILES["mild"]
    if kills:
        merged = dict(profile.kill_shards)
        merged.update(kills)
        overrides["kill_shards"] = merged
    if crash_points:
        overrides["crash_points"] = \
            profile.crash_points + tuple(crash_points)
    if torn_points:
        overrides["torn_points"] = \
            profile.torn_points + tuple(torn_points)
    return profile.replace(**overrides) if overrides else profile


class FaultPlan:
    """A profile bound to a seed: the pure fault-draw functions.

    Every method is a pure function of its arguments and the plan seed —
    no internal state, no sequential RNG — so any caller (a forked scan
    worker, a retried shard, a rerun) observes identical faults.
    """

    def __init__(self, profile, seed=0):
        if isinstance(profile, str):
            profile = PROFILES[profile]
        self.profile = profile
        self.seed = seed
        self._seed_high = (_mix64(seed ^ 0xFA017) << 1) & _M64

    # -- draw primitives --------------------------------------------------

    def _chance(self, salt, key, occurrence, rate):
        if rate <= 0.0:
            return False
        draw = _mix64(self._seed_high ^ (salt << 56) ^ (key & _M64)
                      ^ _mix64(occurrence + 1))
        return draw < rate * (_M64 + 1)

    # -- UDP query plane --------------------------------------------------

    def query_fate(self, flow_key, dst_int, occurrence, now):
        """The injected fate of one UDP query send, or ``None``.

        ``flow_key`` is the network's unsalted flow hash; ``occurrence``
        counts sends of this flow within the current scan epoch (a
        retransmission is a fresh occurrence and gets a fresh draw).
        Returns a counter-name suffix: ``"injected_loss"``,
        ``"burst_loss"``, or ``"rate_limited"``.
        """
        profile = self.profile
        if profile.rate_limit_share > 0.0 and \
                occurrence > profile.rate_limit_step and \
                self._chance(_SALT_RATE_LIMIT, dst_int, 0,
                             profile.rate_limit_share):
            return "rate_limited"
        if profile.burst_share > 0.0:
            # Burst windows are keyed spatially (per destination /16) and
            # per epoch: the clock is constant within one scan, so a
            # "burst" manifests as elevated loss over an address window.
            window = (dst_int >> 16) ^ (int(now) << 20)
            if self._chance(_SALT_BURST_WINDOW, window, 0,
                            profile.burst_share) and \
                    self._chance(_SALT_BURST_LOSS, flow_key, occurrence,
                                 profile.burst_loss_rate):
                return "burst_loss"
        if self._chance(_SALT_EXTRA_LOSS, flow_key, occurrence,
                        profile.loss_rate):
            return "injected_loss"
        return None

    # -- UDP response plane -----------------------------------------------

    def truncates_response(self, flow_key, occurrence):
        """Whether one delivered response arrives truncated (unparseable)."""
        return self._chance(_SALT_TRUNCATION, flow_key, occurrence,
                            self.profile.truncation_rate)

    # -- TCP plane --------------------------------------------------------

    def tcp_stall_seconds(self, flow_key, occurrence):
        """Simulated stall before one TCP connect completes (0.0 = none)."""
        if self._chance(_SALT_TCP_HANG, flow_key, occurrence,
                        self.profile.tcp_hang_rate):
            return self.profile.tcp_stall_seconds
        return 0.0

    # -- resolver plane ---------------------------------------------------

    def resolver_offline(self, ip_int, now):
        """Whether a flapping resolver is in an offline episode at ``now``.

        A ``flap_share`` subset of resolvers (hash-selected, stable for
        the campaign) cycles offline ``flap_duty`` of every
        ``flap_period`` weeks, phase-shifted per resolver.  The simulated
        clock is frozen within one scan, so episodes toggle between
        weekly scans — the mid-campaign flapping the paper's churn
        analysis must survive.
        """
        profile = self.profile
        if profile.flap_share <= 0.0 or profile.flap_period <= 0:
            return False
        if not self._chance(_SALT_FLAP, ip_int, 0, profile.flap_share):
            return False
        phase = _mix64(self._seed_high ^ (_SALT_FLAP << 48) ^ ip_int) \
            % profile.flap_period
        week = int(now // _WEEK)
        position = (week + phase) % profile.flap_period
        return position < profile.flap_period * profile.flap_duty

    # -- worker plane -----------------------------------------------------

    def worker_dies(self, shard_index, attempt):
        """Whether the scan worker for (shard, attempt) is killed.

        Forced deaths (``kill_shards``) take priority; otherwise a
        ``worker_death_rate`` draw keyed on (shard, attempt) applies.
        """
        forced = self.profile.kill_shards.get(shard_index, 0)
        if attempt < forced:
            return True
        return self._chance(_SALT_WORKER_DEATH,
                            (shard_index << 20) ^ attempt, 0,
                            self.profile.worker_death_rate)

    # -- crash plane (checkpoint boundaries) ------------------------------

    @staticmethod
    def crash_point(kind, key):
        """Canonical name of one checkpoint boundary: ``kind:a/b/c``."""
        return "%s:%s" % (kind, "/".join(str(part) for part in key))

    def crashes(self, kind, key, occurrence=0):
        """Whether the process dies at this checkpoint boundary.

        Forced ``crash_points`` fire on the boundary's first arrival
        only (``occurrence`` counts prior crashes journaled at this
        point), so resumes proceed; probabilistic ``crash_rate`` draws
        are keyed on (point, occurrence) and likewise move on.
        """
        point = self.crash_point(kind, key)
        if occurrence == 0 and point in self.profile.crash_points:
            return True
        return self._chance(_SALT_CRASH,
                            zlib.crc32(point.encode("utf-8")),
                            occurrence, self.profile.crash_rate)

    def torn_write(self, seq, epoch=0):
        """Whether the journal append for record ``seq`` is torn.

        ``epoch`` counts prior quarantined spans in the checkpoint
        directory, so a forced ``torn_points`` entry (or a rate draw on
        the same sequence number) does not re-tear after resume.
        """
        if epoch == 0 and seq in self.profile.torn_points:
            return True
        return self._chance(_SALT_TORN, seq, epoch,
                            self.profile.torn_write_rate)

    def __repr__(self):
        return "FaultPlan(seed=%d, %r)" % (self.seed, self.profile)
