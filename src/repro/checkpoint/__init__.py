"""Crash-safe checkpointing: write-ahead journal, atomic snapshots, resume.

See :mod:`repro.checkpoint.run` for the supervisor that ties the pieces
together, and ``DESIGN.md`` ("Durability & resume") for the invariants.
"""

from repro.checkpoint.feed import CheckpointFeed, scan_journal
from repro.checkpoint.journal import Journal, JournalReplay
from repro.checkpoint.run import CheckpointedRun, CheckpointScope
from repro.checkpoint.state import (
    NET_COUNTERS,
    capture_dns_caches,
    capture_world_state,
    churn_digest,
    restore_dns_caches,
    restore_world_state,
)
from repro.checkpoint.store import (
    CheckpointError,
    SnapshotCorruption,
    SnapshotStore,
    atomic_write_bytes,
    atomic_write_text,
    decode_snapshot,
    encode_snapshot,
    key_filename,
)

__all__ = [
    "CheckpointError",
    "CheckpointFeed",
    "CheckpointScope",
    "CheckpointedRun",
    "Journal",
    "JournalReplay",
    "NET_COUNTERS",
    "SnapshotCorruption",
    "SnapshotStore",
    "atomic_write_bytes",
    "atomic_write_text",
    "capture_dns_caches",
    "capture_world_state",
    "churn_digest",
    "restore_dns_caches",
    "decode_snapshot",
    "encode_snapshot",
    "key_filename",
    "restore_world_state",
    "scan_journal",
]
