"""The checkpoint supervisor: journal + snapshot store + resume logic.

A :class:`CheckpointedRun` owns one checkpoint directory::

    <dir>/meta.json        run identity (seed, scale, command, ...)
    <dir>/journal.wal      write-ahead journal of committed units
    <dir>/snapshots/       one checksummed snapshot per unit of work
    <dir>/.quarantine/     damaged journal spans / snapshot files
    <dir>/provenance.json  resume provenance (written on request)

Commit protocol for one unit of work (a campaign week, a pipeline
stage, a scan shard): write the snapshot atomically first, then append
a journal record naming it — so the journal never references a payload
that might not exist.  On open, the journal is replayed (torn tails and
corrupt records quarantined, never fatal) and the surviving commit
records define which units are already done; anything else reruns.

The fault plane hooks in at exactly two places: ``maybe_crash`` fires a
seed-keyed :class:`~repro.faults.InjectedCrash` at unit boundaries, and
``commit`` can be told by a ``torn_write`` draw to die mid-append —
leaving the torn journal tail the replay path must shrug off.  Crash
occurrences are themselves journaled (and torn-write occurrences are
implied by the quarantine count), so a resumed run does not re-fire the
same deterministic draw forever.
"""

import json
import os

from repro.checkpoint.journal import Journal
from repro.checkpoint.store import (
    CheckpointError,
    SnapshotCorruption,
    SnapshotStore,
    atomic_write_text,
)

_COMMIT = "commit"
_CRASH = "crash"


class CheckpointScope:
    """A key-prefixed view of a :class:`CheckpointedRun`.

    Lets nested machinery (the scan engine inside week 3, the pipeline
    for one domain set) address its units without knowing where in the
    campaign it is running.
    """

    __slots__ = ("run", "prefix")

    def __init__(self, run, prefix):
        self.run = run
        self.prefix = tuple(prefix)

    def scope(self, *parts):
        return CheckpointScope(self.run, self.prefix + parts)

    def completed(self, key):
        return self.run.completed(self.prefix + tuple(key))

    def restore(self, key):
        return self.run.restore(self.prefix + tuple(key))

    def commit(self, key, payload, state=None):
        return self.run.commit(self.prefix + tuple(key), payload,
                               state=state)

    def maybe_crash(self, kind, key):
        return self.run.maybe_crash(kind, self.prefix + tuple(key))

    def note(self, name, value):
        return self.run.note(name, value)


class CheckpointedRun:
    """Durable unit-of-work bookkeeping for one campaign/pipeline run."""

    def __init__(self, directory, meta=None, resume=False,
                 fault_plan=None, perf=None):
        self.directory = directory
        self.fault_plan = fault_plan
        self.perf = perf
        os.makedirs(directory, exist_ok=True)
        self.quarantine_dir = os.path.join(directory, ".quarantine")
        self._journal_path = os.path.join(directory, "journal.wal")
        self._meta_path = os.path.join(directory, "meta.json")
        self._quarantine_seq = self._existing_quarantine_count()
        self._snapshots_quarantined = 0
        self._units_restored = 0
        self._units_committed = 0
        self._notes = {}
        self._check_meta(meta, resume)
        self.store = SnapshotStore(os.path.join(directory, "snapshots"),
                                   perf=perf)
        self.journal = Journal(self._journal_path, perf=perf)
        replay = self.journal.replay(quarantine=self._quarantine_bytes)
        self._replay = replay
        # The torn-write draw's occurrence key: how many damaged spans
        # this directory has ever quarantined (including the one this
        # replay may just have set aside), so a forced torn append does
        # not re-tear the same record after resume.
        self._torn_epoch = self._quarantine_seq
        self._completed = {}
        self._crash_counts = {}
        for record in replay.records:
            kind = record.get("kind")
            if kind == _COMMIT:
                self._completed[tuple(record["key"])] = record
            elif kind == _CRASH:
                point = record.get("point")
                self._crash_counts[point] = \
                    self._crash_counts.get(point, 0) + 1

    # -- directory bookkeeping --------------------------------------------

    def _existing_quarantine_count(self):
        try:
            return len(os.listdir(self.quarantine_dir))
        except FileNotFoundError:
            return 0

    def _quarantine_bytes(self, raw, reason):
        os.makedirs(self.quarantine_dir, exist_ok=True)
        name = "%04d.%s.rec" % (self._quarantine_seq, reason)
        self._quarantine_seq += 1
        with open(os.path.join(self.quarantine_dir, name), "wb") as handle:
            handle.write(raw)
        if self.perf is not None:
            self.perf.count("checkpoint_quarantined_bytes", len(raw))

    def _quarantine_snapshot(self, key, reason):
        path = self.store.path_for(key)
        self._snapshots_quarantined += 1
        try:
            os.makedirs(self.quarantine_dir, exist_ok=True)
            os.replace(path, os.path.join(
                self.quarantine_dir,
                "%04d.%s.snap" % (self._quarantine_seq, reason)))
            self._quarantine_seq += 1
        except FileNotFoundError:
            pass

    def _check_meta(self, meta, resume):
        existing = None
        try:
            with open(self._meta_path, "r") as handle:
                existing = json.load(handle)
        except FileNotFoundError:
            pass
        except ValueError:
            raise CheckpointError("unreadable meta.json in %s"
                                  % self.directory)
        has_journal = os.path.exists(self._journal_path)
        if existing is None:
            if meta is not None:
                atomic_write_text(self._meta_path,
                                  json.dumps(meta, sort_keys=True,
                                             indent=1) + "\n")
            return
        if not resume and has_journal:
            raise CheckpointError(
                "checkpoint directory %s already holds a run; pass "
                "resume=True (--resume) to continue it" % self.directory)
        # Compare in JSON space: the stored meta went through a JSON
        # round-trip, so tuples in the caller's meta arrive as lists.
        if resume and meta is not None and \
                existing != json.loads(json.dumps(meta)):
            raise CheckpointError(
                "checkpoint meta mismatch: directory was written by %r "
                "but this run is %r" % (existing, meta))

    # -- unit-of-work API --------------------------------------------------

    def scope(self, *parts):
        return CheckpointScope(self, parts)

    def completed(self, key):
        return tuple(key) in self._completed

    def restore(self, key):
        """Load a committed unit; returns ``{"payload", "state"}`` or
        ``None`` (unit not committed, or its snapshot was damaged — in
        which case the snapshot is quarantined and the unit reruns)."""
        key = tuple(key)
        record = self._completed.get(key)
        if record is None:
            return None
        try:
            payload = self.store.load(key)
        except FileNotFoundError:
            self._quarantine_snapshot(key, "missing")
            del self._completed[key]
            return None
        except SnapshotCorruption:
            self._quarantine_snapshot(key, "corrupt")
            del self._completed[key]
            return None
        self._units_restored += 1
        if self.perf is not None:
            self.perf.count("checkpoint_units_restored")
        return {"payload": payload, "state": record.get("state")}

    def commit(self, key, payload, state=None):
        """Durably record one completed unit (snapshot, then journal)."""
        key = tuple(key)
        snapshot_name = self.store.save(key, payload)
        record = {"kind": _COMMIT, "key": key, "snapshot": snapshot_name,
                  "state": state}
        plan = self.fault_plan
        if plan is not None and plan.torn_write(self.journal.seq,
                                                self._torn_epoch):
            # The "process" dies while appending this record: flush a
            # partial frame, then crash.  On resume the torn tail is
            # quarantined and this unit reruns.
            self.journal.append_torn(record)
            from repro.faults import InjectedCrash
            raise InjectedCrash("torn_write", "journal record %d"
                                % self.journal.seq)
        self.journal.append(record)
        self._completed[key] = record
        self._units_committed += 1
        if self.perf is not None:
            self.perf.count("checkpoint_units_committed")
        return record

    def maybe_crash(self, kind, key):
        """Fire an injected whole-process crash at a unit boundary."""
        plan = self.fault_plan
        if plan is None:
            return
        point = plan.crash_point(kind, key)
        occurrence = self._crash_counts.get(point, 0)
        if not plan.crashes(kind, key, occurrence=occurrence):
            return
        # Journal the occurrence first so the resumed run's draw for
        # this point moves on instead of crash-looping forever.
        self.journal.append({"kind": _CRASH, "point": point})
        self._crash_counts[point] = occurrence + 1
        from repro.faults import InjectedCrash
        raise InjectedCrash(kind, point)

    def note(self, name, value):
        """Record a one-shot provenance fact (first write wins)."""
        self._notes.setdefault(name, value)

    # -- provenance --------------------------------------------------------

    @property
    def provenance(self):
        """Resume provenance for reporting: what replay found and did."""
        crashes = sum(self._crash_counts.values())
        provenance = {
            "resumed": self._replay.replayed > 0,
            "journal_records_replayed": self._replay.replayed,
            "journal_records_quarantined": self._replay.quarantined,
            "journal_torn_bytes": self._replay.torn_bytes,
            "snapshots_quarantined": self._snapshots_quarantined,
            "units_restored": self._units_restored,
            "units_committed": self._units_committed,
            "crashes_injected": crashes,
        }
        provenance.update(self._notes)
        return provenance

    def write_provenance(self):
        path = os.path.join(self.directory, "provenance.json")
        atomic_write_text(path, json.dumps(self.provenance, sort_keys=True,
                                           indent=1) + "\n")
        return path

    def close(self):
        self.journal.close()

    def __repr__(self):
        return "CheckpointedRun(%r, %d completed)" % (
            self.directory, len(self._completed))
