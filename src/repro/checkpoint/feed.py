"""Read-only checkpoint feed: tail a run's journal without owning it.

The observatory ingests completed units of work out of a campaign's
checkpoint directory while the campaign may still be running (or may
crash and resume).  The write side — :class:`repro.checkpoint.Journal`
— replays destructively: torn tails are truncated away and damaged
spans moved to the quarantine sidecar, which is correct for the process
that *owns* the directory and catastrophic for an observer peeking at a
live one.  :class:`CheckpointFeed` therefore re-walks the same framing
read-only: intact records are decoded in append order, damage is
*skipped* (counted, never moved or truncated), and every intact record
carries a sequence number so an incremental consumer can persist a
cursor and resume the tail later.

Only ``commit`` records reference snapshot payloads; :meth:`load`
fetches those through the same checksummed decoder the owning run uses,
without ever writing to the directory.
"""

import json
import os
import pickle
import zlib

from repro.checkpoint.journal import _HEADER_SIZE, _MAGIC, _MAX_RECORD
from repro.checkpoint.store import (
    SnapshotCorruption,
    decode_snapshot,
    key_filename,
)


def scan_journal(path, start=0):
    """Yield ``(seq, record)`` for every intact journal record.

    ``seq`` counts intact records from the start of the file (damaged
    spans do not advance it — the same numbering the owning journal's
    replay produces).  ``start`` skips records already consumed.  The
    file is opened read-only; torn tails and corrupt records are
    silently skipped, exactly the spans the owner will quarantine on
    its next resume.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return
    offset = 0
    seq = 0
    size = len(data)
    while offset < size:
        header = data[offset:offset + _HEADER_SIZE]
        if len(header) < _HEADER_SIZE or header[:2] != _MAGIC:
            break                      # torn tail / lost framing: stop
        length = int.from_bytes(header[2:6], "big")
        end = offset + _HEADER_SIZE + length
        if length > _MAX_RECORD or end > size:
            break                      # bad length / torn tail
        payload = data[offset + _HEADER_SIZE:end]
        offset = end
        if zlib.crc32(payload) != int.from_bytes(header[6:10], "big"):
            continue                   # corrupt record: owner quarantines
        try:
            record = pickle.loads(payload)
        except Exception:
            continue
        if seq >= start:
            yield seq, record
        seq += 1


class CheckpointFeed:
    """One checkpoint directory, viewed as an ingestible record stream."""

    def __init__(self, directory):
        self.directory = directory
        self._journal_path = os.path.join(directory, "journal.wal")
        self._snapshot_dir = os.path.join(directory, "snapshots")
        self.meta = self._read_meta()

    def _read_meta(self):
        try:
            with open(os.path.join(self.directory, "meta.json")) as handle:
                return json.load(handle)
        except (FileNotFoundError, ValueError):
            return {}

    def identity(self):
        """A stable identity for cursor bookkeeping.

        Derived from the run's meta (command, seed, scale, ...), not the
        directory path: a crashed run resumed in the same directory —
        or re-ingested from a copied one — is the *same* feed, and its
        already-consumed prefix must not be folded twice.
        """
        canonical = json.dumps(self.meta, sort_keys=True)
        return "feed-%08x" % zlib.crc32(canonical.encode("utf-8"))

    def records(self, start=0):
        """Intact journal records from sequence ``start`` on."""
        return scan_journal(self._journal_path, start=start)

    def commits(self, start=0):
        """Yield ``(seq, key_tuple, record)`` for commit records only."""
        for seq, record in self.records(start=start):
            if isinstance(record, dict) and record.get("kind") == "commit":
                yield seq, tuple(record["key"]), record

    def record_count(self):
        """Total intact records currently in the journal (for lag)."""
        count = 0
        for count, __ in enumerate(self.records(), 1):
            pass
        return count

    def load(self, key):
        """Load one committed unit's snapshot payload, read-only.

        Raises ``FileNotFoundError`` / :class:`SnapshotCorruption` like
        the owning store would; the caller decides whether a damaged
        unit is skippable (the owner will quarantine and recompute it).
        """
        path = os.path.join(self._snapshot_dir, key_filename(tuple(key)))
        with open(path, "rb") as handle:
            return decode_snapshot(handle.read())

    def load_or_none(self, key):
        try:
            return self.load(key)
        except (FileNotFoundError, SnapshotCorruption):
            return None

    def __repr__(self):
        return "CheckpointFeed(%r)" % self.directory
