"""Write-ahead journal: the ordered, durable record of completed work.

Record framing is ``magic(2) + length(4, big-endian) + crc32(4) +
payload`` with pickled payloads.  Appends flush and ``fsync`` before
returning, so a record that :meth:`Journal.append` acknowledged survives
any later crash.  Replay tolerates exactly the damage a crash can
inflict:

* a **torn tail** — the process died mid-append, leaving a partial
  record at the end — is quarantined and truncated away, so the journal
  is again append-clean and the interrupted unit of work simply reruns;
* a **corrupt record** (checksum or pickle failure with intact framing)
  is quarantined and skipped, never aborting the replay;
* **lost framing** (a record whose claimed length runs past other
  records' magic, or garbage where magic should be) quarantines the
  remainder of the file — everything before the damage still counts.

Quarantined bytes go to numbered files in a sidecar directory rather
than being deleted: corrupt measurement state is still evidence.
"""

import os
import pickle
import zlib

_MAGIC = b"\xc4W"
_HEADER_SIZE = 2 + 4 + 4
# Upper bound on a sane record: anything larger is treated as framing
# damage (a corrupted length field), not a real record.
_MAX_RECORD = 1 << 28


class JournalReplay:
    """Outcome of replaying one journal file."""

    def __init__(self):
        self.records = []           # decoded payloads, in append order
        self.replayed = 0           # records successfully decoded
        self.quarantined = 0        # damaged records/tails set aside
        self.torn_bytes = 0         # bytes truncated from the tail

    def __repr__(self):
        return "JournalReplay(%d replayed, %d quarantined)" % (
            self.replayed, self.quarantined)


class Journal:
    """An append-only record stream with checksummed, torn-safe replay."""

    def __init__(self, path, perf=None):
        self.path = path
        self.perf = perf
        self.seq = 0                # records appended or replayed so far
        self._handle = None

    def _count(self, name, amount=1):
        if self.perf is not None:
            self.perf.count(name, amount)

    # -- replay ------------------------------------------------------------

    def replay(self, quarantine=None):
        """Decode every intact record; returns a :class:`JournalReplay`.

        ``quarantine(raw_bytes, reason)`` receives each damaged span.
        After replay the file is truncated to the last intact record so
        subsequent appends start at a clean boundary.
        """
        replay = JournalReplay()
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            data = b""
        offset = 0
        truncate_at = None
        size = len(data)
        while offset < size:
            header = data[offset:offset + _HEADER_SIZE]
            if len(header) < _HEADER_SIZE or header[:2] != _MAGIC:
                reason = ("torn-tail" if len(header) < _HEADER_SIZE
                          else "lost-framing")
                self._quarantine(quarantine, data[offset:], reason, replay)
                truncate_at = offset
                break
            length = int.from_bytes(header[2:6], "big")
            end = offset + _HEADER_SIZE + length
            if length > _MAX_RECORD:
                self._quarantine(quarantine, data[offset:], "bad-length",
                                 replay)
                truncate_at = offset
                break
            if end > size:
                self._quarantine(quarantine, data[offset:], "torn-tail",
                                 replay)
                truncate_at = offset
                break
            payload = data[offset + _HEADER_SIZE:end]
            if zlib.crc32(payload) != int.from_bytes(header[6:10], "big"):
                self._quarantine(quarantine, data[offset:end],
                                 "crc-mismatch", replay)
                offset = end
                continue
            try:
                record = pickle.loads(payload)
            except Exception:
                self._quarantine(quarantine, data[offset:end],
                                 "unpicklable", replay)
                offset = end
                continue
            replay.records.append(record)
            replay.replayed += 1
            offset = end
        if truncate_at is not None:
            replay.torn_bytes = size - truncate_at
            with open(self.path, "r+b") as handle:
                handle.truncate(truncate_at)
                handle.flush()
                os.fsync(handle.fileno())
        self.seq = replay.replayed
        self._count("checkpoint_journal_records_replayed", replay.replayed)
        if replay.quarantined:
            self._count("checkpoint_journal_records_quarantined",
                        replay.quarantined)
        return replay

    def _quarantine(self, quarantine, raw, reason, replay):
        replay.quarantined += 1
        if quarantine is not None and raw:
            quarantine(raw, reason)

    # -- append ------------------------------------------------------------

    def _encode(self, payload_obj):
        payload = pickle.dumps(payload_obj,
                               protocol=pickle.HIGHEST_PROTOCOL)
        if len(payload) > _MAX_RECORD:
            raise ValueError("journal record too large (%d bytes)"
                             % len(payload))
        return (_MAGIC + len(payload).to_bytes(4, "big")
                + zlib.crc32(payload).to_bytes(4, "big") + payload)

    def _ensure_open(self):
        if self._handle is None:
            self._handle = open(self.path, "ab")
        return self._handle

    def append(self, payload_obj):
        """Durably append one record; returns its sequence number."""
        record = self._encode(payload_obj)
        handle = self._ensure_open()
        handle.write(record)
        handle.flush()
        os.fsync(handle.fileno())
        seq = self.seq
        self.seq += 1
        self._count("checkpoint_journal_appends")
        self._count("checkpoint_journal_fsyncs")
        self._count("checkpoint_journal_bytes", len(record))
        return seq

    def append_torn(self, payload_obj, keep_fraction=0.5):
        """Simulate a crash mid-append: write only a prefix of the record.

        Used by the fault plane's ``torn_write`` draw.  The partial
        record is flushed (it *did* reach the disk before the "crash"),
        leaving exactly the torn tail :meth:`replay` must absorb.
        """
        record = self._encode(payload_obj)
        cut = max(1, min(len(record) - 1,
                         int(len(record) * keep_fraction)))
        handle = self._ensure_open()
        handle.write(record[:cut])
        handle.flush()
        os.fsync(handle.fileno())
        self._count("checkpoint_journal_torn_writes")

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None
