"""World-state capture and restore for bit-identical resume.

A resumed run rebuilds the simulated world from its seed, replays
completed units of work from the checkpoint, and *fast-forwards* the
deterministic state machines (churn, clock) instead of re-scanning.
What cannot be replayed by construction — the simulated clock, the
network's cumulative traffic and fault counters, the perf registry — is
captured alongside every committed unit and restored verbatim, so the
continuation is indistinguishable from an uninterrupted run.

The churn model is never serialized: its RNG draws happen only during
world construction and ``step()``, both of which the resumed process
re-executes identically.  Instead a digest of its observable state is
recorded so resume can *prove* the fast-forward converged on the same
world, refusing to continue from a diverged one.
"""

import hashlib

from repro.checkpoint.store import CheckpointError

# Cumulative network traffic counters (mirrors the scan engine's
# reconciliation list; restored absolutely, not as deltas).
NET_COUNTERS = ("udp_queries_sent", "udp_queries_lost",
                "udp_responses_corrupted")


def _dns_cache_sites(network):
    """Enumerate the world's DNS caches in a rebuild-stable order.

    Yields ``(key, holder)`` pairs: per-resolver :class:`DnsCache`
    instances (keyed by node IP) and the shared
    :class:`ResolutionService` backends the population points at
    (deduplicated by identity, keyed by discovery order — which is
    stable because a rebuilt world registers the same nodes).  Warm
    caches are real cross-unit state: an in-process scan that skips a
    restored week would otherwise re-walk the hierarchy for names the
    uninterrupted run had already cached, diverging the traffic counts.
    """
    nodes = getattr(network, "_nodes", None)
    if not nodes:
        return
    seen_services = set()
    service_index = 0
    for ip in sorted(nodes):
        node = nodes[ip]
        cache = getattr(node, "cache", None)
        if cache is not None and hasattr(cache, "_entries"):
            yield ("node", ip), cache
        service = getattr(node, "service", None)
        if service is not None and hasattr(service, "_suffix_cache") \
                and id(service) not in seen_services:
            seen_services.add(id(service))
            yield ("service", service_index), service
            service_index += 1


def capture_dns_caches(network):
    """Snapshot every resolver/service DNS cache in the world."""
    captured = {}
    for key, holder in _dns_cache_sites(network):
        if key[0] == "node":
            captured[key] = {"entries": dict(holder._entries),
                             "hits": holder.hits,
                             "misses": holder.misses}
        else:
            # The trusted resolver's txid is sequential state too: it
            # picks the source port of every hierarchy query, which keys
            # the per-flow packet-fate draws downstream.
            trusted = getattr(holder, "_trusted", None)
            captured[key] = {"names": dict(holder._cache),
                             "suffixes": dict(holder._suffix_cache),
                             "full_resolutions": holder.full_resolutions,
                             "trusted_txid": getattr(trusted, "_txid",
                                                     None)}
    return captured


def restore_dns_caches(network, captured):
    """Install captured cache contents into a freshly rebuilt world."""
    if not captured:
        return
    for key, holder in _dns_cache_sites(network):
        state = captured.get(key)
        if state is None:
            continue
        if key[0] == "node":
            holder._entries.clear()
            holder._entries.update(state["entries"])
            holder.hits = state["hits"]
            holder.misses = state["misses"]
        else:
            holder._cache.clear()
            holder._cache.update(state["names"])
            holder._suffix_cache.clear()
            holder._suffix_cache.update(state["suffixes"])
            holder.full_resolutions = state["full_resolutions"]
            trusted = getattr(holder, "_trusted", None)
            if trusted is not None and state.get("trusted_txid") is not None:
                trusted._txid = state["trusted_txid"]


def capture_world_state(network, perf=None):
    """Snapshot the cross-unit mutable state at a commit boundary."""
    state = {
        "clock": network.clock.now,
        "net_counters": {name: getattr(network, name, 0)
                         for name in NET_COUNTERS},
        "fault_counters": dict(getattr(network, "fault_counters", None)
                               or {}),
        # Per-flow occurrence counters: packet-fate draws are keyed by
        # (flow, occurrence), so a resumed run must continue from the
        # same occurrence numbers or every repeated send over a flow the
        # restored units already used would re-draw earlier fates.
        "flow_counts": dict(getattr(network, "_flow_counts", None) or {}),
        "flow_epoch": getattr(network, "_flow_epoch", None),
        "dns_caches": capture_dns_caches(network),
        "perf": perf.snapshot() if perf is not None else None,
    }
    tracer = getattr(network, "tracer", None)
    if tracer is not None:
        # Durable trace context: a resumed run adopts the interrupted
        # run's trace id (and continues its span sequence) so the
        # stitched trace reads as one campaign.
        state["trace"] = tracer.context()
    return state


def restore_world_state(network, perf, state):
    """Restore a captured snapshot into a freshly rebuilt world.

    The clock may only move forward: a recorded time behind the current
    simulated time means the checkpoint belongs to a different run
    shape, and continuing would silently diverge.
    """
    if state is None:
        return
    recorded = state.get("clock")
    if recorded is not None:
        if recorded < network.clock.now:
            raise CheckpointError(
                "checkpointed clock %.1f is behind the rebuilt world's "
                "%.1f; refusing to resume" % (recorded,
                                              network.clock.now))
        network.clock.now = float(recorded)
    for name, value in (state.get("net_counters") or {}).items():
        setattr(network, name, value)
    fault_counters = getattr(network, "fault_counters", None)
    if fault_counters is not None:
        recorded_faults = state.get("fault_counters")
        if recorded_faults is not None:
            fault_counters.clear()
            fault_counters.update(recorded_faults)
    flow_counts = getattr(network, "_flow_counts", None)
    if flow_counts is not None and state.get("flow_counts") is not None:
        flow_counts.clear()
        flow_counts.update(state["flow_counts"])
        if state.get("flow_epoch") is not None:
            network._flow_epoch = state["flow_epoch"]
    restore_dns_caches(network, state.get("dns_caches"))
    if perf is not None and state.get("perf") is not None:
        perf.restore(state["perf"])
    tracer = getattr(network, "tracer", None)
    if tracer is not None and state.get("trace") is not None:
        tracer.adopt(state["trace"])


def churn_digest(churn):
    """A stable fingerprint of the churn model's observable state.

    Folds in the RNG position, the rebind/offline tallies, and the
    per-host (address, online) assignment — everything a diverged
    fast-forward would perturb.
    """
    digest = hashlib.sha256()
    digest.update(repr(churn._rng.getstate()).encode("utf-8"))
    digest.update(("|%d|%d|" % (churn.rebind_count,
                                churn.offline_count)).encode("utf-8"))
    for host in churn.hosts():
        digest.update(("%s,%d;" % (host.node.ip,
                                   1 if host.online else 0))
                      .encode("utf-8"))
    return digest.hexdigest()[:24]
