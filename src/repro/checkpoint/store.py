"""Atomic snapshot store: crash-safe persistence of unit-of-work results.

Every snapshot is written with the classic durable-replace protocol —
serialize to a temporary file in the destination directory, flush,
``fsync``, then ``os.replace`` over the final name and ``fsync`` the
directory — so a reader never observes a half-written file: either the
old content survives the crash or the new content does, never a torn
mix.  Payloads are pickled behind a CRC32 header, so a snapshot damaged
at rest (bit rot, partial disk writes below the filesystem's guarantees)
is detected at load time and can be quarantined rather than silently
poisoning a resumed run.
"""

import os
import pickle
import re
import zlib

_SNAPSHOT_MAGIC = b"SN01"
_UNSAFE_KEY_CHARS = re.compile(r"[^A-Za-z0-9._-]")


class CheckpointError(RuntimeError):
    """A checkpoint directory cannot be used as requested."""


class SnapshotCorruption(CheckpointError):
    """A snapshot file failed its checksum or could not be decoded."""


def fsync_directory(path):
    """Flush directory metadata (the rename itself) to stable storage."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # platforms without directory fds (or vanished dir)
    try:
        os.fsync(fd)
    except OSError:
        pass  # some filesystems reject directory fsync; best effort
    finally:
        os.close(fd)


def atomic_write_bytes(path, data, durable=True):
    """Write ``data`` to ``path`` atomically (temp + fsync + replace)."""
    directory = os.path.dirname(os.path.abspath(path))
    temp_path = "%s.tmp.%d" % (path, os.getpid())
    with open(temp_path, "wb") as handle:
        handle.write(data)
        handle.flush()
        if durable:
            os.fsync(handle.fileno())
    os.replace(temp_path, path)
    if durable:
        fsync_directory(directory)


def atomic_write_text(path, text, durable=True):
    """Atomically write a text file (reports, provenance sidecars)."""
    atomic_write_bytes(path, text.encode("utf-8"), durable=durable)


def encode_snapshot(obj):
    """Serialize one payload: magic + CRC32 + pickle."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    crc = zlib.crc32(payload)
    return _SNAPSHOT_MAGIC + crc.to_bytes(4, "big") + payload


def decode_snapshot(data):
    """Inverse of :func:`encode_snapshot`; raises on any damage."""
    if len(data) < 8 or data[:4] != _SNAPSHOT_MAGIC:
        raise SnapshotCorruption("snapshot header missing or truncated")
    payload = data[8:]
    if zlib.crc32(payload) != int.from_bytes(data[4:8], "big"):
        raise SnapshotCorruption("snapshot checksum mismatch")
    try:
        return pickle.loads(payload)
    except Exception as error:
        raise SnapshotCorruption("snapshot unpicklable: %r" % error)


def key_filename(key):
    """A stable, filesystem-safe file name for a unit-of-work key.

    The readable part keeps humans oriented inside the snapshot
    directory; the CRC32 suffix keeps distinct keys distinct even after
    sanitization collapses unusual characters.
    """
    flat = "_".join(str(part) for part in key)
    safe = _UNSAFE_KEY_CHARS.sub("-", flat)[:120]
    return "%s.%08x.snap" % (safe, zlib.crc32(flat.encode("utf-8")))


class SnapshotStore:
    """A directory of atomically written, checksummed snapshots."""

    def __init__(self, directory, perf=None):
        self.directory = directory
        self.perf = perf
        os.makedirs(directory, exist_ok=True)

    def path_for(self, key):
        return os.path.join(self.directory, key_filename(key))

    def save(self, key, obj):
        """Persist one payload; returns its file name."""
        data = encode_snapshot(obj)
        atomic_write_bytes(self.path_for(key), data)
        if self.perf is not None:
            self.perf.count("checkpoint_snapshots_written")
            self.perf.count("checkpoint_snapshot_bytes", len(data))
        return key_filename(key)

    def load(self, key):
        """Load one payload; raises :class:`SnapshotCorruption` /
        ``FileNotFoundError`` so the caller can quarantine or recompute."""
        with open(self.path_for(key), "rb") as handle:
            data = handle.read()
        return decode_snapshot(data)

    def discard(self, key):
        try:
            os.remove(self.path_for(key))
        except FileNotFoundError:
            pass
