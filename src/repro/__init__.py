"""repro: a full reproduction of "Going Wild: Large-Scale
Classification of Open DNS Resolvers" (Kührer et al., IMC 2015).

The package pairs the paper's measurement and classification machinery
(:mod:`repro.scanner`, :mod:`repro.core`, :mod:`repro.analysis`) with a
complete simulated IPv4 Internet to run it against (:mod:`repro.netsim`,
:mod:`repro.inetmodel`, :mod:`repro.authdns`, :mod:`repro.websim`,
:mod:`repro.resolvers`).  :func:`repro.scenario.build_scenario` creates a
paper-calibrated world in one call; see the examples/ directory.
"""

from repro.scenario import Scenario, ScenarioConfig, build_scenario

__version__ = "1.0.0"

__all__ = ["Scenario", "ScenarioConfig", "build_scenario", "__version__"]
