"""Small shared utilities."""

import zlib


def stable_hash(*parts):
    """A process-independent hash of the given parts.

    Python's built-in ``hash`` is salted per interpreter run; simulation
    code that derives deterministic choices from names or addresses must
    use this instead so results are reproducible across runs.
    """
    text = "\x1f".join(str(part) for part in parts)
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


def weighted_choice(rng, weighted_items):
    """Pick from ``[(item, weight), ...]`` with the given RNG."""
    total = sum(weight for __, weight in weighted_items)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    point = rng.random() * total
    cumulative = 0.0
    for item, weight in weighted_items:
        cumulative += weight
        if point < cumulative:
            return item
    return weighted_items[-1][0]


def percentage(part, whole):
    """``part`` as a percentage of ``whole`` (0.0 when whole is zero)."""
    return 100.0 * part / whole if whole else 0.0
