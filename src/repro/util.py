"""Small shared utilities."""

import zlib


def stable_hash(*parts):
    """A process-independent hash of the given parts.

    Python's built-in ``hash`` is salted per interpreter run; simulation
    code that derives deterministic choices from names or addresses must
    use this instead so results are reproducible across runs.
    """
    text = "\x1f".join(str(part) for part in parts)
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


def weighted_choice(rng, weighted_items):
    """Pick from ``[(item, weight), ...]`` with the given RNG."""
    total = sum(weight for __, weight in weighted_items)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    point = rng.random() * total
    cumulative = 0.0
    for item, weight in weighted_items:
        cumulative += weight
        if point < cumulative:
            return item
    return weighted_items[-1][0]


def percentage(part, whole):
    """``part`` as a percentage of ``whole`` (0.0 when whole is zero)."""
    return 100.0 * part / whole if whole else 0.0


def apportion(total, weights, minimums=None):
    """Split integer ``total`` by ``weights`` with largest-remainder rounding.

    Returns a list of non-negative integers summing to ``total`` (before
    minimums), one per weight, using Hamilton's method: each share gets
    the floor of its exact quota, and the leftover units go to the
    largest fractional remainders (ties broken by position, so the split
    is deterministic).  Independent ``int(round(...))`` per share drifts
    from the total as quotas shrink; this never does.

    ``minimums`` (optional, same length) clamps each share from below
    *after* apportionment.  Clamping can push the sum above ``total`` —
    the same semantics as per-pool ``min_pool_count`` floors.
    """
    if total < 0:
        raise ValueError("total must be >= 0")
    weight_sum = sum(weights)
    if weight_sum <= 0:
        raise ValueError("weights must sum to a positive value")
    quotas = [total * weight / weight_sum for weight in weights]
    counts = [int(quota) for quota in quotas]
    leftover = total - sum(counts)
    order = sorted(range(len(weights)),
                   key=lambda i: (counts[i] - quotas[i], i))
    for i in order[:leftover]:
        counts[i] += 1
    if minimums is not None:
        counts = [max(minimum, count)
                  for minimum, count in zip(minimums, counts)]
    return counts
