"""Hardware device catalog and TCP service banners (Table 4).

Device fingerprinting (§2.4) grabs FTP/HTTP/HTTPS/SSH/Telnet banners and
matches them against manually compiled regular expressions.  Each profile
here carries the banners a device of that type exposes; the fingerprint
database in :mod:`repro.scanner.fingerprints` contains the matching
expressions.  Only 26.3% of resolvers exposed any TCP service — profiles
with no open ports model the remainder.
"""

# Hardware categories of Table 4.
HW_ROUTER = "Router"          # routers, modems, gateways
HW_EMBEDDED = "Embedded"      # embedded OSes/apps, converters, micro boards
HW_FIREWALL = "Firewall"
HW_CAMERA = "Camera"
HW_DVR = "DVR"
HW_NAS = "NAS"
HW_DSLAM = "DSLAM"
HW_SERVER = "Server"
HW_OTHER = "Others"
HW_UNKNOWN = "Unknown"

# Operating systems of Table 4.
OS_LINUX = "Linux"
OS_ZYNOS = "ZyNOS"
OS_UNIX = "Unix"
OS_WINDOWS = "Windows"
OS_SMARTWARE = "SmartWare"
OS_ROUTEROS = "RouterOS"
OS_CENTOS = "CentOS"
OS_OTHER = "Others"
OS_UNKNOWN = "Unknown"

FTP_PORT, SSH_PORT, TELNET_PORT, HTTP_PORT, HTTPS_PORT = 21, 22, 23, 80, 443


class DeviceProfile:
    """One device type: hardware category, OS, and its service banners."""

    def __init__(self, key, hardware, os, vendor=None, model=None,
                 banners=None, http_body=None):
        self.key = key
        self.hardware = hardware
        self.os = os
        self.vendor = vendor
        self.model = model
        self.banners = dict(banners or {})   # port -> banner text
        self.http_body = http_body           # body of the device's web UI

    @property
    def has_tcp_services(self):
        return bool(self.banners) or self.http_body is not None

    def open_ports(self):
        ports = set(self.banners)
        if self.http_body is not None:
            ports.add(HTTP_PORT)
        return frozenset(ports)

    def __repr__(self):
        return "DeviceProfile(%r, %s/%s)" % (self.key, self.hardware, self.os)


def _zyxel_router(model):
    return DeviceProfile(
        "zyxel-%s" % model.lower(), HW_ROUTER, OS_ZYNOS, "ZyXEL", model,
        banners={
            FTP_PORT: "220 FTP version 1.0 ready at ZyXEL %s" % model,
            TELNET_PORT: "ZyXEL %s\r\nPassword: " % model,
            HTTP_PORT: "HTTP/1.0 401 Unauthorized\r\nWWW-Authenticate: "
                       'Basic realm="%s"\r\nServer: ZyXEL-RomPager/6.10'
                       % model,
        },
        http_body='<html><title>.:: Welcome to the Web-Based Configurator'
                  '::.</title><body>ZyNOS Firmware Version: V3.40 | '
                  '%s</body></html>' % model)


def _tplink_router(model):
    return DeviceProfile(
        "tplink-%s" % model.lower(), HW_ROUTER, OS_LINUX, "TP-LINK", model,
        banners={
            HTTP_PORT: 'HTTP/1.1 401 N/A\r\nWWW-Authenticate: Basic '
                       'realm="TP-LINK Wireless Router %s"\r\n'
                       "Server: Router Webserver" % model,
            TELNET_PORT: "%s login: " % model,
        },
        http_body="<html><title>TP-LINK Wireless Router %s</title>"
                  "<body>Login</body></html>" % model)


DEVICE_CATALOG = {profile.key: profile for profile in (
    # -- consumer routing equipment (three prevalent manufacturers) -------
    _zyxel_router("P-660HN-T1A"),
    _zyxel_router("P-2602HW"),
    _zyxel_router("AMG1302"),
    _tplink_router("TL-WR841N"),
    _tplink_router("TL-WR740N"),
    DeviceProfile(
        "dlink-dsl2640", HW_ROUTER, OS_LINUX, "D-Link", "DSL-2640B",
        banners={
            HTTP_PORT: 'HTTP/1.0 401 Unauthorized\r\nWWW-Authenticate: '
                       'Basic realm="DSL-2640B"\r\nServer: micro_httpd',
            TELNET_PORT: "BCM96338 ADSL Router\r\nLogin: ",
        }),
    DeviceProfile(
        "mikrotik-rb750", HW_ROUTER, OS_ROUTEROS, "MikroTik", "RB750",
        banners={
            FTP_PORT: "220 MikroTik FTP server (MikroTik 5.25) ready",
            SSH_PORT: "SSH-2.0-ROSSSH",
            TELNET_PORT: "MikroTik v5.25\r\nLogin: ",
        }),
    DeviceProfile(
        "draytek-vigor", HW_ROUTER, OS_OTHER, "DrayTek", "Vigor2830",
        banners={
            HTTP_PORT: "HTTP/1.1 401 Unauthorized\r\nServer: DrayTek/Vigor",
            TELNET_PORT: "Vigor login: ",
        }),
    DeviceProfile(
        "cisco-877", HW_ROUTER, OS_OTHER, "Cisco", "877",
        banners={
            TELNET_PORT: "User Access Verification\r\nPassword: ",
            SSH_PORT: "SSH-1.99-Cisco-1.25",
        }),
    DeviceProfile(
        "netgear-dg834", HW_ROUTER, OS_LINUX, "NETGEAR", "DG834G",
        banners={
            HTTP_PORT: 'HTTP/1.0 401 Unauthorized\r\nWWW-Authenticate: '
                       'Basic realm="NETGEAR DG834G"',
            TELNET_PORT: "DG834G login: ",
        }),
    # -- embedded -----------------------------------------------------------
    DeviceProfile(
        "goahead-generic", HW_EMBEDDED, OS_OTHER, None, None,
        banners={HTTP_PORT: "HTTP/1.0 200 OK\r\nServer: GoAhead-Webs"}),
    DeviceProfile(
        "rompager-generic", HW_EMBEDDED, OS_OTHER, None, None,
        banners={HTTP_PORT: "HTTP/1.1 200 OK\r\nServer: RomPager/4.07 "
                            "UPnP/1.0"}),
    DeviceProfile(
        "embedded-busybox", HW_EMBEDDED, OS_LINUX, None, None,
        banners={TELNET_PORT: "BusyBox v1.19.4 (2013-11-01) built-in "
                              "shell (ash)\r\n# "}),
    DeviceProfile(
        "lantronix-serial", HW_EMBEDDED, OS_OTHER, "Lantronix", "UDS1100",
        banners={TELNET_PORT: "Lantronix UDS1100\r\nMAC address "
                              "00204A000000\r\nPress Enter for Setup Mode"}),
    DeviceProfile(
        "raspberrypi", HW_EMBEDDED, OS_LINUX, "Raspberry Pi", None,
        banners={SSH_PORT: "SSH-2.0-OpenSSH_6.0p1 Debian-4+deb7u2",
                 FTP_PORT: "220 (vsFTPd 2.3.5) raspberrypi"}),
    DeviceProfile(
        "arduino-eth", HW_EMBEDDED, OS_OTHER, "Arduino", None,
        banners={HTTP_PORT: "HTTP/1.1 200 OK\r\nServer: Arduino/1.0"}),
    # -- firewalls ----------------------------------------------------------
    DeviceProfile(
        "fortigate-60", HW_FIREWALL, OS_OTHER, "Fortinet", "FortiGate-60C",
        banners={SSH_PORT: "SSH-2.0-FortiSSH_2.0",
                 HTTP_PORT: "HTTP/1.1 401 Unauthorized\r\nServer: "
                            "xxxxxxxx-xxxxx\r\nSet-Cookie: FGTServer="}),
    DeviceProfile(
        "sonicwall-tz", HW_FIREWALL, OS_OTHER, "SonicWall", "TZ210",
        banners={HTTP_PORT: "HTTP/1.0 302 Found\r\nServer: SonicWALL"}),
    # -- cameras and DVRs ----------------------------------------------------
    DeviceProfile(
        "ipcam-netwave", HW_CAMERA, OS_LINUX, "Netwave", "IP Camera",
        banners={HTTP_PORT: "HTTP/1.1 200 OK\r\nServer: Netwave IP Camera"}),
    DeviceProfile(
        "ipcam-hikvision", HW_CAMERA, OS_LINUX, "Hikvision", "DS-2CD",
        banners={HTTP_PORT: 'HTTP/1.1 401 Unauthorized\r\nWWW-Authenticate:'
                            ' Basic realm="Hikvision DS-2CD"',
                 FTP_PORT: "220 Hikvision FTP Service"}),
    DeviceProfile(
        "dvr-dm500plus", HW_DVR, OS_LINUX, "Dream Multimedia", "DM500+",
        banners={TELNET_PORT: "dm500plus login: ",
                 FTP_PORT: "220 Welcome to the DM500+ FTP service"}),
    DeviceProfile(
        "dvr-generic", HW_DVR, OS_LINUX, None, "DVR",
        banners={HTTP_PORT: "HTTP/1.1 200 OK\r\nServer: DVRDVS-Webs"}),
    # -- NAS / DSLAM ---------------------------------------------------------
    DeviceProfile(
        "nas-synology", HW_NAS, OS_LINUX, "Synology", "DS213",
        banners={FTP_PORT: "220 Synology DS213 FTP server ready.",
                 SSH_PORT: "SSH-2.0-OpenSSH_5.8p1-hpn13v11"}),
    DeviceProfile(
        "nas-qnap", HW_NAS, OS_LINUX, "QNAP", "TS-219",
        banners={FTP_PORT: "220 NASFTPD Turbo station 1.3.4e Server "
                           "(ProFTPD)"}),
    DeviceProfile(
        "dslam-zhone", HW_DSLAM, OS_OTHER, "Zhone", "MALC",
        banners={TELNET_PORT: "Zhone MALC\r\nlogin: "}),
    # -- servers --------------------------------------------------------------
    DeviceProfile(
        "server-centos", HW_SERVER, OS_CENTOS, None, None,
        banners={SSH_PORT: "SSH-2.0-OpenSSH_5.3 CentOS-5.8",
                 HTTP_PORT: "HTTP/1.1 403 Forbidden\r\nServer: Apache/2.2.15"
                            " (CentOS)"}),
    DeviceProfile(
        "server-ubuntu", HW_SERVER, OS_LINUX, None, None,
        banners={SSH_PORT: "SSH-2.0-OpenSSH_5.9p1 Debian-5ubuntu1.4",
                 HTTP_PORT: "HTTP/1.1 200 OK\r\nServer: Apache/2.2.22 "
                            "(Ubuntu)"}),
    DeviceProfile(
        "server-freebsd", HW_SERVER, OS_UNIX, None, None,
        banners={SSH_PORT: "SSH-2.0-OpenSSH_5.8p2 FreeBSD-20110503",
                 FTP_PORT: "220 FreeBSD FTP server ready"}),
    DeviceProfile(
        "server-windows", HW_SERVER, OS_WINDOWS, "Microsoft", None,
        banners={HTTP_PORT: "HTTP/1.1 200 OK\r\nServer: Microsoft-IIS/7.5",
                 FTP_PORT: "220 Microsoft FTP Service"}),
    DeviceProfile(
        "smartware-gateway", HW_ROUTER, OS_SMARTWARE, "Patton",
        "SmartNode", banners={
            TELNET_PORT: "SmartWare R6.T 2012\r\nlogin: ",
            HTTP_PORT: "HTTP/1.1 200 OK\r\nServer: SmartWare httpd"}),
    # -- anonymous: TCP services whose banners carry no device identity
    # (the Unknown column of Table 4: 29.3% of TCP responders) ---------------
    DeviceProfile(
        "anon-ssh", HW_UNKNOWN, OS_UNKNOWN,
        banners={SSH_PORT: "SSH-2.0-OpenSSH_6.2"}),
    DeviceProfile(
        "anon-ftp", HW_UNKNOWN, OS_UNKNOWN,
        banners={FTP_PORT: "220 FTP server ready"}),
    DeviceProfile(
        "anon-web", HW_UNKNOWN, OS_UNKNOWN,
        banners={HTTP_PORT: "HTTP/1.1 200 OK\r\nServer: httpd"}),
    DeviceProfile(
        "anon-telnet", HW_UNKNOWN, OS_UNKNOWN,
        banners={TELNET_PORT: "login: "}),
    # -- silent: no TCP services at all (73.7% of resolvers) ------------------
    DeviceProfile("silent-cpe", HW_UNKNOWN, OS_UNKNOWN),
    DeviceProfile("silent-server", HW_UNKNOWN, OS_UNKNOWN),
)}

ANONYMOUS_PROFILE_KEYS = ("anon-ssh", "anon-ftp", "anon-web", "anon-telnet")

# Relative prevalence of device profiles *within* their hardware category,
# calibrated so the OS mix of Table 4 emerges (ZyNOS alone accounts for
# 16.6% of all TCP responders — roughly half the Router category — because
# ZyXEL CPE dominated consumer broadband deployments).
DEVICE_PREVALENCE = {
    "zyxel-p-660hn-t1a": 9.0,
    "zyxel-p-2602hw": 6.0,
    "zyxel-amg1302": 5.0,
    "tplink-tl-wr841n": 4.0,
    "tplink-tl-wr740n": 3.0,
    "dlink-dsl2640": 3.0,
    "mikrotik-rb750": 2.2,
    "netgear-dg834": 2.0,
    "smartware-gateway": 3.4,
    "draytek-vigor": 1.5,
    "cisco-877": 1.2,
    "goahead-generic": 5.5,
    "rompager-generic": 5.5,
    "embedded-busybox": 3.5,
    "raspberrypi": 2.0,
    "lantronix-serial": 1.0,
    "arduino-eth": 0.5,
    "server-ubuntu": 3.0,
    "server-centos": 2.5,
    "server-freebsd": 1.5,
    "server-windows": 2.0,
}


def prevalence_of(profile):
    """The relative in-category weight of a device profile."""
    return DEVICE_PREVALENCE.get(profile.key, 1.0)


def profiles_with_tcp():
    """All device profiles exposing at least one TCP service."""
    return [profile for profile in DEVICE_CATALOG.values()
            if profile.has_tcp_services]
