"""DNS server software catalog and CHAOS version-query behaviour (Table 3).

The CHAOS-class scan (§2.4) sends ``version.bind`` and ``version.server``
TXT queries.  The paper found 42.7% of responding resolvers replying with
error codes, 4.6% with NOERROR but no version, 18.8% with administrator-
hidden strings, and 33.9% leaking software/version — of which the Table 3
versions make up the top 10.  Each profile carries release/deprecation
dates and the CVE classes the paper lists.
"""

# How a resolver answers CHAOS version queries.
VERSION_RESPONSE_STYLES = (
    STYLE_VERSION, STYLE_ERROR, STYLE_NO_VERSION, STYLE_HIDDEN,
) = ("version", "error", "no_version", "hidden")


class SoftwareProfile:
    """One DNS server software version with its vulnerability notes."""

    def __init__(self, name, version, released, deprecated=None, cves=(),
                 version_string=None):
        self.name = name
        self.version = version
        self.released = released
        self.deprecated = deprecated
        self.cves = tuple(cves)
        self.version_string = version_string or "%s %s" % (name, version)

    @property
    def full_name(self):
        return "%s %s" % (self.name, self.version)

    def has_vulnerability(self, kind):
        return kind in self.cves

    def __repr__(self):
        return "SoftwareProfile(%r)" % self.full_name

    def __eq__(self, other):
        return (isinstance(other, SoftwareProfile)
                and other.full_name == self.full_name)

    def __hash__(self):
        return hash(self.full_name)


# Vulnerability classes named in Table 3.
VULN_IP_BYPASS = "IP Bypass"
VULN_DOS = "DoS"
VULN_MEM_CORRUPTION = "Mem. Corr./Leak."
VULN_MEM_OVERFLOW = "Mem. Overfl."
VULN_RCE = "RCE"

# Table 3: the top-10 versions among resolvers leaking version details,
# with their published shares of the version-leaking population.
SOFTWARE_CATALOG = (
    # (profile, share of version-leaking resolvers)
    (SoftwareProfile("BIND", "9.8.2", "2012-04", "2012-05",
                     (VULN_IP_BYPASS, VULN_DOS, VULN_MEM_CORRUPTION),
                     version_string="9.8.2rc1-RedHat-9.8.2-0.17.rc1.el6"),
     0.198),
    (SoftwareProfile("BIND", "9.3.6", "2008-11", None, (VULN_DOS,),
                     version_string="9.3.6-P1-RedHat-9.3.6-20.P1.el5"),
     0.089),
    (SoftwareProfile("BIND", "9.7.3", "2012-02", "2012-11",
                     (VULN_MEM_OVERFLOW, VULN_DOS),
                     version_string="9.7.3"), 0.057),
    (SoftwareProfile("BIND", "9.9.5", "2014-02", None, (VULN_DOS,),
                     version_string="9.9.5-3ubuntu0.1-Ubuntu"), 0.052),
    (SoftwareProfile("Unbound", "1.4.22", "2014-03", "2014-11",
                     (VULN_MEM_OVERFLOW, VULN_DOS),
                     version_string="unbound 1.4.22"), 0.048),
    (SoftwareProfile("Dnsmasq", "2.40", "2007-08", "2008-02",
                     (VULN_RCE, VULN_DOS),
                     version_string="dnsmasq-2.40"), 0.046),
    (SoftwareProfile("BIND", "9.8.4", "2012-10", "2013-05",
                     (VULN_IP_BYPASS, VULN_DOS),
                     version_string="9.8.4-rpz2+rl005.12-P1"), 0.039),
    (SoftwareProfile("PowerDNS", "3.5.3", "2013-09", "2014-06",
                     (VULN_MEM_OVERFLOW,),
                     version_string="PowerDNS Recursor 3.5.3"), 0.032),
    (SoftwareProfile("Dnsmasq", "2.52", "2010-01", "2010-06", (VULN_DOS,),
                     version_string="dnsmasq-2.52"), 0.029),
    (SoftwareProfile("MS DNS", "6.1.7601", "2011-06", "2011-08",
                     (VULN_DOS,),
                     version_string="Microsoft DNS 6.1.7601 (1DB15D39)"),
     0.025),
)

# A long tail of other version-leaking software fills the remainder:
# in the wild, hundreds of distinct versions share the ~38% outside the
# top ten, so no tail entry should rank anywhere near the Table-3 rows.
LONG_TAIL_SOFTWARE = tuple(
    [SoftwareProfile("BIND", version, "2008-01", None, (VULN_DOS,),
                     version_string=version)
     for version in ("9.4.2", "9.5.1", "9.6.1", "9.7.0", "9.8.1",
                     "9.9.2", "9.9.4", "9.10.0", "9.10.1", "9.3.4",
                     "9.2.4", "9.6.2")]
    + [SoftwareProfile("Unbound", version, "2013-01", None, (),
                       version_string="unbound %s" % version)
       for version in ("1.4.20", "1.4.21", "1.5.0", "1.5.1")]
    + [SoftwareProfile("Dnsmasq", version, "2012-01", None, (),
                       version_string="dnsmasq-%s" % version)
       for version in ("2.45", "2.55", "2.62", "2.71")]
    + [SoftwareProfile("PowerDNS", "3.6.2", "2014-10", None, (),
                       version_string="PowerDNS Recursor 3.6.2"),
       SoftwareProfile("PowerDNS", "3.3.1", "2013-01", None, (),
                       version_string="PowerDNS Recursor 3.3.1"),
       SoftwareProfile("MS DNS", "6.0.6002", "2009-04", None, (VULN_DOS,),
                       version_string="Microsoft DNS 6.0.6002 (17724655)"),
       SoftwareProfile("Nominum", "3.0.5", "2013-05", None, (),
                       version_string="Nominum Vantio 3.0.5")])

# Strings administrators configure to hide version information (the
# "arbitrary version strings" group, 18.8% of CHAOS responders).
HIDDEN_VERSION_STRINGS = (
    "none", "unknown", "Go away!", "sorry", "not available",
    "contact admin@localhost", "[secured]", "DNS", "n/a",
    "I am not telling you", "***", "no", "hidden", "private",
    "whydoyouask", "get lost",
)

# Population-level shares of CHAOS response styles (§2.4): two thirds of
# resolvers do not leak software details.
CHAOS_STYLE_SHARES = (
    (STYLE_ERROR, 0.427),
    (STYLE_NO_VERSION, 0.046),
    (STYLE_HIDDEN, 0.188),
    (STYLE_VERSION, 0.339),
)
