"""Resolver caches with TTL decay, and the client-activity model that
makes them snoopable.

Cache snooping (§2.6) sends non-recursive NS queries for 15 TLDs and
watches the returned TTLs over 36 hours: a TTL that counts down and then
reappears at full value means a real client re-triggered the lookup.  The
activity model gives each resolver a deterministic refresh pattern
(period + idle gap per TLD) so the prober observes exactly the behaviour
classes the paper reports — frequently used, in use, idle, static-TTL,
zero-TTL, TTL-resetting, empty-response, and single-response-then-silent.
"""


class DnsCache:
    """A TTL-decaying cache of resource record sets."""

    def __init__(self, max_entries=10000):
        self._entries = {}  # (name, qtype) -> (records, stored_at, ttl)
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def put(self, name, qtype, records, now, ttl=None):
        if ttl is None:
            ttls = [record.ttl for record in records]
            ttl = min(ttls) if ttls else 300
        key = (name.lower(), qtype)
        if key not in self._entries and \
                len(self._entries) >= self.max_entries:
            # Evict the entry closest to expiry — but only when the
            # insert would actually grow the cache; refreshing an
            # existing entry at capacity must not shrink the cache.
            victim = min(self._entries,
                         key=lambda k: self._entries[k][1]
                         + self._entries[k][2])
            del self._entries[victim]
        self._entries[key] = (list(records), now, ttl)

    def get(self, name, qtype, now):
        """Records with decayed TTLs, or ``None`` when absent/expired."""
        entry = self._entries.get((name.lower(), qtype))
        if entry is None:
            self.misses += 1
            return None
        records, stored_at, ttl = entry
        remaining = ttl - (now - stored_at)
        if remaining <= 0:
            del self._entries[(name.lower(), qtype)]
            self.misses += 1
            return None
        self.hits += 1
        return [record.with_ttl(int(remaining)) for record in records]

    def flush(self):
        self._entries.clear()

    def __len__(self):
        return len(self._entries)


class CacheActivityModel:
    """Deterministic client-driven cache behaviour for the snoopable TLDs.

    ``style`` selects the §2.6 behaviour class; for the ``normal`` style,
    each TLD has a refresh pattern: the NS record is cached for ``ttl``
    seconds, then the cache is empty for ``gap`` seconds until a client
    lookup re-adds it.  The observable TTL at time ``t`` is a pure function
    of ``t``, so no event queue is needed no matter how long the probe runs.
    """

    STYLE_NORMAL = "normal"                # TTL decays, client re-adds
    STYLE_IDLE = "idle"                    # cached once, never re-added
    STYLE_STATIC_TTL = "static_ttl"        # same TTL on every probe
    STYLE_ZERO_TTL = "zero_ttl"            # TTL always 0
    STYLE_RESETTING = "resetting"          # TTL resets before expiry
    STYLE_EMPTY = "empty"                  # empty responses instead of NS
    STYLE_SINGLE = "single"                # one response, then silence
    STYLE_UNREACHABLE = "unreachable"      # never answers (IP churned away)

    def __init__(self, style=STYLE_NORMAL, tld_patterns=None, ttl=172800):
        self.style = style
        self.ttl = ttl
        # tld -> (gap_seconds, phase_seconds); gap <= 5 means "frequent".
        self.tld_patterns = dict(tld_patterns or {})
        self._single_answered = set()

    def observable_ttl(self, tld, now):
        """The TTL a snooper sees for ``tld`` at ``now``.

        Returns ``None`` when the record is not in the cache (idle TLD or
        currently inside the refresh gap), or a special marker per style.
        """
        if self.style == self.STYLE_UNREACHABLE:
            return None
        if self.style == self.STYLE_EMPTY:
            return "empty"
        if self.style == self.STYLE_SINGLE:
            # One answer per TLD, then the host falls silent entirely
            # (presumably churned away, §2.6).
            if tld in self._single_answered:
                return "silent"
            self._single_answered.add(tld)
            return int(self.ttl)
        if self.style == self.STYLE_STATIC_TTL:
            return int(self.ttl)
        if self.style == self.STYLE_ZERO_TTL:
            return 0
        pattern = self.tld_patterns.get(tld)
        if pattern is None:
            return None  # this resolver's clients never query the TLD
        gap, phase = pattern
        if self.style == self.STYLE_RESETTING:
            # Reset well before expiry: observed TTL stays in the top
            # quarter of the range, never approaching zero.
            cycle = self.ttl / 4.0
            position = (now + phase) % cycle
            return int(self.ttl - position)
        if self.style == self.STYLE_IDLE:
            # Cached at t=-phase, decays once, never refreshed.
            remaining = self.ttl - (now + phase)
            return int(remaining) if remaining > 0 else None
        # Normal: decay for ttl seconds, gone for gap seconds, repeat.
        cycle = self.ttl + gap
        position = (now + phase) % cycle
        if position < self.ttl:
            return int(self.ttl - position)
        return None
