"""Resolver population generator.

Synthesises pools of open resolvers inside ISP prefixes with the
distributions the paper reports: response modes (NOERROR/REFUSED/SERVFAIL),
CHAOS version-response styles and software versions (Table 3), device
profiles and their TCP surface (Table 4), cache-activity styles (§2.6),
lease/churn characteristics (Figure 2), decline and growth schedules
(Figure 1, Tables 1/2), divergent answer sources (§2.2), and per-pool
manipulation behaviors supplied by the scenario (§4).
"""

import random
from array import array
from collections import OrderedDict

from repro.inetmodel.churn import LeasedHost
from repro.inetmodel.rdns import dynamic_pool_name, static_name
from repro.netsim.address import int_to_ip, ip_to_int
from repro.netsim.clock import DAY, WEEK
from repro.resolvers.behaviors import SelfIpBehavior
from repro.resolvers.cache import CacheActivityModel
from repro.resolvers.devices import DEVICE_CATALOG, profiles_with_tcp
from repro.resolvers.resolver import (
    MODE_NORMAL,
    MODE_REFUSED,
    MODE_SERVFAIL,
    ResolverNode,
)
from repro.resolvers.software import (
    CHAOS_STYLE_SHARES,
    LONG_TAIL_SOFTWARE,
    SOFTWARE_CATALOG,
    STYLE_VERSION,
)
from repro.util import weighted_choice

# Hardware-category weights among TCP-responding resolvers (Table 4).
_HARDWARE_WEIGHTS = {
    "Router": 34.1, "Embedded": 30.6, "Firewall": 1.9, "Camera": 1.8,
    "DVR": 1.2, "Others": 1.1, "Unknown": 29.3,
}

# §2.6 cache-activity style shares among snoop-responding resolvers.
_ACTIVITY_SHARES = (
    (CacheActivityModel.STYLE_EMPTY, 0.073),
    (CacheActivityModel.STYLE_SINGLE, 0.033),
    (CacheActivityModel.STYLE_STATIC_TTL, 0.020),
    (CacheActivityModel.STYLE_ZERO_TTL, 0.020),
    (CacheActivityModel.STYLE_RESETTING, 0.196),
    (CacheActivityModel.STYLE_NORMAL, 0.616),
    (CacheActivityModel.STYLE_IDLE, 0.042),
)
_SNOOP_UNREACHABLE_SHARE = 0.168
# Within in-use resolvers: share refreshed within <=5s of expiry (38.7 of
# 61.6 in-use).
_FREQUENT_WITHIN_IN_USE = 0.387 / 0.616


class ResolverSpec:
    """Distribution knobs for one resolver pool (usually one ISP)."""

    def __init__(self, autonomous_system, pool_prefix, count,
                 isp_domain=None,
                 refused_share=0.085, servfail_share=0.045,
                 day_lease_share=0.46, week_lease_share=0.10,
                 static_mean_weeks=19.0,
                 offline_fraction=0.0, offline_start_week=1,
                 offline_end_week=55,
                 growth_fraction=0.0,
                 divergent_source_share=0.03,
                 rdns_coverage=0.80, dynamic_token_share=0.62,
                 tcp_service_share=0.263,
                 behavior_factory=None,
                 gfw_immune_share=0.0,
                 forwarder_share=0.08):
        self.autonomous_system = autonomous_system
        self.pool_prefix = pool_prefix
        self.count = count
        self.isp_domain = isp_domain or "%s.example" % (
            autonomous_system.name.lower().replace(" ", "-"))
        self.refused_share = refused_share
        self.servfail_share = servfail_share
        self.day_lease_share = day_lease_share
        self.week_lease_share = week_lease_share
        self.static_mean_weeks = static_mean_weeks
        self.offline_fraction = offline_fraction
        self.offline_start_week = offline_start_week
        self.offline_end_week = offline_end_week
        self.growth_fraction = growth_fraction
        self.divergent_source_share = divergent_source_share
        self.rdns_coverage = rdns_coverage
        self.dynamic_token_share = dynamic_token_share
        self.tcp_service_share = tcp_service_share
        self.behavior_factory = behavior_factory
        self.gfw_immune_share = gfw_immune_share
        # Share of pool members that are dnsmasq-style DNS proxies
        # forwarding to the ISP's recursive resolver (§2.2 observed
        # 630k-750k such proxies per week).
        self.forwarder_share = forwarder_share

    @property
    def country(self):
        return self.autonomous_system.country


# Per-node scenario-relevant facts, precomputed during the lazy dry
# pass so scenario wiring (case-study selection, self-IP device pages)
# never has to materialize a node just to inspect it.
FLAG_PLAIN_NORMAL = 0x01   # normal mode, no forwarder, no behaviors
FLAG_SELF_IP = 0x02        # carries a SelfIpBehavior
FLAG_DEVICE_HTTP = 0x04    # device profile already serves an HTTP body

# Sentinel: "_synthesize should really allocate the divergent source
# address from the churn model" (the dry pass / eager build).  A replay
# passes the recorded address (or None) instead, so materialization
# never touches the shared churn RNG.
_ALLOCATE = object()


class _Synthesis:
    """Everything one per-node derivation replay produces."""

    __slots__ = ("node", "device", "behaviors", "forward_to", "divergent",
                 "mode", "lease", "offline_after", "online_after")

    def __init__(self, node, device, behaviors, forward_to, divergent,
                 mode, lease, offline_after, online_after):
        self.node = node
        self.device = device
        self.behaviors = behaviors
        self.forward_to = forward_to
        self.divergent = divergent
        self.mode = mode
        self.lease = lease
        self.offline_after = offline_after
        self.online_after = online_after


class LazyPool:
    """Compact per-pool substrate for lazily materialized resolvers.

    Holds the spec plus four parallel arrays — the 64-bit derivation
    seed, the original address, the divergent answer source (0 = none),
    and the scenario flags — 17 bytes per node instead of a full
    ``ResolverNode``/``CacheActivityModel`` object graph.  Node state is
    a pure function of ``(seed, spec, index, ip)``: :meth:`synthesize`
    replays exactly the draw sequence the eager builder performs, so
    materialization order can never change outcomes.
    """

    __slots__ = ("builder", "spec", "provider_ip", "built_at",
                 "seeds", "ips", "divergents", "flags", "pinned")

    def __init__(self, builder, spec, provider_ip, built_at):
        self.builder = builder
        self.spec = spec
        self.provider_ip = provider_ip
        self.built_at = built_at
        self.seeds = array("Q")
        self.ips = array("I")
        self.divergents = array("I")
        self.flags = bytearray()
        self.pinned = {}             # index -> permanently live node

    def synthesize(self, index):
        """Materialize node ``index`` from its stored derivation key."""
        divergent = self.divergents[index]
        syn = self.builder._synthesize(
            random.Random(self.seeds[index]), self.spec, index,
            int_to_ip(self.ips[index]), self.provider_ip, self.built_at,
            divergent_ip=int_to_ip(divergent) if divergent else None)
        return syn.node


class LazyResolverNode:
    """Network-registered stand-in for a not-yet-materialized resolver.

    Keeps only the current address and its ``(pool, index)`` derivation
    key; every service entry point materializes the real node through
    the builder's bounded LRU and delegates.  Attribute reads fall back
    to the materialized node too, so code that inspects resolvers stays
    correct (at the cost of a materialization) — scan hot paths only
    ever touch ``ip`` and the handler methods.
    """

    __slots__ = ("ip", "_pool", "_index")

    # The checkpoint plane walks every registered node looking for warm
    # DNS caches (`getattr(node, "cache", None)`).  A lazy node's cache
    # is reconstructible-by-definition (evicted nodes drop theirs), so
    # advertise "no cache" instead of materializing the whole world.
    cache = None

    def __init__(self, ip, pool, index):
        self.ip = ip
        self._pool = pool
        self._index = index

    @property
    def service(self):
        # Shared resolution service, reachable without materializing
        # (checkpointing deduplicates it by identity across nodes).
        return self._pool.builder.service

    @property
    def lazy_flags(self):
        return self._pool.flags[self._index]

    def _real(self):
        return self._pool.builder._materialize(
            self._pool, self._index, self)

    def pin(self):
        """Materialize permanently (exempt from LRU eviction) — for
        nodes the scenario mutates after construction."""
        return self._pool.builder._pin(self._pool, self._index, self)

    def handle_udp(self, packet, network):
        return self._real().handle_udp(packet, network)

    def tcp_ports(self):
        return self._real().tcp_ports()

    def tcp_banner(self, port, network=None):
        return self._real().tcp_banner(port, network)

    def handle_http(self, request, network):
        return self._real().handle_http(request, network)

    def tls_certificate(self, sni, network=None):
        return self._real().tls_certificate(sni, network)

    def __getattr__(self, name):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._real(), name)

    def __repr__(self):
        return "LazyResolverNode(ip=%r)" % (self.ip,)


class PopulationBuilder:
    """Creates resolver pools and wires them into network/churn/rDNS."""

    def __init__(self, network, churn_model, resolution_service, rdns=None,
                 snooping_tlds=(), seed=0, lazy=False, node_cache=8192):
        if node_cache < 1:
            raise ValueError("node_cache must be >= 1")
        self.network = network
        self.churn = churn_model
        self.service = resolution_service
        self.rdns = rdns
        self.snooping_tlds = tuple(snooping_tlds)
        self._rng = random.Random(seed)
        self.lazy = lazy
        self.node_cache_limit = node_cache
        self._node_cache = OrderedDict()   # (pool id, index) -> node
        self.lazy_pools = []
        self.resolvers = []          # all ResolverNode objects ever built
        self.hosts = []              # matching LeasedHost objects
        self.by_country = {}

    # -- per-resolver attribute draws ---------------------------------------

    def _draw_chaos(self, rng):
        style = weighted_choice(rng, CHAOS_STYLE_SHARES)
        software = None
        if style == STYLE_VERSION:
            catalog_share = sum(share for __, share in SOFTWARE_CATALOG)
            items = list(SOFTWARE_CATALOG) + [
                (profile, (1.0 - catalog_share) / len(LONG_TAIL_SOFTWARE))
                for profile in LONG_TAIL_SOFTWARE]
            software = weighted_choice(rng, items)
        return style, software

    def _draw_device(self, rng, tcp_service_share):
        from repro.resolvers.devices import ANONYMOUS_PROFILE_KEYS
        if rng.random() >= tcp_service_share:
            return DEVICE_CATALOG["silent-cpe"]
        hardware = weighted_choice(rng, list(_HARDWARE_WEIGHTS.items()))
        if hardware == "Unknown":
            key = ANONYMOUS_PROFILE_KEYS[
                rng.randrange(len(ANONYMOUS_PROFILE_KEYS))]
            return DEVICE_CATALOG[key]
        candidates = [profile for profile in profiles_with_tcp()
                      if profile.hardware == hardware
                      or (hardware == "Others"
                          and profile.hardware in ("NAS", "DSLAM", "Server"))]
        if not candidates:
            return DEVICE_CATALOG["silent-cpe"]
        from repro.resolvers.devices import prevalence_of
        return weighted_choice(rng, [(profile, prevalence_of(profile))
                                     for profile in candidates])

    def _draw_activity(self, rng):
        if rng.random() < _SNOOP_UNREACHABLE_SHARE:
            return CacheActivityModel(CacheActivityModel.STYLE_UNREACHABLE)
        style = weighted_choice(rng, _ACTIVITY_SHARES)
        patterns = {}
        if style in (CacheActivityModel.STYLE_NORMAL,
                     CacheActivityModel.STYLE_RESETTING,
                     CacheActivityModel.STYLE_IDLE):
            frequent = rng.random() < _FREQUENT_WITHIN_IN_USE
            # In-use resolvers refresh several TLDs; with a 36h probe
            # window over 48h TTLs only ~75% of refreshes are observable,
            # so >=5 patterns are needed for >=3 observed re-adds.
            tld_count = rng.randint(5, max(5, len(self.snooping_tlds)))
            chosen = rng.sample(list(self.snooping_tlds),
                                min(tld_count, len(self.snooping_tlds)))
            for tld in chosen:
                gap = (rng.uniform(0.5, 5.0) if frequent
                       else rng.uniform(30.0, 3600.0))
                phase = rng.uniform(0, 172800)
                patterns[tld] = (gap, phase)
        # Snooped TLD NS TTLs are two days (172800s) at the registries.
        return CacheActivityModel(style, tld_patterns=patterns, ttl=172800)

    def _draw_lease(self, rng, spec):
        point = rng.random()
        if point < spec.day_lease_share:
            # Consumer CPE leases mostly expire within the first day
            # (>40% of the cohort disappears in 24h, Fig. 2).
            return DAY * rng.uniform(0.25, 0.85)
        if point < spec.day_lease_share + spec.week_lease_share:
            return WEEK * rng.uniform(0.4, 1.2)
        # "Static" addresses still churn eventually (Fig 2's slow decay).
        return rng.expovariate(1.0 / (spec.static_mean_weeks * WEEK))

    def _draw_mode(self, rng, spec):
        point = rng.random()
        if point < spec.refused_share:
            return MODE_REFUSED
        if point < spec.refused_share + spec.servfail_share:
            return MODE_SERVFAIL
        return MODE_NORMAL

    # -- pool construction ----------------------------------------------------

    def _build_provider(self, spec):
        """The ISP's own recursive resolver that pool forwarders use:
        honest, stable, and busy (it serves the ISP's client base)."""
        rng = random.Random(self._rng.getrandbits(64))
        ip = self.churn.allocate_address(spec.pool_prefix)
        patterns = {tld: (rng.uniform(0.5, 4.0), rng.uniform(0, 172800))
                    for tld in self.snooping_tlds}
        chaos_style, software = self._draw_chaos(rng)
        provider = ResolverNode(
            ip, resolution_service=self.service,
            chaos_style=chaos_style, software=software,
            # Closed: only the ISP's own customer space may query it —
            # the scanner (outside) sees REFUSED.
            allowed_networks=[spec.pool_prefix],
            activity=CacheActivityModel(CacheActivityModel.STYLE_NORMAL,
                                        tld_patterns=patterns,
                                        ttl=172800))
        self.network.register(provider)
        host = LeasedHost(provider, spec.pool_prefix,
                          isp_domain=spec.isp_domain)
        self.churn.add(host)
        self.resolvers.append(provider)
        self.hosts.append(host)
        return provider

    def _synthesize(self, rng, spec, index, ip, provider_ip, now,
                    build_node=True, divergent_ip=_ALLOCATE):
        """One node's full derivation — THE keyed-derivation function.

        Node state is a pure function of the per-node RNG (seeded from a
        single 64-bit key), the spec, the index, and the original
        address; both the eager builder and lazy materialization run
        this exact draw sequence, so they are bit-identical by
        construction.  ``divergent_ip`` decouples replay from the shared
        churn RNG: the dry pass allocates for real (``_ALLOCATE``) and
        records the answer, replays inject the recorded address.  With
        ``build_node=False`` every draw still happens (the stream
        position must match), only the ``ResolverNode`` is skipped.
        """
        chaos_style, software = self._draw_chaos(rng)
        device = self._draw_device(rng, spec.tcp_service_share)
        behaviors = []
        gfw_immune = rng.random() < spec.gfw_immune_share
        if spec.behavior_factory is not None:
            behaviors = spec.behavior_factory(rng, spec, index, ip) or []
        divergent = None
        if rng.random() < spec.divergent_source_share:
            divergent = (self.churn.allocate_address(spec.pool_prefix)
                         if divergent_ip is _ALLOCATE else divergent_ip)
        forward_to = None
        if provider_ip is not None and \
                rng.random() < spec.forwarder_share:
            # A plain DNS proxy: no local manipulation, answers come
            # from (and are poisoned at) the ISP resolver.
            forward_to = provider_ip
            behaviors = []
        activity = self._draw_activity(rng)
        mode = self._draw_mode(rng, spec)
        lease = self._draw_lease(rng, spec)
        offline_after = None
        if rng.random() < spec.offline_fraction:
            offline_after = now + WEEK * rng.uniform(
                spec.offline_start_week, spec.offline_end_week)
        if mode == MODE_REFUSED:
            # Closed resolvers are deliberately-operated servers: they
            # neither churn nor vanish (Fig. 1: REFUSED stays stable).
            lease = 1000 * WEEK
            offline_after = None
        online_after = None
        if rng.random() < spec.growth_fraction:
            online_after = now + WEEK * rng.uniform(2, 50)
        node = None
        if build_node:
            node = ResolverNode(
                ip,
                resolution_service=self.service,
                forward_to=forward_to,
                behaviors=behaviors,
                software=software,
                chaos_style=chaos_style,
                device=device,
                activity=activity,
                response_mode=mode,
                answer_source_ip=divergent,
                gfw_immune=gfw_immune,
            )
        return _Synthesis(node, device, behaviors, forward_to, divergent,
                          mode, lease, offline_after, online_after)

    def build_pool(self, spec):
        """Create ``spec.count`` resolvers inside the spec's pool prefix."""
        if self.lazy:
            return self._build_pool_lazy(spec)
        return self._build_pool_eager(spec)

    def _build_pool_eager(self, spec):
        now = self.network.clock.now
        built = []
        # Tiny pools (scaled-down small countries) skip the provider +
        # forwarder structure; it only matters at realistic pool sizes.
        provider = (self._build_provider(spec)
                    if spec.forwarder_share > 0 and spec.count >= 12
                    else None)
        if provider is not None:
            built.append(provider)
        for index in range(spec.count):
            rng = random.Random(self._rng.getrandbits(64))
            ip = self.churn.allocate_address(spec.pool_prefix)
            syn = self._synthesize(
                rng, spec, index, ip,
                provider.ip if provider is not None else None, now)
            node = syn.node
            host = LeasedHost(node, spec.pool_prefix,
                              lease_duration=syn.lease,
                              offline_after=syn.offline_after,
                              isp_domain=spec.isp_domain,
                              online_after=syn.online_after)
            if host.online:
                self.network.register(node)
                if self.rdns is not None and rng.random() < spec.rdns_coverage:
                    dynamic_ptr = (syn.lease <= WEEK * 1.5
                                   and rng.random() < spec.dynamic_token_share)
                    name = (dynamic_pool_name(ip, spec.isp_domain)
                            if dynamic_ptr
                            else static_name(ip, spec.isp_domain))
                    self.rdns.set_ptr(ip, name)
            self.churn.add(host)
            self.resolvers.append(node)
            self.hosts.append(host)
            built.append(node)
        self.by_country.setdefault(spec.country, []).extend(built)
        return built

    def _build_pool_lazy(self, spec):
        """Like :meth:`_build_pool_eager` but nodes stay virtual.

        The dry pass replays every per-node draw (the shared builder and
        churn RNG streams must advance exactly as in an eager build) and
        keeps only the 17-byte derivation record per node.  Deliberately
        skipped relative to eager: the per-node rDNS draws and PTR
        registration — they are terminal on the per-node stream and
        touch no shared RNG, so nothing downstream of the skip can
        diverge; lazy worlds simply have no PTR records for pool
        members (documented in DESIGN.md).
        """
        now = self.network.clock.now
        built = []
        provider = (self._build_provider(spec)
                    if spec.forwarder_share > 0 and spec.count >= 12
                    else None)
        if provider is not None:
            built.append(provider)
        pool = LazyPool(self, spec,
                        provider.ip if provider is not None else None, now)
        self.lazy_pools.append(pool)
        for index in range(spec.count):
            seed = self._rng.getrandbits(64)
            ip = self.churn.allocate_address(spec.pool_prefix)
            syn = self._synthesize(random.Random(seed), spec, index, ip,
                                   pool.provider_ip, now, build_node=False)
            flags = 0
            if syn.mode == MODE_NORMAL and syn.forward_to is None \
                    and not syn.behaviors:
                flags |= FLAG_PLAIN_NORMAL
            if any(isinstance(behavior, SelfIpBehavior)
                   for behavior in syn.behaviors):
                flags |= FLAG_SELF_IP
            if syn.device is not None and \
                    getattr(syn.device, "http_body", None):
                flags |= FLAG_DEVICE_HTTP
            pool.seeds.append(seed)
            pool.ips.append(ip_to_int(ip))
            pool.divergents.append(
                ip_to_int(syn.divergent) if syn.divergent else 0)
            pool.flags.append(flags)
            placeholder = LazyResolverNode(ip, pool, index)
            host = LeasedHost(placeholder, spec.pool_prefix,
                              lease_duration=syn.lease,
                              offline_after=syn.offline_after,
                              isp_domain=spec.isp_domain,
                              online_after=syn.online_after)
            if host.online:
                self.network.register(placeholder)
            self.churn.add(host)
            self.resolvers.append(placeholder)
            self.hosts.append(host)
            built.append(placeholder)
        self.by_country.setdefault(spec.country, []).extend(built)
        return built

    # -- lazy materialization -------------------------------------------------

    def _materialize(self, pool, index, placeholder):
        """The bounded-LRU gateway from placeholder to real node."""
        node = pool.pinned.get(index)
        if node is None:
            key = (id(pool), index)
            cache = self._node_cache
            node = cache.get(key)
            if node is None:
                node = pool.synthesize(index)
                cache[key] = node
                if len(cache) > self.node_cache_limit:
                    cache.popitem(last=False)
            else:
                cache.move_to_end(key)
        if node.ip != placeholder.ip:
            # Churn rebound the host since construction: the live
            # address lives on the placeholder (the network re-keys it),
            # the derivation always replays from the original address.
            node.ip = placeholder.ip
        return node

    def _pin(self, pool, index, placeholder):
        node = self._materialize(pool, index, placeholder)
        pool.pinned[index] = node
        self._node_cache.pop((id(pool), index), None)
        return node

    def online_resolver_ips(self):
        """Addresses of all currently-online resolvers."""
        return [host.node.ip for host in self.hosts if host.online]
