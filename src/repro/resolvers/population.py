"""Resolver population generator.

Synthesises pools of open resolvers inside ISP prefixes with the
distributions the paper reports: response modes (NOERROR/REFUSED/SERVFAIL),
CHAOS version-response styles and software versions (Table 3), device
profiles and their TCP surface (Table 4), cache-activity styles (§2.6),
lease/churn characteristics (Figure 2), decline and growth schedules
(Figure 1, Tables 1/2), divergent answer sources (§2.2), and per-pool
manipulation behaviors supplied by the scenario (§4).
"""

import random

from repro.inetmodel.churn import LeasedHost
from repro.inetmodel.rdns import dynamic_pool_name, static_name
from repro.netsim.clock import DAY, WEEK
from repro.resolvers.cache import CacheActivityModel
from repro.resolvers.devices import DEVICE_CATALOG, profiles_with_tcp
from repro.resolvers.resolver import (
    MODE_NORMAL,
    MODE_REFUSED,
    MODE_SERVFAIL,
    ResolverNode,
)
from repro.resolvers.software import (
    CHAOS_STYLE_SHARES,
    LONG_TAIL_SOFTWARE,
    SOFTWARE_CATALOG,
    STYLE_VERSION,
)
from repro.util import weighted_choice

# Hardware-category weights among TCP-responding resolvers (Table 4).
_HARDWARE_WEIGHTS = {
    "Router": 34.1, "Embedded": 30.6, "Firewall": 1.9, "Camera": 1.8,
    "DVR": 1.2, "Others": 1.1, "Unknown": 29.3,
}

# §2.6 cache-activity style shares among snoop-responding resolvers.
_ACTIVITY_SHARES = (
    (CacheActivityModel.STYLE_EMPTY, 0.073),
    (CacheActivityModel.STYLE_SINGLE, 0.033),
    (CacheActivityModel.STYLE_STATIC_TTL, 0.020),
    (CacheActivityModel.STYLE_ZERO_TTL, 0.020),
    (CacheActivityModel.STYLE_RESETTING, 0.196),
    (CacheActivityModel.STYLE_NORMAL, 0.616),
    (CacheActivityModel.STYLE_IDLE, 0.042),
)
_SNOOP_UNREACHABLE_SHARE = 0.168
# Within in-use resolvers: share refreshed within <=5s of expiry (38.7 of
# 61.6 in-use).
_FREQUENT_WITHIN_IN_USE = 0.387 / 0.616


class ResolverSpec:
    """Distribution knobs for one resolver pool (usually one ISP)."""

    def __init__(self, autonomous_system, pool_prefix, count,
                 isp_domain=None,
                 refused_share=0.085, servfail_share=0.045,
                 day_lease_share=0.46, week_lease_share=0.10,
                 static_mean_weeks=19.0,
                 offline_fraction=0.0, offline_start_week=1,
                 offline_end_week=55,
                 growth_fraction=0.0,
                 divergent_source_share=0.03,
                 rdns_coverage=0.80, dynamic_token_share=0.62,
                 tcp_service_share=0.263,
                 behavior_factory=None,
                 gfw_immune_share=0.0,
                 forwarder_share=0.08):
        self.autonomous_system = autonomous_system
        self.pool_prefix = pool_prefix
        self.count = count
        self.isp_domain = isp_domain or "%s.example" % (
            autonomous_system.name.lower().replace(" ", "-"))
        self.refused_share = refused_share
        self.servfail_share = servfail_share
        self.day_lease_share = day_lease_share
        self.week_lease_share = week_lease_share
        self.static_mean_weeks = static_mean_weeks
        self.offline_fraction = offline_fraction
        self.offline_start_week = offline_start_week
        self.offline_end_week = offline_end_week
        self.growth_fraction = growth_fraction
        self.divergent_source_share = divergent_source_share
        self.rdns_coverage = rdns_coverage
        self.dynamic_token_share = dynamic_token_share
        self.tcp_service_share = tcp_service_share
        self.behavior_factory = behavior_factory
        self.gfw_immune_share = gfw_immune_share
        # Share of pool members that are dnsmasq-style DNS proxies
        # forwarding to the ISP's recursive resolver (§2.2 observed
        # 630k-750k such proxies per week).
        self.forwarder_share = forwarder_share

    @property
    def country(self):
        return self.autonomous_system.country


class PopulationBuilder:
    """Creates resolver pools and wires them into network/churn/rDNS."""

    def __init__(self, network, churn_model, resolution_service, rdns=None,
                 snooping_tlds=(), seed=0):
        self.network = network
        self.churn = churn_model
        self.service = resolution_service
        self.rdns = rdns
        self.snooping_tlds = tuple(snooping_tlds)
        self._rng = random.Random(seed)
        self.resolvers = []          # all ResolverNode objects ever built
        self.hosts = []              # matching LeasedHost objects
        self.by_country = {}

    # -- per-resolver attribute draws ---------------------------------------

    def _draw_chaos(self, rng):
        style = weighted_choice(rng, CHAOS_STYLE_SHARES)
        software = None
        if style == STYLE_VERSION:
            catalog_share = sum(share for __, share in SOFTWARE_CATALOG)
            items = list(SOFTWARE_CATALOG) + [
                (profile, (1.0 - catalog_share) / len(LONG_TAIL_SOFTWARE))
                for profile in LONG_TAIL_SOFTWARE]
            software = weighted_choice(rng, items)
        return style, software

    def _draw_device(self, rng, tcp_service_share):
        from repro.resolvers.devices import ANONYMOUS_PROFILE_KEYS
        if rng.random() >= tcp_service_share:
            return DEVICE_CATALOG["silent-cpe"]
        hardware = weighted_choice(rng, list(_HARDWARE_WEIGHTS.items()))
        if hardware == "Unknown":
            key = ANONYMOUS_PROFILE_KEYS[
                rng.randrange(len(ANONYMOUS_PROFILE_KEYS))]
            return DEVICE_CATALOG[key]
        candidates = [profile for profile in profiles_with_tcp()
                      if profile.hardware == hardware
                      or (hardware == "Others"
                          and profile.hardware in ("NAS", "DSLAM", "Server"))]
        if not candidates:
            return DEVICE_CATALOG["silent-cpe"]
        from repro.resolvers.devices import prevalence_of
        return weighted_choice(rng, [(profile, prevalence_of(profile))
                                     for profile in candidates])

    def _draw_activity(self, rng):
        if rng.random() < _SNOOP_UNREACHABLE_SHARE:
            return CacheActivityModel(CacheActivityModel.STYLE_UNREACHABLE)
        style = weighted_choice(rng, _ACTIVITY_SHARES)
        patterns = {}
        if style in (CacheActivityModel.STYLE_NORMAL,
                     CacheActivityModel.STYLE_RESETTING,
                     CacheActivityModel.STYLE_IDLE):
            frequent = rng.random() < _FREQUENT_WITHIN_IN_USE
            # In-use resolvers refresh several TLDs; with a 36h probe
            # window over 48h TTLs only ~75% of refreshes are observable,
            # so >=5 patterns are needed for >=3 observed re-adds.
            tld_count = rng.randint(5, max(5, len(self.snooping_tlds)))
            chosen = rng.sample(list(self.snooping_tlds),
                                min(tld_count, len(self.snooping_tlds)))
            for tld in chosen:
                gap = (rng.uniform(0.5, 5.0) if frequent
                       else rng.uniform(30.0, 3600.0))
                phase = rng.uniform(0, 172800)
                patterns[tld] = (gap, phase)
        # Snooped TLD NS TTLs are two days (172800s) at the registries.
        return CacheActivityModel(style, tld_patterns=patterns, ttl=172800)

    def _draw_lease(self, rng, spec):
        point = rng.random()
        if point < spec.day_lease_share:
            # Consumer CPE leases mostly expire within the first day
            # (>40% of the cohort disappears in 24h, Fig. 2).
            return DAY * rng.uniform(0.25, 0.85)
        if point < spec.day_lease_share + spec.week_lease_share:
            return WEEK * rng.uniform(0.4, 1.2)
        # "Static" addresses still churn eventually (Fig 2's slow decay).
        return rng.expovariate(1.0 / (spec.static_mean_weeks * WEEK))

    def _draw_mode(self, rng, spec):
        point = rng.random()
        if point < spec.refused_share:
            return MODE_REFUSED
        if point < spec.refused_share + spec.servfail_share:
            return MODE_SERVFAIL
        return MODE_NORMAL

    # -- pool construction ----------------------------------------------------

    def _build_provider(self, spec):
        """The ISP's own recursive resolver that pool forwarders use:
        honest, stable, and busy (it serves the ISP's client base)."""
        rng = random.Random(self._rng.getrandbits(64))
        ip = self.churn.allocate_address(spec.pool_prefix)
        patterns = {tld: (rng.uniform(0.5, 4.0), rng.uniform(0, 172800))
                    for tld in self.snooping_tlds}
        chaos_style, software = self._draw_chaos(rng)
        provider = ResolverNode(
            ip, resolution_service=self.service,
            chaos_style=chaos_style, software=software,
            # Closed: only the ISP's own customer space may query it —
            # the scanner (outside) sees REFUSED.
            allowed_networks=[spec.pool_prefix],
            activity=CacheActivityModel(CacheActivityModel.STYLE_NORMAL,
                                        tld_patterns=patterns,
                                        ttl=172800))
        self.network.register(provider)
        host = LeasedHost(provider, spec.pool_prefix,
                          isp_domain=spec.isp_domain)
        self.churn.add(host)
        self.resolvers.append(provider)
        self.hosts.append(host)
        return provider

    def build_pool(self, spec):
        """Create ``spec.count`` resolvers inside the spec's pool prefix."""
        now = self.network.clock.now
        built = []
        # Tiny pools (scaled-down small countries) skip the provider +
        # forwarder structure; it only matters at realistic pool sizes.
        provider = (self._build_provider(spec)
                    if spec.forwarder_share > 0 and spec.count >= 12
                    else None)
        if provider is not None:
            built.append(provider)
        for index in range(spec.count):
            rng = random.Random(self._rng.getrandbits(64))
            ip = self.churn.allocate_address(spec.pool_prefix)
            chaos_style, software = self._draw_chaos(rng)
            device = self._draw_device(rng, spec.tcp_service_share)
            behaviors = []
            gfw_immune = rng.random() < spec.gfw_immune_share
            if spec.behavior_factory is not None:
                behaviors = spec.behavior_factory(rng, spec, index, ip) or []
            divergent = None
            if rng.random() < spec.divergent_source_share:
                divergent = self.churn.allocate_address(spec.pool_prefix)
            forward_to = None
            if provider is not None and \
                    rng.random() < spec.forwarder_share:
                # A plain DNS proxy: no local manipulation, answers come
                # from (and are poisoned at) the ISP resolver.
                forward_to = provider.ip
                behaviors = []
            node = ResolverNode(
                ip,
                resolution_service=self.service,
                forward_to=forward_to,
                behaviors=behaviors,
                software=software,
                chaos_style=chaos_style,
                device=device,
                activity=self._draw_activity(rng),
                response_mode=self._draw_mode(rng, spec),
                answer_source_ip=divergent,
                gfw_immune=gfw_immune,
            )
            lease = self._draw_lease(rng, spec)
            offline_after = None
            if rng.random() < spec.offline_fraction:
                offline_after = now + WEEK * rng.uniform(
                    spec.offline_start_week, spec.offline_end_week)
            if node.response_mode == MODE_REFUSED:
                # Closed resolvers are deliberately-operated servers: they
                # neither churn nor vanish (Fig. 1: REFUSED stays stable).
                lease = 1000 * WEEK
                offline_after = None
            online_after = None
            if rng.random() < spec.growth_fraction:
                online_after = now + WEEK * rng.uniform(2, 50)
            host = LeasedHost(node, spec.pool_prefix,
                              lease_duration=lease,
                              offline_after=offline_after,
                              isp_domain=spec.isp_domain,
                              online_after=online_after)
            if host.online:
                self.network.register(node)
                if self.rdns is not None and rng.random() < spec.rdns_coverage:
                    dynamic_ptr = (lease <= WEEK * 1.5
                                   and rng.random() < spec.dynamic_token_share)
                    name = (dynamic_pool_name(ip, spec.isp_domain)
                            if dynamic_ptr
                            else static_name(ip, spec.isp_domain))
                    self.rdns.set_ptr(ip, name)
            self.churn.add(host)
            self.resolvers.append(node)
            self.hosts.append(host)
            built.append(node)
        self.by_country.setdefault(spec.country, []).extend(built)
        return built

    def online_resolver_ips(self):
        """Addresses of all currently-online resolvers."""
        return [host.node.ip for host in self.hosts if host.online]
