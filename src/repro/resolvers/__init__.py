"""The open-resolver population: caches, software, devices, behaviors.

This package synthesises the measured side of the study: recursive
resolver nodes with realistic DNS server software (CHAOS version strings,
Table 3), underlying devices (TCP banners for fingerprinting, Table 4),
snoopable caches with client-driven refresh activity (§2.6), and the
manipulation behaviors — censorship, blocking, NXDOMAIN monetization,
ad injection, proxying, phishing — that the classification pipeline later
detects (§3/§4).
"""

from repro.resolvers.cache import CacheActivityModel, DnsCache
from repro.resolvers.software import (
    SOFTWARE_CATALOG,
    SoftwareProfile,
    VERSION_RESPONSE_STYLES,
)
from repro.resolvers.devices import DEVICE_CATALOG, DeviceProfile
from repro.resolvers.behaviors import (
    AdInjectBehavior,
    Behavior,
    BlockingBehavior,
    CensorshipBehavior,
    EmptyAnswerBehavior,
    LanIpBehavior,
    MailRedirectBehavior,
    MalwareBehavior,
    NsOnlyBehavior,
    NxRedirectBehavior,
    ParkingBehavior,
    PhishingBehavior,
    ProxyAllBehavior,
    SameNetworkBehavior,
    SelfIpBehavior,
    StaleCdnBehavior,
    StaticIpBehavior,
)
from repro.resolvers.resolver import ResolutionService, ResolverNode
from repro.resolvers.population import PopulationBuilder, ResolverSpec

__all__ = [
    "AdInjectBehavior",
    "Behavior",
    "BlockingBehavior",
    "CacheActivityModel",
    "CensorshipBehavior",
    "DEVICE_CATALOG",
    "DeviceProfile",
    "DnsCache",
    "EmptyAnswerBehavior",
    "LanIpBehavior",
    "MailRedirectBehavior",
    "MalwareBehavior",
    "NsOnlyBehavior",
    "NxRedirectBehavior",
    "ParkingBehavior",
    "PhishingBehavior",
    "PopulationBuilder",
    "ProxyAllBehavior",
    "ResolutionService",
    "ResolverNode",
    "ResolverSpec",
    "SOFTWARE_CATALOG",
    "SameNetworkBehavior",
    "SelfIpBehavior",
    "SoftwareProfile",
    "StaleCdnBehavior",
    "StaticIpBehavior",
    "VERSION_RESPONSE_STYLES",
]
