"""Recursive resolver nodes and the shared honest-resolution service."""

import random

from repro.dnswire.constants import (
    CLASS_CH,
    CLASS_IN,
    QTYPE_A,
    QTYPE_NS,
    QTYPE_PTR,
    QTYPE_TXT,
    RCODE_NOERROR,
    RCODE_NOTIMP,
    RCODE_NXDOMAIN,
    RCODE_REFUSED,
    RCODE_SERVFAIL,
)
from repro.dnswire.message import Message
from repro.dnswire.name import normalize_name
from repro.util import stable_hash
from repro.dnswire.records import ResourceRecord
from repro.authdns.resolution import IterativeResolver
from repro.netsim.address import ip_to_int
from repro.netsim.gfw import GreatFirewall
from repro.netsim.network import Node, UdpPacket
from repro.resolvers.cache import CacheActivityModel, DnsCache
from repro.resolvers.software import STYLE_ERROR, STYLE_HIDDEN, \
    STYLE_NO_VERSION, STYLE_VERSION
from repro.websim.http import HttpResponse

# Response modes: how the resolver reacts to ordinary lookups at all.
MODE_NORMAL = "normal"
MODE_REFUSED = "refused"      # closed resolver: REFUSED to outsiders
MODE_SERVFAIL = "servfail"    # broken resolver
MODE_SILENT = "silent"


class HonestResult:
    """The outcome of an honest (hierarchy-following) resolution.

    ``extra_records`` carries non-A answer records that must survive the
    resolver's re-synthesis — in particular the simulated DNSSEC
    signature records (:mod:`repro.authdns.dnssec`).
    """

    __slots__ = ("rcode", "addresses", "ttl", "extra_records")

    def __init__(self, rcode, addresses=(), ttl=300, extra_records=()):
        self.rcode = rcode
        self.addresses = list(addresses)
        self.ttl = ttl
        self.extra_records = list(extra_records)

    def __repr__(self):
        return "HonestResult(rcode=%d, %r)" % (self.rcode, self.addresses)


class ResolutionService:
    """Shared honest-resolution backend for the resolver population.

    The first lookup of each name walks the real hierarchy through the
    simulated network (root -> TLD -> AuthNS); the result is then cached
    for the whole population.  Three cases bypass the shared cache:

    * wildcard measurement domains (cached per suffix — every scan query
      carries a unique random prefix);
    * CDN customer domains, where each resolver deterministically sees its
      own slice of the edge pool (GeoDNS);
    * resolvers behind the Great Firewall querying censored names, whose
      resolution is performed live from the resolver's own address so the
      injected forged answer wins the race, exactly as on the real path.
    """

    def __init__(self, root_ips, source_ip, cdn_pools=None,
                 wildcard_suffixes=(), answers_per_query=2):
        self.root_ips = list(root_ips)
        self.source_ip = source_ip
        self.cdn_pools = {normalize_name(d): list(ips)
                          for d, ips in (cdn_pools or {}).items()}
        self.wildcard_suffixes = tuple(normalize_name(s)
                                       for s in wildcard_suffixes)
        self.answers_per_query = answers_per_query
        self._cache = {}
        self._suffix_cache = {}
        self._trusted = IterativeResolver(self.root_ips, source_ip)
        self.full_resolutions = 0

    def register_cdn_pool(self, domain, edge_ips):
        self.cdn_pools[normalize_name(domain)] = list(edge_ips)

    # -- internals ---------------------------------------------------------

    def _iterative(self, network, name, source_ip=None):
        resolver = (self._trusted if source_ip is None
                    else IterativeResolver(self.root_ips, source_ip))
        self.full_resolutions += 1
        result = resolver.resolve(network, name, QTYPE_A)
        from repro.authdns.dnssec import SIG_LABEL
        signatures = [record for record in result.records
                      if record.rtype == QTYPE_TXT
                      and normalize_name(record.name).startswith(
                          SIG_LABEL + ".")]
        return HonestResult(result.rcode, result.a_addresses(),
                            result.min_ttl(), extra_records=signatures)

    def _gfw_for(self, network, resolver_ip, name):
        for box in network.middleboxes:
            if isinstance(box, GreatFirewall):
                if box._inside(resolver_ip) and box.censors_name(name):
                    return box
        return None

    def _wildcard_suffix(self, name):
        for suffix in self.wildcard_suffixes:
            if name.endswith("." + suffix) or name == suffix:
                return suffix
        return None

    def _cdn_pool_for(self, name):
        """The GeoDNS edge pool for ``name``, or ``None``.

        Exact matching (plus the ``www.`` alias) only: a random
        subdomain of a CDN customer does NOT resolve to edges — the
        customer's zone answers NXDOMAIN for it, which matters for the
        NX domain set (rswkllf.twitter.com must not get addresses).
        """
        pool = self.cdn_pools.get(name)
        if pool is not None:
            return pool
        if name.startswith("www."):
            return self.cdn_pools.get(name[4:])
        return None

    # -- public API ----------------------------------------------------------

    def resolve_trusted(self, network, name):
        """Resolution from the study's own trusted vantage point."""
        name = normalize_name(name)
        pool = self._cdn_pool_for(name)
        if pool:
            # The trusted resolver sees its own GeoDNS slice of the pool.
            return HonestResult(RCODE_NOERROR,
                                pool[:self.answers_per_query], ttl=20)
        suffix = self._wildcard_suffix(name)
        if suffix is not None:
            cached = self._suffix_cache.get(suffix)
            if cached is None:
                cached = self._iterative(network, name)
                self._suffix_cache[suffix] = cached
            return cached
        cached = self._cache.get(name)
        if cached is None:
            cached = self._iterative(network, name)
            self._cache[name] = cached
        return cached

    def resolve_for(self, network, resolver, name):
        """What resolver ``resolver`` honestly obtains for ``name``."""
        name = normalize_name(name)
        gfw = self._gfw_for(network, resolver.ip, name)
        if gfw is not None and not resolver.gfw_immune:
            # Live resolution from inside the firewall: poisoned.
            return self._iterative(network, name, source_ip=resolver.ip)
        pool = self._cdn_pool_for(name)
        if pool:
            offset = stable_hash(resolver.ip, name) % len(pool)
            count = min(self.answers_per_query, len(pool))
            return HonestResult(
                RCODE_NOERROR,
                [pool[(offset + i) % len(pool)] for i in range(count)],
                ttl=20)
        return self.resolve_trusted(network, name)


class ResolverNode(Node):
    """One open (or closed/broken) DNS resolver on the simulated Internet.

    Combines: a response mode, manipulation behaviors, a software profile
    (CHAOS fingerprinting), a device profile (TCP fingerprinting and the
    router/camera login page), a snoopable cache activity model, and an
    optional divergent answer source address (multi-homed hosts / DNS
    proxies answering from a different IP than queried, §2.2).
    """

    def __init__(self, ip, resolution_service=None, behaviors=(),
                 software=None, chaos_style=STYLE_ERROR, device=None,
                 activity=None, response_mode=MODE_NORMAL,
                 answer_source_ip=None, gfw_immune=False,
                 device_page=None, recursion_available=True,
                 forward_to=None, allowed_networks=None):
        super().__init__(ip)
        self.service = resolution_service
        # A forwarding DNS proxy (dnsmasq-style CPE): IN-class queries
        # are relayed verbatim to the upstream resolver; the device
        # surface (banners, login page) and CHAOS handling stay local.
        self.forward_to = forward_to
        # A properly-protected (closed) resolver: IN-class queries from
        # sources outside these prefixes are REFUSED (§2.1's closed
        # resolvers; ISP resolvers restricted to their customer space).
        self.allowed_networks = list(allowed_networks or [])
        self.behaviors = list(behaviors)
        self.software = software
        self.chaos_style = chaos_style
        self.device = device
        self.activity = activity or CacheActivityModel(
            CacheActivityModel.STYLE_IDLE)
        self.response_mode = response_mode
        self.answer_source_ip = answer_source_ip
        self.gfw_immune = gfw_immune
        self.device_page = device_page
        self.recursion_available = recursion_available
        self.cache = DnsCache()
        self.query_count = 0
        self._hidden_rng = random.Random(ip)

    # -- DNS ------------------------------------------------------------------

    def handle_udp(self, packet, network):
        if packet.dst_port != 53:
            return None
        faults = getattr(network, "faults", None)
        if faults is not None and faults.resolver_offline(
                ip_to_int(self.ip), network.clock.now):
            # Fault-injected offline episode (flapping CPE): the host is
            # unreachable this week — silence, exactly like churn.
            network.count_fault("resolver_flap")
            return None
        try:
            query = Message.from_wire(packet.payload)
        except ValueError:
            return None
        if query.header.qr or query.question is None:
            return None
        self.query_count += 1
        if self.forward_to is not None and query.question is not None \
                and query.question.qclass == CLASS_IN \
                and query.question.qtype != QTYPE_NS:
            return self._forward(packet, network)
        response = self.respond(query, network, client_ip=packet.src_ip)
        if response is None:
            return None
        payload = response.to_wire()
        if self.answer_source_ip is not None:
            return [(payload, self.answer_source_ip)]
        return payload

    def _forward(self, packet, network):
        """Relay the raw query to the upstream and return its answer."""
        upstream = UdpPacket(self.ip, 53535, self.forward_to, 53,
                             packet.payload)
        for response in network.send_udp(upstream):
            payload = response.packet.payload
            if self.answer_source_ip is not None:
                return [(payload, self.answer_source_ip)]
            return payload
        return None

    def _client_allowed(self, client_ip):
        if not self.allowed_networks or client_ip is None:
            return True
        return any(client_ip in network for network
                   in self.allowed_networks)

    def respond(self, query, network, client_ip=None):
        """Build the full response message for a parsed query."""
        question = query.question
        if question.qclass == CLASS_CH and question.qtype == QTYPE_TXT:
            return self._chaos_response(query)
        if self.response_mode == MODE_SILENT:
            return None
        if not self._client_allowed(client_ip):
            return query.make_response(rcode=RCODE_REFUSED, ra=False)
        if self.response_mode == MODE_REFUSED:
            return query.make_response(rcode=RCODE_REFUSED, ra=False)
        if self.response_mode == MODE_SERVFAIL:
            return query.make_response(rcode=RCODE_SERVFAIL)
        if question.qclass != CLASS_IN:
            return query.make_response(rcode=RCODE_NOTIMP)
        if question.qtype == QTYPE_A:
            return self._a_response(query, network)
        if question.qtype == QTYPE_NS:
            return self._ns_response(query, network)
        if question.qtype == QTYPE_PTR:
            return self._ptr_response(query, network)
        return query.make_response(rcode=RCODE_NOTIMP)

    def _a_response(self, query, network):
        qname = query.question.name
        for behavior in self.behaviors:
            answer = behavior.answer(self, qname, network)
            if answer is not None:
                return self._build_from_behavior(query, answer)
        honest = self.resolve_honest(qname, network)
        response = query.make_response(rcode=honest.rcode)
        for address in honest.addresses:
            response.answers.append(
                ResourceRecord.a(qname, address, ttl=honest.ttl))
        # DNSSEC signature records pass through unmodified.
        response.answers.extend(honest.extra_records)
        return response

    def _build_from_behavior(self, query, answer):
        response = query.make_response(rcode=answer.rcode)
        qname = query.question.name
        if answer.ns_only:
            apex = ".".join(normalize_name(qname).split(".")[-2:])
            response.answers.append(
                ResourceRecord.ns(qname, "ns1.%s" % apex, ttl=answer.ttl))
            return response
        if answer.empty:
            return response
        for address in answer.addresses:
            response.answers.append(
                ResourceRecord.a(qname, address, ttl=answer.ttl))
        return response

    def resolve_honest(self, qname, network):
        """Hierarchy-following resolution with this resolver's cache."""
        if self.service is None:
            return HonestResult(RCODE_SERVFAIL)
        name = normalize_name(qname)
        now = network.clock.now
        cached = self.cache.get(name, QTYPE_A, now)
        if cached is not None:
            return HonestResult(
                RCODE_NOERROR,
                [record.data.address for record in cached
                 if record.rtype == QTYPE_A],
                cached[0].ttl if cached else 300,
                extra_records=[record for record in cached
                               if record.rtype != QTYPE_A])
        result = self.service.resolve_for(network, self, name)
        if result.rcode == RCODE_NOERROR and result.addresses:
            self.cache.put(
                name, QTYPE_A,
                [ResourceRecord.a(name, a, ttl=result.ttl)
                 for a in result.addresses] + list(result.extra_records),
                now, ttl=result.ttl)
        return result

    def _ns_response(self, query, network):
        """Cache-snooping view: NS records for TLDs with live cache TTLs."""
        tld = normalize_name(query.question.name)
        observable = self.activity.observable_ttl(tld, network.clock.now)
        if self.activity.style == CacheActivityModel.STYLE_UNREACHABLE:
            return None
        if observable == "silent":
            return None
        response = query.make_response()
        if observable is None or observable == "empty":
            return response
        for host in ("a.nic.%s" % tld, "b.nic.%s" % tld):
            response.answers.append(
                ResourceRecord.ns(query.question.name, host,
                                  ttl=int(observable)))
        return response

    def _ptr_response(self, query, network):
        if self.service is None:
            return query.make_response(rcode=RCODE_SERVFAIL)
        # PTR answers come from the registry-backed in-addr.arpa zone.
        resolver = IterativeResolver(self.service.root_ips, self.ip)
        result = resolver.resolve(network, query.question.name, QTYPE_PTR)
        response = query.make_response(rcode=result.rcode)
        response.answers.extend(result.records)
        return response

    def _chaos_response(self, query):
        """Answer CHAOS version.bind / version.server per software style."""
        qname = normalize_name(query.question.name)
        if qname not in ("version.bind", "version.server"):
            return query.make_response(rcode=RCODE_NOTIMP)
        if self.chaos_style == STYLE_ERROR:
            rcode = RCODE_REFUSED if self._hidden_rng.random() < 0.7 \
                else RCODE_SERVFAIL
            return query.make_response(rcode=rcode)
        if self.chaos_style == STYLE_NO_VERSION:
            return query.make_response()
        response = query.make_response()
        if self.chaos_style == STYLE_HIDDEN:
            from repro.resolvers.software import HIDDEN_VERSION_STRINGS
            text = HIDDEN_VERSION_STRINGS[
                self._hidden_rng.randrange(len(HIDDEN_VERSION_STRINGS))]
        else:  # STYLE_VERSION
            text = (self.software.version_string if self.software
                    else "unknown")
        response.answers.append(
            ResourceRecord.txt(query.question.name, [text]))
        return response

    # -- TCP fingerprinting surface -------------------------------------------

    def tcp_ports(self):
        return self.device.open_ports() if self.device else frozenset()

    def tcp_banner(self, port, network=None):
        if self.device is None:
            return None
        return self.device.banners.get(port)

    def handle_http(self, request, network):
        """The device's web UI (router/camera login), served for any Host —
        which is why self-IP answers land in the Login category."""
        body = self.device_page
        if body is None and self.device is not None:
            body = self.device.http_body
        if body is None:
            return None
        return HttpResponse(200, body)
