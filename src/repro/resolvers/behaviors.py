"""Resolver answer-manipulation behaviors (§3.1 threat model, §4 findings).

A resolver owns an ordered list of behaviors; for each A query the first
behavior that wants the name produces the answer, and an honest recursive
resolution is the fallback.  Each behavior corresponds to a phenomenon the
paper observed: censorship landing pages, category blocking, NXDOMAIN
monetization, static/self/LAN answers, ad injection, transparent proxying,
phishing, malware-update redirection, mail interception, parking, stale
CDN data, NS-only answers, and empty answers.
"""

from repro.dnswire.constants import RCODE_NOERROR, RCODE_NXDOMAIN
from repro.dnswire.name import normalize_name
from repro.util import stable_hash


class BehaviorAnswer:
    """What a behavior wants returned: addresses and/or a status shape."""

    def __init__(self, addresses=(), rcode=RCODE_NOERROR, empty=False,
                 ns_only=False, ttl=300):
        self.addresses = list(addresses)
        self.rcode = rcode
        self.empty = empty
        self.ns_only = ns_only
        self.ttl = ttl

    def __repr__(self):
        return "BehaviorAnswer(%r, rcode=%d)" % (self.addresses, self.rcode)


class Behavior:
    """Base class; ``answer`` returns a :class:`BehaviorAnswer` or ``None``
    to defer to the next behavior in the resolver's list."""

    def answer(self, resolver, qname, network):
        raise NotImplementedError

    @staticmethod
    def _name_matches(qname, domains):
        """Suffix matching: a behavior for example.com also covers
        www.example.com."""
        name = normalize_name(qname)
        labels = name.split(".")
        for i in range(len(labels)):
            if ".".join(labels[i:]) in domains:
                return True
        return False


class _DomainTargetedBehavior(Behavior):
    """Shared base for behaviors that act on a fixed set of domains."""

    def __init__(self, domains):
        self.domains = {normalize_name(d) for d in domains}

    def targets(self, qname):
        return self._name_matches(qname, self.domains)


class CensorshipBehavior(_DomainTargetedBehavior):
    """Redirects censored domains to a country's landing-page IPs."""

    def __init__(self, domains, landing_ips, country=None):
        super().__init__(domains)
        self.landing_ips = list(landing_ips)
        self.country = country

    def answer(self, resolver, qname, network):
        if not self.targets(qname):
            return None
        index = stable_hash((resolver.ip, normalize_name(qname))) % len(
            self.landing_ips)
        return BehaviorAnswer([self.landing_ips[index]])


class BlockingBehavior(_DomainTargetedBehavior):
    """Redirects blocked domains (malware, adult, …) to a blocking page —
    parental-control, ISP, or security-provider landing pages.

    With ``empty_answer=True`` the resolver suppresses the domain with a
    NOERROR-empty response instead (the protective resolvers behind the
    Malware set's elevated empty share, §4.1).
    """

    def __init__(self, domains, blocking_ip, empty_answer=False):
        super().__init__(domains)
        self.blocking_ip = blocking_ip
        self.empty_answer = empty_answer

    def answer(self, resolver, qname, network):
        if not self.targets(qname):
            return None
        if self.empty_answer:
            return BehaviorAnswer(empty=True)
        return BehaviorAnswer([self.blocking_ip])


class NxRedirectBehavior(Behavior):
    """DNS error monetization: answers NXDOMAIN lookups with a search/ad
    page IP instead of the error (Weaver et al.'s focus, §4.2 Search)."""

    def __init__(self, search_ip):
        self.search_ip = search_ip

    def answer(self, resolver, qname, network):
        honest = resolver.resolve_honest(qname, network)
        if honest.rcode == RCODE_NXDOMAIN or (
                honest.rcode == RCODE_NOERROR and not honest.addresses):
            return BehaviorAnswer([self.search_ip])
        return BehaviorAnswer(honest.addresses, rcode=honest.rcode,
                              ttl=honest.ttl)


class StaticIpBehavior(Behavior):
    """Returns one static IP regardless of the queried name (4.4% of
    suspicious resolvers, §4.1)."""

    def __init__(self, address):
        self.address = address

    def answer(self, resolver, qname, network):
        return BehaviorAnswer([self.address])


class SelfIpBehavior(Behavior):
    """Returns the resolver's own IP — the 8,194 resolvers of §4.1 whose
    answers lead to their own router/camera login pages."""

    def answer(self, resolver, qname, network):
        return BehaviorAnswer([resolver.ip])


class SameNetworkBehavior(Behavior):
    """Returns a (usually dead) address in the resolver's own network —
    the §4.2 unfetchable tuples where "up to 32.2% replied with IP
    addresses located in the same AS or /24 network as the resolver"
    (captive portals serving content to on-net clients only)."""

    def __init__(self, offset=199):
        self.offset = offset

    def answer(self, resolver, qname, network):
        from repro.netsim.address import int_to_ip, ip_to_int
        base = ip_to_int(resolver.ip) & 0xFFFFFF00
        return BehaviorAnswer([int_to_ip(base | (self.offset & 0xFF))])


class LanIpBehavior(Behavior):
    """Returns a LAN address (captive portals serving the login page only
    inside specific IP ranges — §4.2's unreachable 11.1%)."""

    def __init__(self, lan_ip="192.168.1.1"):
        self.lan_ip = lan_ip

    def answer(self, resolver, qname, network):
        return BehaviorAnswer([self.lan_ip])


class AdInjectBehavior(_DomainTargetedBehavior):
    """Redirects ad-provider domains to injection/replacement hosts."""

    def __init__(self, ad_domains, inject_ips):
        super().__init__(ad_domains)
        self.inject_ips = list(inject_ips)

    def answer(self, resolver, qname, network):
        if not self.targets(qname):
            return None
        index = stable_hash(resolver.ip, normalize_name(qname)) % len(
            self.inject_ips)
        return BehaviorAnswer([self.inject_ips[index]])


class ProxyAllBehavior(Behavior):
    """Answers every existing domain with transparent-proxy IPs (§4.3)."""

    def __init__(self, proxy_ips):
        self.proxy_ips = list(proxy_ips)

    def answer(self, resolver, qname, network):
        honest = resolver.resolve_honest(qname, network)
        if honest.rcode != RCODE_NOERROR or not honest.addresses:
            # Keep NXDOMAIN behaviour intact; proxies only cover real sites.
            return BehaviorAnswer(honest.addresses, rcode=honest.rcode,
                                  ttl=honest.ttl)
        index = stable_hash((resolver.ip, normalize_name(qname))) % len(
            self.proxy_ips)
        return BehaviorAnswer([self.proxy_ips[index]])


class PhishingBehavior(_DomainTargetedBehavior):
    """Redirects particular domains (PayPal, banks) to credential-phishing
    hosts while answering everything else honestly."""

    def __init__(self, domains, phishing_ips):
        super().__init__(domains)
        self.phishing_ips = list(phishing_ips)

    def answer(self, resolver, qname, network):
        if not self.targets(qname):
            return None
        index = stable_hash(resolver.ip, normalize_name(qname)) % len(
            self.phishing_ips)
        return BehaviorAnswer([self.phishing_ips[index]])


class MalwareBehavior(_DomainTargetedBehavior):
    """Redirects software-update domains to fake update pages serving
    malware downloaders (§4.3, 228 resolvers / 30 IPs)."""

    def __init__(self, update_domains, malware_ips):
        super().__init__(update_domains)
        self.malware_ips = list(malware_ips)

    def answer(self, resolver, qname, network):
        if not self.targets(qname):
            return None
        index = stable_hash(resolver.ip, normalize_name(qname)) % len(
            self.malware_ips)
        return BehaviorAnswer([self.malware_ips[index]])


class MailRedirectBehavior(_DomainTargetedBehavior):
    """Redirects mail hostnames (IMAP/POP3/SMTP) to listening hosts."""

    def __init__(self, mail_hostnames, mail_ips):
        super().__init__(mail_hostnames)
        self.mail_ips = list(mail_ips)

    def answer(self, resolver, qname, network):
        if not self.targets(qname):
            return None
        index = stable_hash(resolver.ip, normalize_name(qname)) % len(
            self.mail_ips)
        return BehaviorAnswer([self.mail_ips[index]])


class ParkingBehavior(_DomainTargetedBehavior):
    """Sends (typically re-registered/expired) domains to parking IPs."""

    def __init__(self, domains, parking_ips):
        super().__init__(domains)
        self.parking_ips = list(parking_ips)

    def answer(self, resolver, qname, network):
        if not self.targets(qname):
            return None
        index = stable_hash(resolver.ip, normalize_name(qname)) % len(
            self.parking_ips)
        return BehaviorAnswer([self.parking_ips[index]])


class StaleCdnBehavior(_DomainTargetedBehavior):
    """Returns outdated CDN edge addresses that no longer serve content
    (§4.2: "certain resolvers might have delivered outdated IP address
    information for domain names associated with CDN providers")."""

    def __init__(self, domain_to_stale_ips):
        super().__init__(domain_to_stale_ips)
        self.domain_to_stale_ips = {normalize_name(d): list(ips)
                                    for d, ips in domain_to_stale_ips.items()}

    def answer(self, resolver, qname, network):
        name = normalize_name(qname)
        labels = name.split(".")
        for i in range(len(labels)):
            suffix = ".".join(labels[i:])
            if suffix in self.domain_to_stale_ips:
                return BehaviorAnswer(self.domain_to_stale_ips[suffix])
        return None


class EmptyAnswerBehavior(Behavior):
    """NOERROR with an empty answer section for every name (7.3% of
    snooped resolvers; also seen in the domain scans)."""

    def answer(self, resolver, qname, network):
        return BehaviorAnswer(empty=True)


class NsOnlyBehavior(Behavior):
    """Returns only NS records — effectively denying recursive lookups
    (2.0% of suspicious resolvers, §4.1)."""

    def answer(self, resolver, qname, network):
        return BehaviorAnswer(ns_only=True)
