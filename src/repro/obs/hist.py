"""Log-bucketed histograms with exact, order-independent merge.

Latency distributions (probe round trips, shard wall times, fetch
durations) are summarised into logarithmic buckets: eight sub-buckets
per octave (~9% relative resolution), derived from ``math.frexp`` so
bucketing is pure integer arithmetic on the float's exponent/mantissa —
no ``log()`` rounding surprises, and the same value always lands in the
same bucket on every platform.

Merging is *exact*: bucket counts and the integer-nanosecond total add,
min/max select — all commutative and associative — so shard registries
merged in any completion order produce bit-identical snapshots.  (A
float running sum would make merge order observable through the last
ulp; that is why ``total_ns`` is an integer.)
"""

import math

_SUB = 8           # sub-buckets per octave (power of two)
_UNDERFLOW = -(1 << 30)   # bucket index for values <= 0


def bucket_index(value):
    """The histogram bucket that ``value`` (seconds) falls into."""
    if value <= 0.0:
        return _UNDERFLOW
    mantissa, exponent = math.frexp(value)   # value = m * 2**e, m in [0.5, 1)
    sub = int((mantissa - 0.5) * 2 * _SUB)   # 0 .. _SUB-1
    return exponent * _SUB + sub


def bucket_bounds(index):
    """``(low, high)`` value bounds of one bucket index."""
    if index == _UNDERFLOW:
        return (0.0, 0.0)
    exponent, sub = divmod(index, _SUB)
    scale = math.ldexp(1.0, exponent)
    return ((0.5 + sub / (2 * _SUB)) * scale,
            (0.5 + (sub + 1) / (2 * _SUB)) * scale)


class LogHistogram:
    """One mergeable latency distribution (values in seconds)."""

    __slots__ = ("count", "total_ns", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total_ns = 0         # integer nanoseconds: exact merges
        self.min = None
        self.max = None
        self.buckets = {}         # bucket index -> count

    # -- recording --------------------------------------------------------

    def observe(self, value):
        value = float(value)
        self.count += 1
        self.total_ns += int(round(value * 1e9))
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def observe_many(self, values):
        for value in values:
            self.observe(value)

    # -- statistics -------------------------------------------------------

    @property
    def mean(self):
        return (self.total_ns / 1e9 / self.count) if self.count else 0.0

    def percentile(self, q):
        """The ``q``-th percentile (0..100), estimated at bucket
        midpoints and clamped to the exact observed min/max."""
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(self.count * q / 100.0))
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= rank:
                low, high = bucket_bounds(index)
                middle = (low + high) / 2.0
                return min(max(middle, self.min), self.max)
        return self.max

    # -- aggregation ------------------------------------------------------

    def merge(self, other):
        """Fold another histogram in (exact: counts add, bounds select)."""
        self.count += other.count
        self.total_ns += other.total_ns
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        return self

    def snapshot(self):
        """A plain-dict view, suitable for ``json.dump`` (and exact
        restore — bucket keys are stringified indices)."""
        return {
            "count": self.count,
            "total_ns": self.total_ns,
            "min": self.min,
            "max": self.max,
            "buckets": {str(index): count
                        for index, count in sorted(self.buckets.items())},
        }

    @classmethod
    def restore(cls, snapshot):
        histogram = cls()
        histogram.count = snapshot["count"]
        histogram.total_ns = snapshot["total_ns"]
        histogram.min = snapshot["min"]
        histogram.max = snapshot["max"]
        histogram.buckets = {int(index): count
                             for index, count
                             in snapshot["buckets"].items()}
        return histogram

    def format_summary(self):
        """One-line ``p50/p90/p99`` summary for perf reports."""
        if not self.count:
            return "empty"
        return ("n=%d p50=%.4fs p90=%.4fs p99=%.4fs mean=%.4fs"
                % (self.count, self.percentile(50), self.percentile(90),
                   self.percentile(99), self.mean))

    def __repr__(self):
        return "LogHistogram(n=%d, %d buckets)" % (self.count,
                                                   len(self.buckets))
