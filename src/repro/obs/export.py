"""JSONL trace export, import, and schema validation.

One trace file is a sequence of JSON objects, one per line:

* ``{"type": "meta", ...}`` — exactly one, first: trace id, schema
  version, command, and summary tallies;
* ``{"type": "span", ...}`` — one per finished span (see
  :mod:`repro.obs.trace` for the field semantics);
* ``{"type": "flight", ...}`` — one per buffered flight-recorder event;
* ``{"type": "hist", ...}`` — one per perf-registry histogram snapshot.

:func:`validate_trace` enforces the schema (required fields, field
types, the loss/cause invariant: every ``lost`` flight event must carry
a non-null cause) so CI's trace-smoke job and the ``repro trace``
subcommand reject malformed exports instead of mis-rendering them.
"""

import json

SCHEMA_VERSION = 1

_SPAN_FIELDS = ("span_id", "stage", "attrs", "wall_start", "wall_seconds")
_FLIGHT_FIELDS = ("t", "event", "src", "dst")
_LOSS_EVENTS = ("lost", "response_lost")
# Events that must carry a cause: losses, plus pacing suppressions
# (coverage deliberately skipped — always attributed, never counted as
# a wire loss).
_CAUSED_EVENTS = ("lost", "response_lost", "suppressed")


class TraceSchemaError(ValueError):
    """An exported trace line violates the event schema."""


def trace_records(tracer=None, recorder=None, perf=None, meta=None):
    """Generate the export dicts for one run (meta line first)."""
    spans = list(tracer.spans) if tracer is not None else []
    events = recorder.export_events() if recorder is not None else []
    trace_id = tracer.trace_id if tracer is not None else None
    head = {
        "type": "meta",
        "schema_version": SCHEMA_VERSION,
        "trace_id": trace_id,
        "spans": len(spans),
        "flight_events": len(events),
        "flight_events_evicted": (recorder.dropped_events
                                  if recorder is not None else 0),
        "event_counts": (dict(recorder.event_counts)
                         if recorder is not None else {}),
        "drop_causes": (recorder.drop_breakdown()
                        if recorder is not None else {}),
    }
    head.update(meta or {})
    yield head
    for span in spans:
        record = {"type": "span", "trace_id": trace_id}
        record.update(span)
        yield record
    if recorder is not None:
        for event in events:
            record = recorder.event_dict(event)
            record["trace_id"] = trace_id
            yield record
    if perf is not None:
        for name in sorted(getattr(perf, "histograms", {}) or {}):
            yield {"type": "hist", "trace_id": trace_id, "name": name,
                   "snapshot": perf.histograms[name].snapshot()}


def export_trace(path, tracer=None, recorder=None, perf=None, meta=None):
    """Write one JSONL trace file; returns (spans, flight events)."""
    spans = events = 0
    with open(path, "w") as handle:
        for record in trace_records(tracer, recorder, perf, meta):
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            if record["type"] == "span":
                spans += 1
            elif record["type"] == "flight":
                events += 1
    return spans, events


def read_trace(path):
    """Parse one JSONL trace file into a list of record dicts.

    Raises :class:`TraceSchemaError` for anything that is not a JSONL
    text file — including binary garbage, which would otherwise escape
    as a :class:`UnicodeDecodeError` from the line iterator.
    """
    records = []
    with open(path, "r") as handle:
        try:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    raise TraceSchemaError("line %d is not valid JSON"
                                           % lineno)
        except UnicodeDecodeError:
            raise TraceSchemaError(
                "not a JSONL text file (binary or wrong encoding)")
    return records


def _require(record, index, fields):
    for field in fields:
        if field not in record:
            raise TraceSchemaError(
                "record %d (%s) is missing required field %r"
                % (index, record.get("type"), field))


def validate_trace(records):
    """Validate a parsed trace against the event schema.

    Raises :class:`TraceSchemaError` on the first violation; returns a
    summary dict (span/flight counts, loss attribution tally) when the
    trace is well-formed.
    """
    if not records:
        raise TraceSchemaError("empty trace")
    if records[0].get("type") != "meta":
        raise TraceSchemaError("first record must be the meta line")
    if records[0].get("schema_version") != SCHEMA_VERSION:
        raise TraceSchemaError("unsupported schema version %r"
                               % records[0].get("schema_version"))
    span_ids = set()
    spans = flights = losses = attributed = 0
    for index, record in enumerate(records[1:], 1):
        kind = record.get("type")
        if kind == "meta":
            raise TraceSchemaError("duplicate meta line at record %d"
                                   % index)
        if kind == "span":
            _require(record, index, _SPAN_FIELDS)
            if not isinstance(record["attrs"], dict):
                raise TraceSchemaError("record %d: span attrs must be "
                                       "an object" % index)
            if record["span_id"] in span_ids:
                raise TraceSchemaError("record %d: duplicate span id %r"
                                       % (index, record["span_id"]))
            span_ids.add(record["span_id"])
            spans += 1
        elif kind == "flight":
            _require(record, index, _FLIGHT_FIELDS)
            flights += 1
            if record["event"] in _CAUSED_EVENTS:
                if record["event"] in _LOSS_EVENTS:
                    losses += 1
                if record.get("cause"):
                    if record["event"] in _LOSS_EVENTS:
                        attributed += 1
                else:
                    raise TraceSchemaError(
                        "record %d: %s event carries no drop cause"
                        % (index, record["event"]))
        elif kind == "hist":
            _require(record, index, ("name", "snapshot"))
        else:
            raise TraceSchemaError("record %d has unknown type %r"
                                   % (index, kind))
    # Parentage must resolve within the trace (roots have null parents).
    for index, record in enumerate(records[1:], 1):
        if record.get("type") != "span":
            continue
        parent = record.get("parent_id")
        if parent is not None and parent not in span_ids:
            raise TraceSchemaError(
                "record %d: span %r references unknown parent %r"
                % (index, record["span_id"], parent))
    return {"spans": spans, "flight_events": flights,
            "losses": losses, "losses_attributed": attributed}
