"""repro.obs — tracing, flight recording, and histogram metrics.

One bundle, :class:`Observability`, owns the three instruments and
attaches them to a simulated :class:`~repro.netsim.network.Network`:

* :class:`~repro.obs.trace.Tracer` — nested spans across scan shards,
  pipeline stages, and checkpoint resumes;
* :class:`~repro.obs.flight.FlightRecorder` — a bounded ring of
  wire-level probe events with per-loss drop-cause attribution;
* :class:`~repro.obs.hist.LogHistogram` — mergeable latency
  distributions, surfaced through :class:`~repro.perf.metrics.PerfRegistry`.

Disabled observability installs *nothing*: ``network.tracer`` and
``network.recorder`` stay ``None`` and the probe hot path pays a single
attribute test, which is how the scan/pipeline perf gates keep holding
with tracing off.
"""

from repro.obs.trace import Tracer
from repro.obs.flight import (FlightRecorder, FAULT_CAUSE_PREFIX,
                              DEFENSE_CAUSE_PREFIX, DELTA_CAUSE_PREFIX,
                              DEFAULT_CAPACITY)
from repro.obs.hist import LogHistogram
from repro.obs.export import (export_trace, read_trace, trace_records,
                              validate_trace, TraceSchemaError,
                              SCHEMA_VERSION)
from repro.obs.report import render_trace_report

__all__ = [
    "Observability", "Tracer", "FlightRecorder", "LogHistogram",
    "export_trace", "read_trace", "trace_records", "validate_trace",
    "render_trace_report", "TraceSchemaError", "SCHEMA_VERSION",
    "FAULT_CAUSE_PREFIX", "DEFENSE_CAUSE_PREFIX", "DELTA_CAUSE_PREFIX",
    "DEFAULT_CAPACITY",
]


class Observability:
    """The per-run observability bundle (tracer + flight recorder)."""

    def __init__(self, clock=None, trace_id=None, seed=None,
                 ring=DEFAULT_CAPACITY, enabled=True):
        self.enabled = enabled
        if enabled:
            self.tracer = Tracer(clock=clock, trace_id=trace_id, seed=seed)
            self.recorder = FlightRecorder(capacity=ring)
        else:
            self.tracer = None
            self.recorder = None

    def install(self, network):
        """Attach (or, when disabled, verifiably *not* attach) the
        instruments to a network's hot path."""
        network.tracer = self.tracer
        network.recorder = self.recorder
        return self

    def export(self, path, perf=None, meta=None):
        """Write this run's trace to ``path`` (JSONL)."""
        return export_trace(path, tracer=self.tracer,
                            recorder=self.recorder, perf=perf, meta=meta)
