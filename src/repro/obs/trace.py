"""Span tracing for the scan/classify stack.

A :class:`Tracer` hands out lightweight spans — plain dicts with a
``trace_id``/``span_id``/``parent_id`` triple, a stage name, free-form
attributes, and both wall-clock and simulated-clock durations — through
a context-manager API::

    with tracer.span("scan", shards=4):
        with tracer.span("shard", start=0, stop=512):
            ...

Spans nest via an explicit stack, so parentage needs no thread-locals
and survives ``os.fork``: a shard worker inherits the parent's tracer
copy-on-write with the enclosing span still on the stack, calls
:meth:`Tracer.rebase` to start a fresh (uniquely prefixed) span
namespace, and ships its finished spans back over the result pipe where
the supervisor merges them in deterministic shard order.

Span ids are sequential within a tracer (``s1``, ``s2``, ...; worker
tracers prefix theirs ``w<origin>.<attempt>:``), never random — the
whole trace is reproducible for a fixed seed, modulo wall-clock
durations.  The trace id itself is stamped at export time, so a
checkpoint resume that :meth:`adopt`\\ s the interrupted run's trace
context retroactively places every span of the resumed process into the
original trace.

Disabled tracing is represented by *no tracer at all* (``network.tracer
is None``); instrumentation points guard with one attribute test and
allocate nothing.
"""

import time
from contextlib import contextmanager

_TRACE_SCHEMA_VERSION = 1


def _new_trace_id(seed=None):
    """A 16-hex-digit trace id (seed-derived when one is given)."""
    if seed is not None:
        return "%016x" % ((seed * 0x9E3779B97F4A7C15) & ((1 << 64) - 1))
    import os
    return os.urandom(8).hex()


class Tracer:
    """Creates, nests, and collects spans for one run."""

    def __init__(self, clock=None, trace_id=None, seed=None, prefix="s"):
        self.clock = clock
        self.trace_id = trace_id or _new_trace_id(seed)
        self.prefix = prefix
        self.seq = 0
        self.stack = []               # active span ids, innermost last
        self.spans = []               # finished span dicts
        self._origin = time.perf_counter()

    # -- span API ---------------------------------------------------------

    @contextmanager
    def span(self, stage, **attrs):
        """Open one span; yields the (mutable) span dict."""
        self.seq += 1
        span = {
            "span_id": "%s%d" % (self.prefix, self.seq),
            "parent_id": self.stack[-1] if self.stack else None,
            "stage": stage,
            "attrs": attrs,
            "wall_start": time.perf_counter() - self._origin,
            "wall_seconds": None,
            "sim_start": self.clock.now if self.clock is not None else None,
            "sim_seconds": None,
            "status": "ok",
        }
        self.stack.append(span["span_id"])
        try:
            yield span
        except BaseException:
            span["status"] = "error"
            raise
        finally:
            self.stack.pop()
            span["wall_seconds"] = (time.perf_counter() - self._origin
                                    - span["wall_start"])
            if self.clock is not None and span["sim_start"] is not None:
                span["sim_seconds"] = self.clock.now - span["sim_start"]
            self.spans.append(span)

    def emit(self, stage, parent_id=None, **attrs):
        """Record one instantaneous (zero-duration) span."""
        with self.span(stage, **attrs) as span:
            if parent_id is not None:
                span["parent_id"] = parent_id
        return self.spans[-1]

    @property
    def active_span_id(self):
        return self.stack[-1] if self.stack else None

    # -- fork-worker transport --------------------------------------------

    def rebase(self, prefix):
        """Re-namespace this tracer for a forked worker: fresh span list
        and a unique id prefix, keeping the inherited active stack so
        new spans still parent under the span open at fork time."""
        self.prefix = prefix
        self.seq = 0
        self.spans = []

    def absorb(self, spans, parent_id=None):
        """Merge spans shipped back from a worker (or restored from a
        checkpoint).  Root spans (parent absent from the batch) are
        re-parented under ``parent_id`` (default: the current active
        span), stitching the worker's subtree into this trace."""
        if not spans:
            return
        if parent_id is None:
            parent_id = self.active_span_id
        local_ids = {span["span_id"] for span in spans}
        for span in spans:
            if span["parent_id"] is not None \
                    and span["parent_id"] not in local_ids:
                span = dict(span)
                span["parent_id"] = parent_id
            self.spans.append(span)

    # -- checkpoint resume ------------------------------------------------

    def context(self):
        """The durable trace context captured at a commit boundary."""
        return {"trace_id": self.trace_id, "seq": self.seq}

    def adopt(self, context):
        """Continue an interrupted run's trace: same trace id, span
        sequence resumed past the captured position."""
        if not context:
            return
        self.trace_id = context["trace_id"]
        if context.get("seq", 0) > self.seq:
            self.seq = context["seq"]

    def __repr__(self):
        return "Tracer(%s, %d spans, depth %d)" % (
            self.trace_id, len(self.spans), len(self.stack))
