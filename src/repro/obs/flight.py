"""The packet flight recorder: a bounded ring of wire-level events.

Every UDP probe the simulated network carries can be recorded as a
compact tuple — sent, answered, or lost — and every *lost* probe names
the exact cause that ate it: a middlebox path drop, the baseline loss
draw, or a specific fault rule from :mod:`repro.faults` (``fault:``
prefix, e.g. ``fault:burst_loss``, ``fault:rate_limited``).  That is
the attribution ZDNS-style per-query status output provides and flat
counters cannot: *which* rule, on *which* flow.

The buffer is a ``collections.deque`` ring bounded by ``capacity`` —
memory stays fixed no matter how long a campaign runs — while the
per-cause tallies in :attr:`cause_counts` and the event-kind tallies in
:attr:`event_counts` stay exact even after the ring has wrapped.

Events are tuples, not objects: ``(sim_time, event, src_ip, dst,
cause, latency)`` where ``dst`` may be an integer address (the
scanner's wire-level fast path never builds the dotted quad) and is
normalised at export time.  A disabled recorder is ``None`` on the
network; the hot path pays one attribute test and allocates nothing.
"""

from repro.netsim.address import int_to_ip

# Event kinds.
SENT = "sent"
ANSWERED = "answered"
LOST = "lost"                 # query never reached the destination
RESPONSE_LOST = "response_lost"   # answered, but the reply was dropped
CORRUPTED = "corrupted"       # delivered with a damaged payload
TRUNCATED = "truncated"       # delivered truncated below parseability
SUPPRESSED = "suppressed"     # never sent: pacing gave the window up
DELTA = "delta"               # delta-scan decision (carried/escalated)

EVENT_KINDS = (SENT, ANSWERED, LOST, RESPONSE_LOST, CORRUPTED,
               TRUNCATED, SUPPRESSED, DELTA)

# Drop causes are free-form strings; fault-rule attributions carry this
# prefix so "100% of injected losses are attributed" is checkable.
FAULT_CAUSE_PREFIX = "fault:"
# Defensive-middlebox attributions (rate limiters, blocklisters,
# tarpits — see repro.netsim.defense) carry this prefix.
DEFENSE_CAUSE_PREFIX = "defense:"
# Delta-scanning attributions (verdicts carried forward, audit drift,
# window/global full-sweep escalations — see repro.scanner.delta)
# carry this prefix, so "every unprobed verdict is attributed" is as
# checkable as loss attribution.
DELTA_CAUSE_PREFIX = "delta:"

DEFAULT_CAPACITY = 65536


class FlightRecorder:
    """Bounded ring buffer of wire-level probe events with exact tallies."""

    __slots__ = ("capacity", "events", "cause_counts", "event_counts",
                 "dropped_events")

    def __init__(self, capacity=DEFAULT_CAPACITY):
        from collections import deque
        self.capacity = capacity
        self.events = deque(maxlen=capacity)
        self.cause_counts = {}        # cause -> count (losses only)
        self.event_counts = {}        # event kind -> count
        self.dropped_events = 0       # ring overwrites (len pushed out)

    # -- recording (the network hot path calls this) ----------------------

    def record(self, now, event, src_ip, dst, cause=None, latency=None):
        events = self.events
        if len(events) == self.capacity:
            self.dropped_events += 1
        events.append((now, event, src_ip, dst, cause, latency))
        counts = self.event_counts
        counts[event] = counts.get(event, 0) + 1
        if cause is not None:
            causes = self.cause_counts
            causes[cause] = causes.get(cause, 0) + 1

    # -- fork-worker transport --------------------------------------------

    def reset(self):
        """Clear the buffer and tallies (a forked worker's first act, so
        only shard-local events ride back over the result pipe)."""
        self.events.clear()
        self.cause_counts = {}
        self.event_counts = {}
        self.dropped_events = 0

    def export_events(self):
        """The buffered events as a picklable list."""
        return list(self.events)

    def export_state(self):
        """Events *and* exact tallies, for the result-pipe payload (the
        tallies survive ring eviction; replaying events alone would not)."""
        return {"events": list(self.events),
                "event_counts": dict(self.event_counts),
                "cause_counts": dict(self.cause_counts),
                "dropped_events": self.dropped_events}

    def absorb(self, events):
        """Merge a worker's (or a restored shard's) event batch."""
        for event in events:
            self.record(*event)

    def absorb_state(self, state):
        """Merge an :meth:`export_state` payload: events ride into the
        ring, tallies add exactly (never recounted from the ring)."""
        events = self.events
        for event in state["events"]:
            if len(events) == self.capacity:
                self.dropped_events += 1
            events.append(tuple(event))
        for kind, count in state["event_counts"].items():
            self.event_counts[kind] = self.event_counts.get(kind, 0) + count
        for cause, count in state["cause_counts"].items():
            self.cause_counts[cause] = self.cause_counts.get(cause, 0) + count
        self.dropped_events += state.get("dropped_events", 0)

    # -- views ------------------------------------------------------------

    def drop_breakdown(self):
        """``{cause: count}`` over every recorded loss, exact."""
        return dict(self.cause_counts)

    @staticmethod
    def event_dict(event):
        """One buffered tuple as the exported JSONL dict."""
        now, kind, src_ip, dst, cause, latency = event
        if isinstance(dst, int):
            dst = int_to_ip(dst)
        return {"type": "flight", "t": now, "event": kind, "src": src_ip,
                "dst": dst, "cause": cause, "latency": latency}

    def __repr__(self):
        return "FlightRecorder(%d/%d events, %d causes)" % (
            len(self.events), self.capacity, len(self.cause_counts))
