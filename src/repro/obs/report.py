"""Human-readable rendering of an exported trace.

Backs the ``repro trace`` CLI subcommand: given the parsed JSONL
records, renders

* a per-stage timeline — spans aggregated by stage name, with call
  counts, total/max wall seconds, and simulated-clock time covered;
* the critical path — the root-to-leaf chain of spans with the largest
  wall-clock cost, the first place to look when a campaign is slow;
* the drop-cause breakdown — every recorded probe loss, attributed
  (fault rules appear under their ``fault:`` names);
* histogram summaries (p50/p90/p99) for any exported latency
  distributions.
"""

from repro.obs.hist import LogHistogram

_BAR_WIDTH = 32


def _spans(records):
    return [r for r in records if r.get("type") == "span"]


def _flights(records):
    return [r for r in records if r.get("type") == "flight"]


def stage_summary(records):
    """Aggregate spans by stage: count, total/max wall, sim seconds."""
    stages = {}
    for span in _spans(records):
        entry = stages.setdefault(span["stage"], {
            "stage": span["stage"], "count": 0, "wall_seconds": 0.0,
            "max_wall_seconds": 0.0, "sim_seconds": 0.0, "errors": 0,
            "first_start": span["wall_start"]})
        entry["count"] += 1
        wall = span.get("wall_seconds") or 0.0
        entry["wall_seconds"] += wall
        entry["max_wall_seconds"] = max(entry["max_wall_seconds"], wall)
        entry["sim_seconds"] += span.get("sim_seconds") or 0.0
        entry["first_start"] = min(entry["first_start"],
                                   span["wall_start"])
        if span.get("status") == "error":
            entry["errors"] += 1
    return sorted(stages.values(), key=lambda e: e["first_start"])


def critical_path(records):
    """The most expensive root-to-leaf span chain, as a span list.

    Cost of a chain is the wall time of its spans; children are walked
    greedily by subtree cost, which on a tree of nested timings yields
    the classic critical path.
    """
    spans = _spans(records)
    if not spans:
        return []
    children = {}
    by_id = {}
    for span in spans:
        by_id[span["span_id"]] = span
        children.setdefault(span.get("parent_id"), []).append(span)

    cost_cache = {}

    def subtree_cost(span):
        span_id = span["span_id"]
        if span_id not in cost_cache:
            own = span.get("wall_seconds") or 0.0
            kids = children.get(span_id, ())
            # A parent's wall time already covers its children (nested
            # timing): subtree cost is the max of the span's own wall
            # and its deepest child chain, never the sum.
            cost_cache[span_id] = max(
                [own] + [subtree_cost(kid) for kid in kids])
        return cost_cache[span_id]

    roots = children.get(None, [])
    if not roots:
        # Every span has a parent (absorbed fragments): treat spans
        # whose parent is missing from the export as roots.
        roots = [span for span in spans
                 if span.get("parent_id") not in by_id]
    if not roots:
        return []
    path = []
    node = max(roots, key=subtree_cost)
    while node is not None:
        path.append(node)
        kids = children.get(node["span_id"])
        node = max(kids, key=subtree_cost) if kids else None
    return path


def drop_breakdown(records):
    """``{cause: count}`` over the exported loss events plus the meta
    line's exact tallies (which survive ring eviction)."""
    causes = {}
    for record in records:
        if record.get("type") == "meta":
            for cause, count in (record.get("drop_causes") or {}).items():
                causes[cause] = max(causes.get(cause, 0), count)
    if causes:
        return causes
    for event in _flights(records):
        cause = event.get("cause")
        if cause:
            causes[cause] = causes.get(cause, 0) + 1
    return causes


def render_trace_report(records):
    """The full ``repro trace`` report as one string."""
    meta = records[0] if records and records[0].get("type") == "meta" \
        else {}
    lines = []
    lines.append("trace %s — %d spans, %d flight events%s"
                 % (meta.get("trace_id") or "<unknown>",
                    meta.get("spans", len(_spans(records))),
                    meta.get("flight_events", len(_flights(records))),
                    (" (%d evicted from ring)"
                     % meta["flight_events_evicted"]
                     if meta.get("flight_events_evicted") else "")))
    if meta.get("command"):
        lines.append("command: %s" % meta["command"])

    stages = stage_summary(records)
    if stages:
        lines.append("")
        lines.append("timeline (per stage, in first-start order):")
        widest = max(e["wall_seconds"] for e in stages) or 1.0
        for entry in stages:
            bar = "#" * max(1, int(_BAR_WIDTH * entry["wall_seconds"]
                                   / widest)) \
                if entry["wall_seconds"] > 0 else ""
            flags = " [%d errors]" % entry["errors"] \
                if entry["errors"] else ""
            lines.append(
                "  %-24s %5dx %9.3fs  %-*s%s"
                % (entry["stage"], entry["count"], entry["wall_seconds"],
                   _BAR_WIDTH, bar, flags))

    path = critical_path(records)
    if path:
        lines.append("")
        lines.append("critical path (wall seconds):")
        for span in path:
            label = span["stage"]
            attrs = span.get("attrs") or {}
            detail = ", ".join("%s=%s" % (k, attrs[k])
                               for k in sorted(attrs))
            lines.append("  %9.3fs  %s%s"
                         % (span.get("wall_seconds") or 0.0, label,
                            ("  (%s)" % detail) if detail else ""))

    causes = drop_breakdown(records)
    lines.append("")
    if causes:
        lines.append("drop causes (every recorded loss, attributed):")
        total = sum(causes.values())
        for cause in sorted(causes, key=lambda c: (-causes[c], c)):
            lines.append("  %-28s %8d  (%5.1f%%)"
                         % (cause, causes[cause],
                            100.0 * causes[cause] / total))
    else:
        lines.append("drop causes: none recorded")

    histograms = [r for r in records if r.get("type") == "hist"]
    if histograms:
        lines.append("")
        lines.append("latency histograms:")
        for record in histograms:
            histogram = LogHistogram.restore(record["snapshot"])
            lines.append("  %-28s %s" % (record["name"],
                                         histogram.format_summary()))
    return "\n".join(lines)
