"""Simulated TLS certificates and a trust store.

The prefilter (§3.4) probes unfiltered IPs with two HTTPS handshakes per
(domain, IP) pair — one with SNI, one without — and accepts an IP as
legitimate when a valid, trusted certificate for the domain comes back
(or, for major CDNs, when the non-SNI default certificate carries the
provider's known common name).  This module models exactly the pieces
those checks need: subject CN, SAN list, issuer, validity, wildcards.
"""

from repro.dnswire.name import normalize_name


class Certificate:
    """An X.509-shaped certificate: CN, SANs, issuer, self-signed flag."""

    def __init__(self, common_name, san=(), issuer="SimTrust CA",
                 self_signed=False, not_after=None):
        self.common_name = common_name
        self.san = tuple(san) if san else (common_name,)
        self.issuer = issuer
        self.self_signed = self_signed
        self.not_after = not_after  # None => far future

    def names(self):
        return (self.common_name,) + self.san

    def matches(self, domain):
        """True when the certificate covers ``domain`` (incl. wildcards)."""
        domain = normalize_name(domain)
        for name in self.names():
            name = normalize_name(name)
            if name == domain:
                return True
            if name.startswith("*."):
                suffix = name[2:]
                remainder = domain[:-len(suffix)].rstrip(".") \
                    if domain.endswith("." + suffix) else None
                # A wildcard covers exactly one additional label.
                if remainder and "." not in remainder:
                    return True
        return False

    def __repr__(self):
        return "Certificate(CN=%r, self_signed=%s)" % (
            self.common_name, self.self_signed)


class CertificateAuthority:
    """Issues certificates and validates chains against a trust store."""

    def __init__(self, name="SimTrust CA"):
        self.name = name
        self.issued = []

    def issue(self, common_name, san=()):
        certificate = Certificate(common_name, san=san, issuer=self.name)
        self.issued.append(certificate)
        return certificate

    def issue_wildcard(self, domain):
        return self.issue("*.%s" % normalize_name(domain),
                          san=("*.%s" % normalize_name(domain),
                               normalize_name(domain)))

    @staticmethod
    def self_signed(common_name, san=()):
        """A self-signed certificate, as phishing hosts present (§4.3)."""
        return Certificate(common_name, san=san, issuer=common_name,
                           self_signed=True)

    def validates(self, certificate, domain, now=None):
        """Full client-side check: trusted issuer, not expired, name match."""
        if certificate is None:
            return False
        if certificate.self_signed or certificate.issuer != self.name:
            return False
        if (certificate.not_after is not None and now is not None
                and now > certificate.not_after):
            return False
        return certificate.matches(domain)
