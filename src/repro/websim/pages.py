"""Pages served by manipulated resolutions (§4.2 / §4.3).

Every non-legitimate destination the paper catalogued is generated here:
censorship landing pages (with the court/authority text fragments the
labeler keys on), ISP blocking pages, parking lots, search redirects,
error pages, captive portals and router logins, phishing clones (the
PayPal page rebuilt from 46 ``<img>`` tags plus a credential form posting
to a ``.php``), ad injections/replacements/blanking, and fake update pages
serving malware downloaders.
"""

import random

from repro.websim.html import HtmlPage

# Country code -> (authority name, language tag) for censorship pages.
CENSOR_AUTHORITIES = {
    "CN": ("Ministry of Public Security", "zh"),
    "IR": ("Working Group to Determine Instances of Criminal Content", "fa"),
    "TR": ("Telekomunikasyon Iletisim Baskanligi (TIB)", "tr"),
    "ID": ("Ministry of Communication and Information Technology", "id"),
    "MY": ("Malaysian Communications and Multimedia Commission", "ms"),
    "RU": ("Roskomnadzor", "ru"),
    "IT": ("Autorita per le Garanzie nelle Comunicazioni", "it"),
    "GR": ("Hellenic Gaming Commission", "el"),
    "BE": ("Belgian Gaming Commission", "nl"),
    "MN": ("Communications Regulatory Commission", "mn"),
    "EE": ("Estonian Tax and Customs Board", "et"),
    "IN": ("Department of Telecommunications", "hi"),
    "TH": ("Ministry of Digital Economy and Society", "th"),
    "VN": ("Ministry of Information and Communications", "vi"),
    "SA": ("Communications and Information Technology Commission", "ar"),
    "EG": ("National Telecom Regulatory Authority", "ar"),
    "PK": ("Pakistan Telecommunication Authority", "ur"),
    "AE": ("Telecommunications Regulatory Authority", "ar"),
    "KR": ("Korea Communications Standards Commission", "ko"),
    "DE": ("Bundesprufstelle", "de"),
    "FR": ("ARJEL", "fr"),
    "GB": ("Internet Watch Foundation", "en"),
    "AU": ("Australian Communications and Media Authority", "en"),
    "DZ": ("Autorite de Regulation", "ar"),
    "MA": ("Agence Nationale de Reglementation", "ar"),
    "TN": ("Agence Tunisienne d'Internet", "ar"),
    "BY": ("Operational and Analytical Center", "ru"),
    "KZ": ("Ministry of Information", "kk"),
    "UZ": ("Uzbek Agency for Communications", "uz"),
    "CO": ("Ministerio de Tecnologias", "es"),
    "MX": ("Instituto Federal de Telecomunicaciones", "es"),
    "BR": ("Conselho de Justica", "pt"),
    "AR": ("Comision Nacional de Comunicaciones", "es"),
    "PH": ("National Telecommunications Commission", "en"),
}

CENSOR_COUNTRIES = tuple(sorted(CENSOR_AUTHORITIES))


def censorship_landing(country, variant=0):
    """A censorship landing page for ``country``.

    Carries the ``blocked by the order of ... court/authority`` text
    fragment the paper's analysts used to distinguish censorship from
    ordinary blocking.
    """
    authority, language = CENSOR_AUTHORITIES.get(
        country, ("National Authority", "en"))
    page = HtmlPage("Access Denied", language=language)
    page.add_heading("Access to this website has been blocked")
    page.add_paragraph(
        "This website has been blocked by the order of the competent "
        "court/authority (%s) in accordance with national law." % authority)
    page.add_paragraph("Reference: %s-BLK-%04d" % (country, 1000 + variant))
    page.add_image("/static/%s-seal.png" % country.lower(),
                   alt="official seal")
    return page.render()


def isp_blocking_page(provider="SafeNet Shield", reason="malicious"):
    """A non-governmental blocking page (parental control, AV, ISP)."""
    page = HtmlPage("%s - Page Blocked" % provider)
    page.add_heading("This page has been blocked")
    reasons = {
        "malicious": "The requested domain is associated with malware "
                     "distribution and has been blocked to protect your "
                     "computer.",
        "adult": "The requested website is categorised as adult content "
                 "and has been blocked by your content filter settings.",
        "dating": "The requested website is categorised as dating and has "
                  "been blocked by your content filter settings.",
        "phishing": "The requested website has been reported as a phishing "
                    "page.",
    }
    page.add_paragraph(reasons.get(reason, reasons["malicious"]))
    page.add_paragraph("Protection provided by %s." % provider)
    page.add_link("https://support.%s/unblock"
                  % provider.lower().replace(" ", ""), "Request a review")
    return page.render()


def parking_page(domain, reseller="DomainMonetizer", seed=0):
    """A domain-parking lot with sponsored links (ad monetization)."""
    rng = random.Random("%s|%s|%s" % (seed, domain, reseller))
    page = HtmlPage("%s - This domain may be for sale" % domain)
    page.add_heading(domain)
    page.add_paragraph("This domain is parked free, courtesy of %s."
                       % reseller)
    page.add_paragraph("The domain %s may be for sale by its owner!" % domain)
    for i in range(8):
        page.add_link("http://click.%s.example/r?pos=%d&k=%06d"
                      % (reseller.lower(), i, rng.randint(0, 999999)),
                      "Sponsored listing %d" % (i + 1))
    page.add_script(src="http://park.%s.example/feed.js" % reseller.lower())
    return page.render()


def search_page(query="", provider="WebSearch"):
    """A search-redirect page (NXDOMAIN monetization, §4.2 Search)."""
    page = HtmlPage("%s - Search" % provider)
    page.add_heading(provider)
    page.add_form("/search", [("q", "text")], method="GET",
                  submit_label="Search")
    if query:
        page.add_paragraph('Did you mean: <a href="/search?q=%s">%s</a>?'
                           % (query, query))
        page.add_paragraph("No results found for '%s'. "
                           "Try the sponsored results below." % query)
    for i in range(5):
        page.add_link("http://ads.%s.example/c?slot=%d"
                      % (provider.lower(), i), "Sponsored result %d" % (i + 1))
    return page.render()


def fake_search_with_ads(provider="Google"):
    """Mimicry of a search page with ad banners under the search bar."""
    page = HtmlPage(provider)
    page.add_image("/logo.png", alt=provider)
    page.add_form("/search", [("q", "text")], method="GET",
                  submit_label="%s Search" % provider)
    for i in range(3):
        page.add_div('<a href="http://adclick.example/b%d">'
                     '<img src="http://adclick.example/banner%d.gif" '
                     'alt="ad"></a>' % (i, i), css_class="ad-banner")
    page.add_script(src="http://adclick.example/inject.js")
    return page.render()


def error_page(status=404):
    """A generic web-server error page (HTTP Error category)."""
    reasons = {400: "Bad Request", 403: "Forbidden", 404: "Not Found",
               500: "Internal Server Error", 502: "Bad Gateway",
               503: "Service Unavailable"}
    reason = reasons.get(status, "Error")
    page = HtmlPage("%d %s" % (status, reason))
    page.add_heading("%d %s" % (status, reason))
    page.add_paragraph("The requested URL was not found on this server.")
    page.add_raw("<hr><address>Apache/2.2.22 Server</address>")
    return page.render()


def captive_portal(operator="City Hotel", kind="hotel"):
    """A captive-portal login (hotels, ISPs, educational institutions)."""
    page = HtmlPage("%s - Network Login" % operator)
    page.add_heading("Welcome to the %s network" % operator)
    page.add_paragraph("Please log in to access the Internet.")
    fields = {
        "hotel": [("roomnumber", "text"), ("lastname", "text")],
        "isp": [("customerid", "text"), ("password", "password")],
        "edu": [("studentid", "text"), ("password", "password")],
    }.get(kind, [("username", "text"), ("password", "password")])
    page.add_form("/portal/login", fields, submit_label="Connect")
    page.add_paragraph("By connecting you accept the terms of use.")
    return page.render()


ROUTER_VENDORS = ("TP-LINK", "ZyXEL")


def router_login(vendor="TP-LINK", model=None):
    """The web login page of consumer routing equipment.

    91.7% of Login-category resolvers forwarded to router login pages of
    two large manufacturers (§4.2) — these are the two shapes.
    """
    model = model or {"TP-LINK": "TL-WR841N", "ZyXEL": "P-660HN-T1A"}.get(
        vendor, "WR-1000")
    page = HtmlPage("%s %s - Login" % (vendor, model))
    page.add_image("/img/%s-logo.gif" % vendor.lower(), alt=vendor)
    page.add_heading("%s Router %s" % (vendor, model), level=2)
    page.add_form("/userRpm/LoginRpm.htm",
                  [("username", "text"), ("password", "password")],
                  submit_label="Login")
    page.add_script(code='var modelName="%s";document.forms[0]'
                         '.username.focus();' % model)
    return page.render()


def camera_login(brand="NetCam"):
    """The web interface of an IP-based camera (the 574 IPs of §4.1)."""
    page = HtmlPage("%s IP Camera" % brand)
    page.add_heading("%s Network Camera" % brand)
    page.add_form("/cgi-bin/login.cgi",
                  [("user", "text"), ("pwd", "password")],
                  submit_label="Sign in")
    page.add_script(code="checkActiveX('%sViewer');" % brand)
    return page.render()


def webmail_login(provider="ISP Webmail"):
    page = HtmlPage("%s - Sign In" % provider)
    page.add_heading(provider)
    page.add_form("/mail/login", [("email", "text"),
                                  ("password", "password")],
                  submit_label="Sign in")
    return page.render()


def phishing_paypal():
    """The PayPal phishing page of §4.3: the body consists of 46 ``<img>``
    tags reproducing the website plus an HTML form forwarding credentials
    to a ``.php`` file via HTTP POST."""
    page = HtmlPage("PayPal - Log In")
    for i in range(46):
        page.add_image("slices/paypal_%02d.jpg" % i, alt="")
    page.add_form("gate/collect.php",
                  [("login_email", "text"), ("login_password", "password")],
                  method="POST", submit_label="Log In")
    return page.render()


def phishing_bank(original_html, collector="conferma.php"):
    """A bank-clone phish: the original page with its form action swapped
    to the attacker's collector script (§4.3 Italian bank case)."""
    swapped = original_html
    marker = '<form action="'
    start = swapped.find(marker)
    if start >= 0:
        end = swapped.find('"', start + len(marker))
        swapped = swapped[:start + len(marker)] + collector + swapped[end:]
    return swapped


def inject_ad_banner(original_html, ad_host="ads-served.example"):
    """Inject an ad banner div right after <body> (§4.3 ad injections)."""
    injected = ('<div class="injected-banner"><a href="http://%s/click">'
                '<img src="http://%s/banner.gif" alt="ad"></a></div>'
                % (ad_host, ad_host))
    return original_html.replace("<body>", "<body>" + injected, 1)


def inject_ad_script(original_html, ad_host="ads-served.example"):
    """Serve suspicious JavaScript in place of ad content."""
    injected = '<script src="http://%s/deliver.js"></script>' % ad_host
    return original_html.replace("<body>", "<body>" + injected, 1)


def blank_ads(original_html):
    """Replace ad markup with empty placeholders (the ad-blocking IPs)."""
    import re
    blanked = re.sub(r"<ins[^>]*>.*?</ins>",
                     '<div class="blocked-ad-placeholder"></div>',
                     original_html)
    blanked = re.sub(r"<script src=\"[^\"]*(ads|pagead)[^\"]*\"></script>",
                     "<!-- ad removed -->", blanked)
    return blanked


def malware_update_page(product="Adobe Flash Player"):
    """A fake update page pushing a malicious installer (§4.3 Malware)."""
    page = HtmlPage("%s Update Required" % product)
    page.add_heading("Critical update available")
    page.add_paragraph("Your version of %s is out of date and may be "
                       "insecure. Install the latest update to continue."
                       % product)
    page.add_image("/img/%s.png" % product.split()[0].lower(), alt=product)
    page.add_link("/downloads/update_installer.exe", "Install update now")
    page.add_script(code="setTimeout(function(){window.location="
                         "'/downloads/update_installer.exe';},3000);")
    return page.render()
