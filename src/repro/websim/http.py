"""Minimal HTTP request/response types used across the simulation.

The acquisition client impersonates the browser the paper used (Firefox
28.0); servers dispatch on the Host header, which is how a bogus IP can be
asked for content "as if it belonged to the original website" (§3.5).
"""

FIREFOX_28_USER_AGENT = ("Mozilla/5.0 (Windows NT 6.1; rv:28.0) "
                         "Gecko/20100101 Firefox/28.0")


class HttpRequest:
    """An HTTP(S) request: method, host, path, scheme, and headers."""

    def __init__(self, host, path="/", method="GET", scheme="http",
                 headers=None, client_ip=None):
        self.host = host
        self.path = path
        self.method = method
        self.scheme = scheme
        self.headers = dict(headers or {})
        self.headers.setdefault("User-Agent", FIREFOX_28_USER_AGENT)
        self.headers.setdefault("Host", host)
        self.client_ip = client_ip

    @property
    def url(self):
        return "%s://%s%s" % (self.scheme, self.host, self.path)

    def __repr__(self):
        return "HttpRequest(%s %s)" % (self.method, self.url)


class HttpResponse:
    """An HTTP(S) response: status, headers, body (HTML text)."""

    def __init__(self, status=200, body="", headers=None, reason=None):
        self.status = status
        self.body = body
        self.headers = dict(headers or {})
        self.headers.setdefault("Content-Type", "text/html; charset=utf-8")
        self.reason = reason or _default_reason(status)

    @property
    def is_redirect(self):
        return self.status in (301, 302, 303, 307, 308) and \
            "Location" in self.headers

    @property
    def location(self):
        return self.headers.get("Location")

    @property
    def is_error(self):
        return self.status >= 400

    @classmethod
    def redirect(cls, location, status=302):
        return cls(status=status, headers={"Location": location},
                   body="<html><body>Moved: <a href=\"%s\">here</a>"
                        "</body></html>" % location)

    @classmethod
    def not_found(cls, body=None):
        return cls(status=404, body=body or _error_body(404, "Not Found"))

    @classmethod
    def server_error(cls, body=None):
        return cls(status=500,
                   body=body or _error_body(500, "Internal Server Error"))

    def __repr__(self):
        return "HttpResponse(%d, %d bytes)" % (self.status, len(self.body))


def _default_reason(status):
    return {
        200: "OK", 301: "Moved Permanently", 302: "Found",
        400: "Bad Request", 403: "Forbidden", 404: "Not Found",
        500: "Internal Server Error", 502: "Bad Gateway",
        503: "Service Unavailable",
    }.get(status, "Unknown")


def _error_body(status, reason):
    return ("<html><head><title>%d %s</title></head>"
            "<body><h1>%d %s</h1><hr><address>httpd</address></body></html>"
            % (status, reason, status, reason))
