"""Deterministic HTML page generation.

The clustering pipeline measures pages by tag multisets, tag order, title,
JavaScript, embedded resources (``src=``) and outgoing links (``href=``),
so generated pages carry realistic amounts of all of these.  Everything is
plain string building — no templates, no randomness beyond the caller's
seeded choices — so a site renders identically across runs.
"""


class HtmlPage:
    """Incremental builder for a complete HTML document."""

    def __init__(self, title, generator=None, language="en"):
        self.title = title
        self.language = language
        self._head = []
        self._body = []
        if generator:
            self.add_meta("generator", generator)

    # -- head ---------------------------------------------------------------

    def add_meta(self, name, content):
        self._head.append('<meta name="%s" content="%s">' % (name, content))
        return self

    def add_stylesheet(self, href):
        self._head.append('<link rel="stylesheet" href="%s">' % href)
        return self

    def add_head_script(self, src=None, code=None):
        self._head.append(_script_tag(src, code))
        return self

    # -- body ----------------------------------------------------------------

    def add_heading(self, text, level=1):
        self._body.append("<h%d>%s</h%d>" % (level, text, level))
        return self

    def add_paragraph(self, text):
        self._body.append("<p>%s</p>" % text)
        return self

    def add_div(self, inner_html, css_class=None):
        if css_class:
            self._body.append('<div class="%s">%s</div>'
                              % (css_class, inner_html))
        else:
            self._body.append("<div>%s</div>" % inner_html)
        return self

    def add_nav(self, links):
        """A navigation bar: list of (href, text) pairs."""
        items = "".join('<li><a href="%s">%s</a></li>' % (href, text)
                        for href, text in links)
        self._body.append("<nav><ul>%s</ul></nav>" % items)
        return self

    def add_link(self, href, text):
        self._body.append('<a href="%s">%s</a>' % (href, text))
        return self

    def add_image(self, src, alt=""):
        self._body.append('<img src="%s" alt="%s">' % (src, alt))
        return self

    def add_script(self, src=None, code=None):
        self._body.append(_script_tag(src, code))
        return self

    def add_iframe(self, src):
        self._body.append('<iframe src="%s"></iframe>' % src)
        return self

    def add_form(self, action, fields, method="POST", submit_label="Submit"):
        """A form with named input fields (login pages, phishing pages)."""
        inputs = "".join(
            '<input type="%s" name="%s">' % (field_type, name)
            for name, field_type in fields)
        self._body.append(
            '<form action="%s" method="%s">%s'
            '<input type="submit" value="%s"></form>'
            % (action, method, inputs, submit_label))
        return self

    def add_table(self, rows):
        body = "".join(
            "<tr>%s</tr>" % "".join("<td>%s</td>" % cell for cell in row)
            for row in rows)
        self._body.append("<table>%s</table>" % body)
        return self

    def add_raw(self, html):
        self._body.append(html)
        return self

    def render(self):
        """Serialise to a full HTML document string."""
        head = "".join(["<title>%s</title>" % self.title] + self._head)
        body = "".join(self._body)
        return ('<!DOCTYPE html><html lang="%s"><head>%s</head>'
                "<body>%s</body></html>" % (self.language, head, body))


def _script_tag(src, code):
    if src is not None:
        return '<script src="%s"></script>' % src
    return "<script>%s</script>" % (code or "")
