"""Simulated web, TLS, and mail services.

Provides the content side of the measurement: legitimate sites for every
scanned domain (with realistic HTML structure the clustering features can
work on), CDN edge deployments, and the full menagerie of pages returned
by manipulated resolutions — censorship landing pages, parking, search
redirects, error pages, captive portals, router logins, phishing clones,
ad-injected variants, transparent proxies, and mail banner listeners.
"""

from repro.websim.http import HttpRequest, HttpResponse
from repro.websim.tls import Certificate, CertificateAuthority
from repro.websim.html import HtmlPage
from repro.websim.sites import SiteLibrary
from repro.websim.httpserver import TransparentProxy, WebServer
from repro.websim.mail import MailServer, MAIL_PORTS
from repro.websim.cdn import CdnProvider, RotatingAZone

__all__ = [
    "CdnProvider",
    "Certificate",
    "CertificateAuthority",
    "HtmlPage",
    "HttpRequest",
    "HttpResponse",
    "MAIL_PORTS",
    "MailServer",
    "RotatingAZone",
    "SiteLibrary",
    "TransparentProxy",
    "WebServer",
]
