"""Web server node types: origin servers, static pages, transparent proxies."""

from repro.dnswire.name import normalize_name
from repro.netsim.network import Node
from repro.websim.http import HttpResponse
from repro.websim.pages import error_page


class WebServer(Node):
    """An origin server hosting a fixed set of domains.

    Requests for a hosted domain get that domain's canonical page from the
    site library; requests with any other Host header get a 404 error page
    — which is why bogus DNS answers pointing at unrelated-but-real web
    servers end up in the paper's "HTTP Error" category.
    """

    def __init__(self, ip, site_library, hosted_domains=(),
                 certificate=None, https=True):
        super().__init__(ip)
        self.site_library = site_library
        self.hosted_domains = {normalize_name(d) for d in hosted_domains}
        self.certificate = certificate
        self.https = https

    def hosts(self, domain):
        return normalize_name(domain) in self.hosted_domains

    def tcp_ports(self):
        return frozenset((80, 443)) if self.https else frozenset((80,))

    def tcp_banner(self, port, network=None):
        if port in self.tcp_ports():
            return "HTTP/1.1 400 Bad Request\r\nServer: Apache/2.2.22\r\n"
        return None

    def handle_http(self, request, network):
        if request.scheme == "https" and not self.https:
            return None
        host = normalize_name(request.host)
        if host in self.hosted_domains:
            return HttpResponse(200, self.site_library.page_for(
                host, request.path))
        return HttpResponse(404, error_page(404))

    def tls_certificate(self, sni, network=None):
        if not self.https:
            return None
        return self.certificate


class StaticPageServer(Node):
    """Serves one fixed body (and status) for every request, regardless of
    Host — censorship landing pages, parking lots, portals, router logins,
    phishing pages, fake update sites all behave like this."""

    def __init__(self, ip, body, status=200, certificate=None,
                 https=False, server_header="nginx", redirect_to=None,
                 extra_tcp_banners=None):
        super().__init__(ip)
        self.body = body
        self.status = status
        self.certificate = certificate
        self.https = https or certificate is not None
        self.server_header = server_header
        self.redirect_to = redirect_to
        self.extra_tcp_banners = dict(extra_tcp_banners or {})

    def tcp_ports(self):
        ports = {80}
        if self.https:
            ports.add(443)
        ports.update(self.extra_tcp_banners)
        return frozenset(ports)

    def tcp_banner(self, port, network=None):
        if port in self.extra_tcp_banners:
            return self.extra_tcp_banners[port]
        if port in (80, 443):
            return "HTTP/1.1 %d\r\nServer: %s\r\n" % (
                self.status, self.server_header)
        return None

    def handle_http(self, request, network):
        if request.scheme == "https" and not self.https:
            return None
        if self.redirect_to is not None:
            return HttpResponse.redirect(self.redirect_to)
        return HttpResponse(self.status, self.body,
                            headers={"Server": self.server_header})

    def tls_certificate(self, sni, network=None):
        return self.certificate


class TransparentProxy(Node):
    """Serves the *original* content for every requested domain (§4.3).

    TLS-capable proxies present the genuine (CA-issued) certificate for the
    requested SNI; HTTP-only proxies answer on port 80 only — clients using
    them "risk disclosing sensible login credentials".
    """

    def __init__(self, ip, site_library, https=False, ca=None,
                 web_domains=None):
        super().__init__(ip)
        self.site_library = site_library
        self.https = https
        self.ca = ca
        # When given, only these domains have proxyable web content;
        # anything else (e.g. bare mail hostnames) yields an error page.
        self.web_domains = ({normalize_name(d) for d in web_domains}
                            if web_domains is not None else None)
        self._cert_cache = {}

    def tcp_ports(self):
        return frozenset((80, 443)) if self.https else frozenset((80,))

    def tcp_banner(self, port, network=None):
        if port in self.tcp_ports():
            return "HTTP/1.1 200 OK\r\nVia: 1.1 proxy\r\n"
        return None

    def handle_http(self, request, network):
        if request.scheme == "https" and not self.https:
            return None
        host = normalize_name(request.host)
        if self.web_domains is not None and host not in self.web_domains \
                and (not host.startswith("www.")
                     or host[4:] not in self.web_domains):
            return HttpResponse(404, error_page(404))
        return HttpResponse(200, self.site_library.page_for(
            host, request.path))

    def tls_certificate(self, sni, network=None):
        if not self.https or self.ca is None or sni is None:
            return None
        name = normalize_name(sni)
        certificate = self._cert_cache.get(name)
        if certificate is None:
            certificate = self.ca.issue(name, san=(name, "www." + name))
            self._cert_cache[name] = certificate
        return certificate


class ContentTransformServer(Node):
    """Serves a transformed variant of the original page for selected
    domains (ad injection / ad blanking / phishing form swaps), and
    proxies the original for everything else."""

    def __init__(self, ip, site_library, transform, target_domains=None,
                 https=False, certificate=None):
        super().__init__(ip)
        self.site_library = site_library
        self.transform = transform
        self.target_domains = ({normalize_name(d) for d in target_domains}
                               if target_domains is not None else None)
        self.https = https
        self.certificate = certificate

    def tcp_ports(self):
        return frozenset((80, 443)) if self.https else frozenset((80,))

    def handle_http(self, request, network):
        if request.scheme == "https" and not self.https:
            return None
        host = normalize_name(request.host)
        original = self.site_library.page_for(host, request.path)
        if self.target_domains is None or host in self.target_domains:
            return HttpResponse(200, self.transform(original))
        return HttpResponse(200, original)

    def tls_certificate(self, sni, network=None):
        return self.certificate
