"""Mail service simulation: IMAP/POP3/SMTP banner listeners.

For the MX domain set the acquisition step connects to ports 143/110/25
and records the greeting banners (§3.5).  Legitimate providers have
recognisable banners; the suspicious mail hosts of §4.3 either present
copied banners (possible sniffing) or generic ones.
"""

from repro.netsim.network import Node

MAIL_PORTS = {"imap": 143, "pop3": 110, "smtp": 25}

# Banner templates per provider, keyed by hostname prefix.
PROVIDER_BANNERS = {
    "gmail.com": {
        "imap": "* OK Gimap ready for requests",
        "pop3": "+OK Gpop ready",
        "smtp": "220 smtp.gmail.com ESMTP ready",
    },
    "yandex.ru": {
        "imap": "* OK Yandex IMAP4rev1 at mail.yandex.ru ready",
        "pop3": "+OK POP Yandex server ready",
        "smtp": "220 smtp.yandex.ru ESMTP (Want to use Yandex.Mail?)",
    },
    "outlook.com": {
        "imap": "* OK The Microsoft Exchange IMAP4 service is ready.",
        "pop3": "+OK The Microsoft Exchange POP3 service is ready.",
        "smtp": "220 smtp-mail.outlook.com Microsoft ESMTP MAIL Service ready",
    },
    "yahoo.com": {
        "imap": "* OK [CAPABILITY IMAP4rev1] IMAP4rev1 imapgate ready",
        "pop3": "+OK hello from popgate",
        "smtp": "220 smtp.mail.yahoo.com ESMTP ready",
    },
    "aim.com": {
        "imap": "* OK IMAP4 server ready (AOL)",
        "pop3": "+OK POP3 server ready (AOL)",
        "smtp": "220 smtp.aim.com ESMTP AOL Mail",
    },
    "me.com": {
        "imap": "* OK [CAPABILITY IMAP4rev1] mail.me.com ready",
        "pop3": "+OK mail.me.com POP3 ready",
        "smtp": "220 smtp.mail.me.com ESMTP ready",
    },
}

GENERIC_BANNERS = {
    "imap": "* OK Dovecot ready.",
    "pop3": "+OK Dovecot ready.",
    "smtp": "220 mail ESMTP Postfix",
}


def provider_for_hostname(hostname):
    """Which mail provider a scanned MX hostname belongs to, or ``None``."""
    lowered = hostname.lower()
    for suffix in PROVIDER_BANNERS:
        if lowered.endswith(suffix):
            return suffix
    return None


def banners_for_provider(provider):
    """The banner dict for a provider key (falls back to generic)."""
    return PROVIDER_BANNERS.get(provider, GENERIC_BANNERS)


class MailServer(Node):
    """A host answering IMAP/POP3/SMTP with configurable banners."""

    def __init__(self, ip, banners=None, provider=None, services=("imap",
                                                                  "pop3",
                                                                  "smtp")):
        super().__init__(ip)
        if banners is None:
            banners = banners_for_provider(provider)
        self.banners = dict(banners)
        self.services = tuple(s for s in services if s in self.banners)

    def tcp_ports(self):
        return frozenset(MAIL_PORTS[s] for s in self.services)

    def tcp_banner(self, port, network=None):
        for service, service_port in MAIL_PORTS.items():
            if port == service_port and service in self.services:
                return self.banners[service]
        return None
