"""Legitimate site content for every scanned domain.

Each domain gets a deterministic, category-shaped page: banks have login
forms and security notices, ad providers are script-heavy, Alexa-top sites
have wide navigation and many resources.  These pages are the ground truth
the pipeline's fine-grained diff clustering compares manipulated responses
against, so they need enough structure (tags, titles, scripts, links) for
the seven distance features to be meaningful.
"""

import random

from repro.datasets.domains import (
    CATEGORY_ADS,
    CATEGORY_ADULT,
    CATEGORY_ALEXA,
    CATEGORY_ANTIVIRUS,
    CATEGORY_BANKING,
    CATEGORY_DATING,
    CATEGORY_FILESHARING,
    CATEGORY_GAMBLING,
    CATEGORY_MALWARE,
    CATEGORY_MISC,
    CATEGORY_TRACKING,
)
from repro.websim.html import HtmlPage

_WORDS = (
    "service online secure account network global digital fast premium "
    "trusted community content stream update portal system user customer "
    "partner business enterprise report world news market team support "
    "center official page info access member welcome"
).split()


def _sentence(rng, length=10):
    words = " ".join(rng.choice(_WORDS) for __ in range(length))
    return words.capitalize() + "."


def _brand(domain):
    label = domain.split(".")[0]
    return label.replace("-", " ").title()


class SiteLibrary:
    """Renders (and caches) the canonical page for each domain."""

    def __init__(self, seed=0):
        self._seed = seed
        self._cache = {}
        self._category = {}

    def set_category(self, domain, category):
        """Record a domain's category so its page takes the right shape."""
        self._category[domain.lower()] = category

    def page_for(self, domain, path="/"):
        """The canonical HTML for ``domain`` (path currently uniform)."""
        key = (domain.lower(), path)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._render(domain.lower())
            self._cache[key] = cached
        return cached

    # -- rendering -----------------------------------------------------------

    def _render(self, domain):
        rng = random.Random("%s|%s" % (self._seed, domain))
        category = self._category.get(domain, CATEGORY_MISC)
        builder = _CATEGORY_BUILDERS.get(category, _generic_site)
        return builder(domain, rng)


def _common_chrome(page, domain, rng, nav_count=5):
    """Header/nav/footer shared by most site shapes."""
    page.add_stylesheet("https://%s/static/main.css" % domain)
    page.add_head_script(src="https://%s/static/app.js" % domain)
    brand = _brand(domain)
    page.add_heading(brand)
    links = [("https://%s/%s" % (domain, rng.choice(_WORDS)),
              rng.choice(_WORDS).title()) for __ in range(nav_count)]
    page.add_nav(links)
    return brand


def _generic_site(domain, rng):
    page = HtmlPage("%s - Official Site" % _brand(domain))
    _common_chrome(page, domain, rng)
    for __ in range(rng.randint(3, 7)):
        page.add_paragraph(_sentence(rng, rng.randint(8, 16)))
    page.add_image("https://%s/static/logo.png" % domain, alt="logo")
    page.add_script(code="var pageId=%d;init('%s');"
                    % (rng.randint(1000, 9999), domain))
    page.add_div("&copy; %s" % _brand(domain), css_class="footer")
    return page.render()


def _banking_site(domain, rng):
    page = HtmlPage("%s Online Banking - Log In" % _brand(domain))
    _common_chrome(page, domain, rng, nav_count=4)
    page.add_paragraph("Welcome to %s online banking. "
                       "Please sign in to access your accounts."
                       % _brand(domain))
    page.add_form("https://%s/login" % domain,
                  [("username", "text"), ("password", "password")],
                  submit_label="Log In")
    page.add_paragraph("Security notice: we will never ask for your PIN "
                       "by email.")
    page.add_image("https://%s/static/padlock.png" % domain, alt="secure")
    page.add_script(code="antiFraudToken='%08x';" % rng.getrandbits(32))
    page.add_link("https://%s/security" % domain, "Security Center")
    return page.render()


def _ads_site(domain, rng):
    page = HtmlPage("%s Advertising Platform" % _brand(domain))
    page.add_head_script(src="https://%s/tag/adsbygoogle.js" % domain)
    page.add_heading(_brand(domain))
    for i in range(rng.randint(3, 6)):
        page.add_script(code="adSlot(%d,'%s');" % (i, domain))
    page.add_div('<ins class="adsbyprovider" data-slot="%d"></ins>'
                 % rng.randint(100, 999), css_class="ad-container")
    page.add_paragraph(_sentence(rng))
    page.add_script(src="https://%s/pagead/show_ads.js" % domain)
    return page.render()


def _alexa_site(domain, rng):
    page = HtmlPage(_brand(domain))
    _common_chrome(page, domain, rng, nav_count=8)
    for __ in range(rng.randint(5, 10)):
        page.add_paragraph(_sentence(rng, rng.randint(10, 20)))
    for i in range(rng.randint(4, 8)):
        page.add_image("https://%s/img/item%d.jpg" % (domain, i),
                       alt="item %d" % i)
    page.add_script(code="window.__initial_state={page:'%s'};" % domain)
    page.add_script(src="https://%s/js/runtime.js" % domain)
    for __ in range(rng.randint(5, 12)):
        page.add_link("https://%s/%s/%s"
                      % (domain, rng.choice(_WORDS), rng.choice(_WORDS)),
                      _sentence(rng, 3)[:-1])
    return page.render()


def _antivirus_site(domain, rng):
    page = HtmlPage("%s - Antivirus Protection and Updates" % _brand(domain))
    _common_chrome(page, domain, rng)
    page.add_paragraph("Download the latest virus definition updates.")
    page.add_table([("Definition set", "Version", "Released")]
                   + [("core-%d" % i, "1.%d.%d" % (i, rng.randint(0, 99)),
                       "2015-01-%02d" % rng.randint(1, 28))
                      for i in range(4)])
    page.add_link("https://%s/downloads/update.exe" % domain,
                  "Download update")
    page.add_script(code="checkDefinitions('%s');" % domain)
    return page.render()


def _adult_site(domain, rng):
    page = HtmlPage("%s - Adults Only (18+)" % _brand(domain))
    page.add_heading(_brand(domain))
    page.add_paragraph("You must be 18 or older to enter this website.")
    page.add_form("https://%s/verify" % domain, [("birthyear", "text")],
                  submit_label="Enter")
    for i in range(rng.randint(6, 12)):
        page.add_image("https://%s/thumbs/%d.jpg" % (domain, i),
                       alt="preview")
    page.add_script(src="https://%s/player/embed.js" % domain)
    return page.render()


def _dating_site(domain, rng):
    page = HtmlPage("%s - Meet Singles Online" % _brand(domain))
    _common_chrome(page, domain, rng, nav_count=4)
    page.add_paragraph("Join millions of singles and find your match.")
    page.add_form("https://%s/signup" % domain,
                  [("email", "text"), ("password", "password"),
                   ("age", "text")], submit_label="Join Free")
    for i in range(rng.randint(3, 6)):
        page.add_image("https://%s/profiles/p%d.jpg" % (domain, i),
                       alt="member")
    return page.render()


def _filesharing_site(domain, rng):
    page = HtmlPage("%s - Search Torrents" % _brand(domain))
    page.add_heading(_brand(domain))
    page.add_form("https://%s/search" % domain, [("q", "text")],
                  method="GET", submit_label="Search")
    page.add_table([("Name", "Size", "Seeders")]
                   + [(_sentence(rng, 4)[:-1],
                       "%d MB" % rng.randint(100, 4000),
                       str(rng.randint(0, 5000))) for __ in range(8)])
    for i in range(3):
        page.add_link("magnet:?xt=urn:btih:%040x" % rng.getrandbits(160),
                      "magnet %d" % i)
    return page.render()


def _gambling_site(domain, rng):
    page = HtmlPage("%s - Sports Betting and Casino" % _brand(domain))
    _common_chrome(page, domain, rng, nav_count=6)
    page.add_paragraph("Live odds, casino, and poker. Bet responsibly.")
    page.add_table([("Match", "1", "X", "2")]
                   + [(_sentence(rng, 3)[:-1],
                       "%.2f" % (1 + rng.random() * 4),
                       "%.2f" % (2 + rng.random() * 3),
                       "%.2f" % (1 + rng.random() * 6)) for __ in range(6)])
    page.add_script(code="liveOddsSocket('%s');" % domain)
    return page.render()


def _malware_site(domain, rng):
    # What a sinkholed / barebones C2 domain typically serves: next to
    # nothing, or a default server page.
    page = HtmlPage("Index of /")
    page.add_paragraph("It works!")
    return page.render()


def _tracking_site(domain, rng):
    page = HtmlPage("%s Device Intelligence" % _brand(domain))
    page.add_heading(_brand(domain))
    page.add_paragraph("Device identification and fraud prevention APIs.")
    page.add_script(code="(function(){var fp=collectFingerprint();"
                         "beacon('https://%s/c.gif?fp='+fp);})();" % domain)
    page.add_image("https://%s/c.gif" % domain, alt="")
    return page.render()


_CATEGORY_BUILDERS = {
    CATEGORY_ADS: _ads_site,
    CATEGORY_ADULT: _adult_site,
    CATEGORY_ALEXA: _alexa_site,
    CATEGORY_ANTIVIRUS: _antivirus_site,
    CATEGORY_BANKING: _banking_site,
    CATEGORY_DATING: _dating_site,
    CATEGORY_FILESHARING: _filesharing_site,
    CATEGORY_GAMBLING: _gambling_site,
    CATEGORY_MALWARE: _malware_site,
    CATEGORY_MISC: _generic_site,
    CATEGORY_TRACKING: _tracking_site,
}
