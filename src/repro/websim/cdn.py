"""Content Delivery Network model: multi-AS edges and GeoDNS rotation.

CDNs are what makes the prefilter hard (§3.4): a domain on a CDN resolves
to different edge IPs depending on where you ask from, the edges span many
ASes beyond the provider's primary ones, and the trusted-resolver AS check
therefore misses them.  The paper recovers these via HTTPS certificates:
an SNI handshake returning a valid certificate for the domain, or — for
the largest providers — a non-SNI default certificate with the provider's
known common name.
"""

import random

from repro.authdns.zone import Zone, ZoneLookupResult
from repro.dnswire.constants import QTYPE_A
from repro.dnswire.name import normalize_name
from repro.dnswire.records import ResourceRecord
from repro.netsim.network import Node
from repro.websim.http import HttpResponse
from repro.websim.pages import error_page


class RotatingAZone(Zone):
    """A zone whose A answers rotate through an edge pool per query,
    emulating GeoDNS/load balancing: successive (or differently-located)
    queries see different IP subsets."""

    def __init__(self, origin, edge_pool, answers_per_query=2):
        super().__init__(origin)
        self._edge_pool = {}
        self._counters = {}
        self.answers_per_query = answers_per_query
        for name, addresses in edge_pool.items():
            self._edge_pool[normalize_name(name)] = list(addresses)

    def set_pool(self, name, addresses):
        self._edge_pool[normalize_name(name)] = list(addresses)

    def lookup(self, qname, qtype):
        name = normalize_name(qname)
        if qtype == QTYPE_A and name in self._edge_pool:
            pool = self._edge_pool[name]
            counter = self._counters.get(name, 0)
            self._counters[name] = counter + 1
            count = min(self.answers_per_query, len(pool))
            picks = [pool[(counter + i) % len(pool)] for i in range(count)]
            records = [ResourceRecord.a(qname, address, ttl=20)
                       for address in picks]
            return ZoneLookupResult(ZoneLookupResult.ANSWER, records=records)
        return super().lookup(qname, qtype)


class CdnEdgeServer(Node):
    """One CDN edge: serves customer-domain content, presents the
    customer certificate under SNI and the provider default without."""

    def __init__(self, ip, site_library, customer_domains, provider_cert,
                 customer_certs, enabled=True):
        super().__init__(ip)
        self.site_library = site_library
        self.customer_domains = {normalize_name(d) for d in customer_domains}
        self.provider_cert = provider_cert
        self.customer_certs = {normalize_name(d): cert
                               for d, cert in customer_certs.items()}
        # Disabled edges model the paper's observation of content servers
        # "disabled and not distributing actual HTTP(S) payload data".
        self.enabled = enabled

    def tcp_ports(self):
        return frozenset((80, 443)) if self.enabled else frozenset()

    def handle_http(self, request, network):
        if not self.enabled:
            return None
        host = normalize_name(request.host)
        if host in self.customer_domains:
            return HttpResponse(200, self.site_library.page_for(
                host, request.path))
        return HttpResponse(404, error_page(404))

    def tls_certificate(self, sni, network=None):
        if not self.enabled:
            return None
        if sni is None:
            return self.provider_cert
        return self.customer_certs.get(normalize_name(sni),
                                       self.provider_cert)


class CdnProvider:
    """A CDN operator: primary ASes, edges scattered across foreign ASes,
    a known default-certificate common name, and customer domains."""

    def __init__(self, name, common_name, ca, site_library, seed=0):
        self.name = name
        self.common_name = common_name
        self.ca = ca
        self.site_library = site_library
        self.provider_cert = ca.issue(common_name,
                                      san=(common_name,
                                           "*.%s" % common_name.lstrip("*.")))
        self.edges = []
        self.customer_domains = set()
        self._customer_certs = {}
        self._rng = random.Random("%s|%s" % (seed, name))

    def add_customer(self, domain):
        domain = normalize_name(domain)
        self.customer_domains.add(domain)
        self._customer_certs[domain] = self.ca.issue(
            domain, san=(domain, "www." + domain))

    def deploy_edge(self, network, ip, enabled=True):
        """Place one edge server at ``ip`` (caller picks the AS/prefix)."""
        edge = CdnEdgeServer(ip, self.site_library, self.customer_domains,
                             self.provider_cert, self._customer_certs,
                             enabled=enabled)
        # Late-added customers must be visible to existing edges: share
        # the live dicts rather than copies.
        edge.customer_domains = self.customer_domains
        edge.customer_certs = self._customer_certs
        network.register(edge)
        self.edges.append(edge)
        return edge

    def edge_ips(self, include_disabled=True):
        return [edge.ip for edge in self.edges
                if include_disabled or edge.enabled]

    def edge_pool_for(self, domain):
        """The addresses GeoDNS rotates through for a customer domain.

        Only live edges: the CDN withdraws dead edges from its DNS, so
        disabled addresses are served exclusively by resolvers holding
        stale data (:class:`repro.resolvers.behaviors.StaleCdnBehavior`).
        """
        if normalize_name(domain) not in self.customer_domains:
            raise KeyError("%s is not a customer of %s" % (domain, self.name))
        return self.edge_ips(include_disabled=False)
